#!/usr/bin/env python
"""Check markdown files for dead relative links.

Usage::

    python tools/check_doc_links.py README.md docs [more files or dirs...]

Every ``[text](target)`` and ``[text]: target`` reference in the given
markdown files is resolved relative to the file that contains it;
targets that do not exist on disk fail the check.  External schemes
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``)
are skipped; a ``path#anchor`` target is checked for the path part only.
Targets that climb *out of the repository* (above the nearest ancestor
containing ``.git``) are skipped too: those are site-relative URLs only
the hosting platform can resolve — the CI badge
(``../../actions/workflows/ci.yml/badge.svg``) is the canonical example.
Exit status is 0 when every link resolves, 1 otherwise — CI's docs job
runs exactly this.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: inline links `[text](target)` — target ends at the first unnested `)`
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: reference definitions `[label]: target`
REFERENCE_LINK = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {argument}")
    if not files:
        raise SystemExit("no markdown files found")
    return files


def repository_root(path: Path) -> Path:
    """The nearest ancestor of *path* containing ``.git`` (else its parent)."""

    for ancestor in path.resolve().parents:
        if (ancestor / ".git").exists():
            return ancestor
    return path.resolve().parent


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Dead links in *path* as (target, reason) pairs."""

    # Fenced code blocks routinely contain `[x](y)`-shaped text that is
    # not a link (badge markup examples, shell globs); strip them first.
    text = re.sub(r"```.*?```", "", path.read_text(encoding="utf-8"), flags=re.DOTALL)
    targets = INLINE_LINK.findall(text) + REFERENCE_LINK.findall(text)
    root = repository_root(path)
    dead: List[Tuple[str, str]] = []
    for target in targets:
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.is_relative_to(root):
            continue  # site-relative (e.g. the CI badge); not checkable on disk
        if not resolved.exists():
            dead.append((target, f"resolves to missing {resolved}"))
    return dead


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    failures = 0
    for path in iter_markdown_files(argv):
        for target, reason in check_file(path):
            print(f"{path}: dead link {target!r} ({reason})", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} dead link(s)", file=sys.stderr)
        return 1
    print("all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
