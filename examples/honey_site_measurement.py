"""Reproduce the measurement study end to end (Sections 4–6).

Deploys the honey site, purchases traffic from all 20 bot services (at a
reduced scale), and prints the headline measurement results: Table 1, the
ASN/IP block-list analysis, the BotD plugin blind spot and the iPhone
resolution inconsistency.

Run:  python examples/honey_site_measurement.py [scale]
"""

import sys

from repro.analysis import (
    analyze_asn_blocklist,
    build_corpus,
    figure4_plugin_evasion,
    figure7_iphone_resolutions,
    overall_detection_rates,
    table1_rows,
)
from repro.reporting import ascii_bar_chart, format_percent, format_table


def main(scale: float = 0.02) -> None:
    corpus = build_corpus(seed=7, scale=scale, include_real_users=False)
    bots = corpus.bot_store
    print(f"Recorded {len(bots)} bot requests across {len(corpus.service_volumes)} services\n")

    rows = table1_rows(bots)
    print(
        format_table(
            ["Service", "Requests", "DataDome evasion", "BotD evasion"],
            [
                (r.service, r.num_requests, format_percent(r.datadome_evasion_rate), format_percent(r.botd_evasion_rate))
                for r in rows
            ],
            title="Table 1 — per-service evasion",
        )
    )
    overall = overall_detection_rates(bots)
    print(f"\nOverall detection: DataDome {format_percent(overall['DataDome'])}, BotD {format_percent(overall['BotD'])}")

    asn = analyze_asn_blocklist(bots, corpus.site.geo)
    print(
        f"\nRequests from flagged ASNs: {format_percent(asn.flagged_fraction)}; among them "
        f"{format_percent(asn.flagged_datadome_evasion)} evade DataDome and "
        f"{format_percent(asn.flagged_botd_evasion)} evade BotD"
    )

    print()
    print(ascii_bar_chart(
        {p.plugin: p.evasion_probability for p in figure4_plugin_evasion(bots)},
        title="Figure 4 — P(evade BotD | plugin present)",
    ))

    analysis = figure7_iphone_resolutions(bots)
    print(
        f"\n'iPhone' requests report {analysis.unique_resolutions} distinct resolutions "
        f"(real iPhones have 12); {analysis.nonexistent_in_top} of the top "
        f"{len(analysis.top_points)} do not exist on any real iPhone"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
