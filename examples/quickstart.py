"""Quickstart: detect an inconsistent fingerprint with FP-Inconsistent.

Builds a tiny bot corpus, mines inconsistency rules from it and then
classifies two fingerprints: a consistent real iPhone and a bot that
claims to be an iPhone while exposing desktop attributes.

Run:  python examples/quickstart.py
"""


from repro.analysis.corpus import build_corpus
from repro.core import FPInconsistent
from repro.devices import DeviceCatalog
from repro.fingerprint import Attribute, Fingerprint


def main() -> None:
    # 1. Generate a small honey-site corpus (bots only) and mine rules.
    corpus = build_corpus(seed=1, scale=0.01, include_real_users=False)
    detector = FPInconsistent()
    detector.fit(corpus.bot_store)
    print(f"Mined {len(detector.filter_list)} inconsistency rules from "
          f"{len(corpus.bot_store)} bot requests")
    for rule in detector.filter_list.top_rules(5):
        print("  ", rule.describe(), f"(support={rule.support})")

    # 2. A real iPhone fingerprint from the device catalogue: consistent.
    iphone = DeviceCatalog().get("iphone-14").fingerprint()
    print("\nReal iPhone flagged?", detector.check_fingerprint(iphone) is not None)

    # 3. An evasive bot claiming to be an iPhone but leaking desktop values.
    bot = Fingerprint(
        {
            Attribute.UA_DEVICE: "iPhone",
            Attribute.UA_OS: "iOS",
            Attribute.UA_BROWSER: "Mobile Safari",
            Attribute.PLATFORM: "Linux x86_64",
            Attribute.VENDOR: "Google Inc.",
            Attribute.SCREEN_RESOLUTION: (1920, 1080),
            Attribute.TOUCH_SUPPORT: "None",
            Attribute.MAX_TOUCH_POINTS: 0,
            Attribute.HARDWARE_CONCURRENCY: 16,
        }
    )
    match = detector.check_fingerprint(bot)
    print("Evasive bot flagged?", match is not None)
    if match is not None:
        print("  violated rule:", match.describe())


if __name__ == "__main__":
    main()
