"""Mine, export and evaluate FP-Inconsistent filter rules (Section 7).

Generates a corpus with bot and real-user traffic, mines spatial rules,
runs the temporal detector, writes the filter list to ``fp_rules.json``
(the artefact the paper open-sources) and prints the Table 3 / Table 4
improvements plus the real-user true-negative rate.

Run:  python examples/inconsistency_rule_mining.py [scale]
"""

import sys

from repro.analysis import build_corpus
from repro.core import FPInconsistentPipeline
from repro.reporting import format_percent, format_table


def main(scale: float = 0.02) -> None:
    corpus = build_corpus(seed=7, scale=scale, include_real_users=True)
    pipeline = FPInconsistentPipeline()
    result = pipeline.run(
        corpus.bot_store,
        real_user_store=corpus.real_user_store,
        check_generalization=True,
    )

    result.filter_list.save("fp_rules.json")
    print(f"Mined {len(result.filter_list)} rules -> fp_rules.json\n")

    rates = result.table4
    print(
        format_table(
            ["Rules", "DataDome", "BotD"],
            [
                ("None", format_percent(rates["DataDome"].baseline), format_percent(rates["BotD"].baseline)),
                ("Spatial", format_percent(rates["DataDome"].with_spatial), format_percent(rates["BotD"].with_spatial)),
                ("Temporal", format_percent(rates["DataDome"].with_temporal), format_percent(rates["BotD"].with_temporal)),
                ("Combined", format_percent(rates["DataDome"].with_combined), format_percent(rates["BotD"].with_combined)),
            ],
            title="Table 4 — detection rate under each rule setting",
        )
    )
    print(
        "\nEvasion reduction: DataDome "
        + format_percent(rates["DataDome"].evasion_reduction)
        + ", BotD "
        + format_percent(rates["BotD"].evasion_reduction)
    )
    print(f"Real-user true-negative rate: {format_percent(result.real_user_tnr)}")
    for name, check in (result.generalization or {}).items():
        print(f"80/20 generalisation drop for {name}: {format_percent(check.accuracy_drop)}")

    print("\nPer-service improvement (first 5 rows of Table 3):")
    print(
        format_table(
            ["Service", "DataDome", "+FP-Inc", "BotD", "+FP-Inc"],
            [
                (
                    row.service,
                    format_percent(row.datadome_baseline),
                    format_percent(row.datadome_improved),
                    format_percent(row.botd_baseline),
                    format_percent(row.botd_improved),
                )
                for row in result.table3[:5]
            ],
        )
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
