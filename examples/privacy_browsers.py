"""Evaluate FP-Inconsistent against privacy-enhancing technologies (§7.5).

Sends traffic through Safari, Brave, Tor, uBlock Origin and AdBlock Plus
models from four real devices, mines rules from bot traffic, and reports
how each technology fares against DataDome, BotD and FP-Inconsistent.

Run:  python examples/privacy_browsers.py
"""

from repro.analysis import build_corpus, corpus_privacy_tables, evaluate_privacy_technologies
from repro.core import FPInconsistent, FPInconsistentPipeline
from repro.reporting import format_percent, format_table
from repro.users import PrivacyTechnology


def main() -> None:
    corpus = build_corpus(seed=7, scale=0.02, include_real_users=False, include_privacy=True,
                          privacy_requests_each=60)
    result = FPInconsistentPipeline().run(
        corpus.bot_store, bot_table=corpus.columnar_tables.get("bots")
    )
    detector = FPInconsistent(filter_list=result.filter_list)

    stores = {
        technology: corpus.privacy_store(technology)
        for technology in PrivacyTechnology
        if len(corpus.privacy_store(technology)) > 0
    }
    # The vectorized corpus engine pre-extracts one table per technology;
    # feeding them in skips per-store extraction.
    rows = evaluate_privacy_technologies(
        stores, detector, tables=corpus_privacy_tables(corpus)
    )
    print(
        format_table(
            ["Technology", "Requests", "DataDome", "BotD", "FP-Inc spatial", "FP-Inc temporal"],
            [
                (
                    r.technology.value,
                    r.requests,
                    format_percent(r.datadome_detection_rate),
                    format_percent(r.botd_detection_rate),
                    format_percent(r.fp_spatial_rate),
                    format_percent(r.fp_temporal_rate),
                )
                for r in rows
            ],
            title="Section 7.5 — privacy technologies vs bot detection",
        )
    )


if __name__ == "__main__":
    main()
