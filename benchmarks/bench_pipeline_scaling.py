"""Detection-pipeline scaling benchmark: legacy vs columnar vs sharded.

Times the full FP-Inconsistent evaluation (mining + classification +
Tables 3/4 + real-user TNR) under each engine:

* ``legacy`` — the object-at-a-time reference path,
* ``columnar`` — vectorized mining and classification, one worker,
* ``sharded`` — the columnar engine fanned out over the worker pool.

Each engine runs against a freshly built corpus so per-fingerprint
memoization warmed by one engine cannot flatter the next.  Results land in
``BENCH_pipeline_scaling.json`` next to the repository root so successive
PRs accumulate a perf trajectory; all three engines must report the same
rule count (full verdict equivalence is pinned by
``tests/test_columnar.py``).

The ≥3× columnar-vs-legacy claim holds at scale 0.05; at smaller scales
the constant extraction cost dominates, so the hard assertion is gated the
same way as ``bench_corpus_scaling``: opt in via
``REPRO_BENCH_REQUIRE_SPEEDUP`` (and the sharded claim additionally needs
real cores).
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.analysis.corpus import build_corpus_serial, default_scale
from repro.core.pipeline import FPInconsistentPipeline

#: Required columnar-vs-legacy speedup when the assertion is armed.
TARGET_SPEEDUP = 3.0

#: Scale below which the constant extraction cost dominates and the target
#: is not meaningful.
MIN_SCALE_FOR_TARGET = 0.05

#: Environment variable turning the speedup target into a hard failure
#: (shared with bench_corpus_scaling).
REQUIRE_SPEEDUP_ENV_VAR = "REPRO_BENCH_REQUIRE_SPEEDUP"

SHARDED_WORKERS = 4

#: Environment variable overriding where the result document is written.
OUTPUT_ENV_VAR = "REPRO_BENCH_PIPELINE_OUTPUT"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline_scaling.json"


def _result_path(scale: float) -> Path:
    """Where to write this run's document.

    The committed repo-root baseline holds scale-0.05 numbers; runs at
    smaller scales (CI smoke uses 0.01) write to a scratch file instead so
    they never clobber the perf trajectory.  ``REPRO_BENCH_PIPELINE_OUTPUT``
    overrides either default.
    """

    override = os.environ.get(OUTPUT_ENV_VAR)
    if override:
        return Path(override)
    if scale >= MIN_SCALE_FOR_TARGET:
        return RESULT_PATH
    return Path(tempfile.gettempdir()) / "BENCH_pipeline_scaling.json"


def _measure(
    engine: str,
    scale: float,
    workers: int = 1,
    executor: str = "thread",
    use_tables: bool = False,
):
    """Build a fresh corpus and time one full pipeline evaluation on it.

    ``use_tables=True`` builds the corpus with the vectorized generation
    engine and hands its pre-extracted columnar tables to the pipeline —
    the warm-cache path, where extraction is skipped entirely.
    """

    if use_tables:
        from repro.analysis.engine import CorpusEngine

        corpus = CorpusEngine(
            seed=7, scale=scale, include_real_users=True, generation="vectorized"
        ).build(workers=1)
        tables = corpus.columnar_tables
    else:
        corpus = build_corpus_serial(seed=7, scale=scale, include_real_users=True)
        tables = {}
    pipeline = FPInconsistentPipeline(engine=engine, workers=workers, executor=executor)
    started = time.perf_counter()
    result = pipeline.run(
        corpus.bot_store,
        real_user_store=corpus.real_user_store,
        bot_table=tables.get("bots"),
        real_user_table=tables.get("real_users"),
    )
    seconds = time.perf_counter() - started
    if use_tables:
        assert result.table_sources == {"bots": "reused", "real_users": "reused"}
        # The engine-built corpus legitimately differs from the serial one
        # (sub-sharded generation), so its rule count is validated against
        # a fresh extraction of the *same* corpus, not the serial baseline.
        fresh = pipeline.run(corpus.bot_store, real_user_store=corpus.real_user_store)
        assert fresh.table_sources == {"bots": "extracted", "real_users": "extracted"}
        assert len(fresh.filter_list) == len(result.filter_list)
    return {
        "engine": engine,
        "workers": workers,
        "records": len(corpus.bot_store) + len(corpus.real_user_store),
        "rules": len(result.filter_list),
        "seconds": round(seconds, 3),
        "requests_per_second": round(
            (len(corpus.bot_store) + len(corpus.real_user_store)) / seconds, 1
        ),
    }, seconds


def bench_pipeline_scaling():
    scale = default_scale()

    legacy, legacy_seconds = _measure("legacy", scale)
    columnar, columnar_seconds = _measure("columnar", scale)
    sharded, sharded_seconds = _measure(
        "columnar", scale, workers=SHARDED_WORKERS, executor="thread"
    )
    sharded["engine"] = "sharded"
    pretabled, pretabled_seconds = _measure("columnar", scale, use_tables=True)
    pretabled["engine"] = "columnar+tables"
    runs = [legacy, columnar, sharded, pretabled]
    for run, raw_seconds in zip(
        runs[1:], (columnar_seconds, sharded_seconds, pretabled_seconds)
    ):
        # Raw timings, not the rounded display values, so the recorded
        # number always agrees with the asserted one.
        run["speedup_vs_legacy"] = round(legacy_seconds / raw_seconds, 2)

    document = {
        "benchmark": "pipeline_scaling",
        "seed": 7,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    result_path = _result_path(scale)
    result_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {result_path}")
    for run in runs:
        speedup = run.get("speedup_vs_legacy", 1.0)
        print(
            f"{run['engine']:>8} ({run['workers']}w): {run['seconds']}s "
            f"{run['requests_per_second']} req/s ({speedup}x vs legacy)"
        )

    # All engines evaluating the same (serial) corpus must mine the same
    # rule set (the full equivalence — byte-identical lists and verdicts —
    # is pinned in tests/test_columnar.py and tests/test_vectorized.py).
    # The pretabled run validates against its own corpus inside _measure.
    assert legacy["rules"] == columnar["rules"] == sharded["rules"]

    columnar_speedup = legacy_seconds / columnar_seconds
    if os.environ.get(REQUIRE_SPEEDUP_ENV_VAR) and scale >= MIN_SCALE_FOR_TARGET:
        assert columnar_speedup >= TARGET_SPEEDUP, (
            f"expected the columnar engine to be >= {TARGET_SPEEDUP}x faster than the "
            f"legacy path at scale {scale}, got {columnar_speedup:.2f}x"
        )
    else:
        print(
            f"columnar speedup {columnar_speedup:.2f}x; set {REQUIRE_SPEEDUP_ENV_VAR}=1 "
            f"at scale >= {MIN_SCALE_FOR_TARGET} to enforce the {TARGET_SPEEDUP}x target"
        )
    # The columnar engine must not be pathologically slower than the
    # reference — but only where the comparison is meaningful: at smoke
    # scales both engines run sub-second and scheduler noise on shared CI
    # runners could flake an unconditional floor.
    if scale >= MIN_SCALE_FOR_TARGET:
        assert columnar_speedup > 0.8, (
            f"columnar engine collapsed: {columnar_speedup:.2f}x vs legacy"
        )
