"""Table 5 — browser APIs read by DataDome and BotD."""

from repro.antibot.signals import API_ACCESS, apis_read_by
from repro.reporting.tables import format_table


def bench_table5_api_inventory(benchmark):
    datadome_apis = benchmark(apis_read_by, "DataDome")
    botd_apis = apis_read_by("BotD")
    print()
    print(
        format_table(
            ["Browser API", "DataDome", "BotD"],
            [
                (api, "x" if readers["DataDome"] else "", "x" if readers["BotD"] else "")
                for api, readers in API_ACCESS.items()
            ],
            title="Table 5 — APIs accessed by each service",
        )
    )
    assert len(datadome_apis) > len(botd_apis)
