"""Parallel serving gateway scaling benchmark.

Replays the bot corpus through the parallel detection gateway
(:mod:`repro.serve`) at several worker counts, recording sustained
end-to-end throughput (rows/second) and the p50/p99 per-batch wall-clock
latency per count — the trajectory a deployment sizes its worker pool
against.  Every frozen-list run first re-asserts the serving oracle:
merged verdicts identical to one batch classification of the whole store
(the full pin lives in ``tests/test_serve.py``), so the numbers always
describe a *correct* gateway.

A background-refresh run (day-driven window re-mining off the scoring
path) is recorded alongside so the cost of keeping the filter list fresh
while serving shows up in the same trajectory.

Results land in ``BENCH_serve_scaling.json`` next to the repository root
when run at the baseline scale (0.05); smaller scales (CI smoke uses 0.01)
write to a scratch file so they never clobber the committed trajectory.
``REPRO_BENCH_SERVE_OUTPUT`` overrides either default.
"""

import json
import os
import tempfile
from pathlib import Path

from repro.analysis.corpus import default_scale
from repro.analysis.engine import CorpusEngine
from repro.core.detector import FPInconsistent
from repro.serve import DetectionGateway, DeviceRouter, GatewayReplayDriver
from repro.stream import FilterListRefresher

#: Worker counts swept by the frozen-list gateway runs.
WORKER_COUNTS = (1, 2, 4)

#: Micro-batch size of every run (the stream benchmark's larger size).
BATCH_SIZE = 2048

#: Refresh-run knobs: re-mine every this many stream days over this window.
REFRESH_INTERVAL_DAYS = 15.0
REFRESH_WINDOW_ROWS = 25_000

#: Scale of the committed repo-root baseline.
BASELINE_SCALE = 0.05

#: Environment variable overriding where the result document is written.
OUTPUT_ENV_VAR = "REPRO_BENCH_SERVE_OUTPUT"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve_scaling.json"


def _result_path(scale: float) -> Path:
    override = os.environ.get(OUTPUT_ENV_VAR)
    if override:
        return Path(override)
    if scale >= BASELINE_SCALE:
        return RESULT_PATH
    return Path(tempfile.gettempdir()) / "BENCH_serve_scaling.json"


def _run_entry(result) -> dict:
    return {
        "workers": result.workers,
        "batch_size": BATCH_SIZE,
        "rows": result.rows,
        "batches": result.batches,
        "migrations": result.migrations,
        "worker_rows": result.worker_rows,
        "seconds": round(result.seconds, 3),
        "rows_per_second": round(result.rows_per_second, 1),
        "p50_batch_ms": round(result.latency_quantile(0.50) * 1000, 3),
        "p99_batch_ms": round(result.latency_quantile(0.99) * 1000, 3),
    }


def bench_serve_scaling():
    scale = default_scale()
    corpus = CorpusEngine(seed=7, scale=scale, include_real_users=True).build(workers=1)
    bot_store = corpus.bot_store

    detector = FPInconsistent()
    table, _table_source = detector.resolve_table(
        bot_store, corpus.columnar_tables.get("bots")
    )
    detector.fit_table(table)
    batch_verdicts = detector.classify_table(table)

    runs = []
    for workers in WORKER_COUNTS:
        router = DeviceRouter.from_table(table, workers)
        with DetectionGateway(detector, router=router) as gateway:
            result = GatewayReplayDriver(gateway, batch_size=BATCH_SIZE).replay(bot_store)
        # Frozen-list oracle: parallelism must cost nothing in quality.
        assert result.verdicts == batch_verdicts, (
            f"gateway verdicts diverged from the batch pipeline at "
            f"{workers} worker(s)"
        )
        assert result.migrations == 0  # pre-pinned router never migrates
        runs.append(_run_entry(result))

    refresher = FilterListRefresher(
        detector.miner,
        interval_days=REFRESH_INTERVAL_DAYS,
        window_rows=REFRESH_WINDOW_ROWS,
    )
    router = DeviceRouter.from_table(table, WORKER_COUNTS[-1])
    with DetectionGateway(detector, router=router, refresher=refresher) as gateway:
        refresh_result = GatewayReplayDriver(gateway, batch_size=BATCH_SIZE).replay(
            bot_store
        )
    refresh_run = _run_entry(refresh_result)
    refresh_run["refreshes"] = refresh_result.refreshes
    refresh_run["refresh_interval_days"] = REFRESH_INTERVAL_DAYS
    refresh_run["refresh_window_rows"] = REFRESH_WINDOW_ROWS

    document = {
        "benchmark": "serve_scaling",
        "seed": 7,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "rules": len(detector.filter_list),
        "runs": runs,
        "refresh_run": refresh_run,
    }
    result_path = _result_path(scale)
    result_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {result_path}")
    for run in runs + [refresh_run]:
        label = "refresh" if "refreshes" in run else "frozen"
        print(
            f"{label} workers={run['workers']}: {run['rows_per_second']} rows/s, "
            f"p50 {run['p50_batch_ms']}ms, p99 {run['p99_batch_ms']}ms"
        )

    # Sanity envelope rather than a speedup gate: on a single-core runner
    # (cpu_count records the hardware) thread workers cannot beat one
    # worker, so assert the gateway stays in the same order of magnitude
    # across counts and latency quantiles stay ordered.
    assert all(run["p50_batch_ms"] <= run["p99_batch_ms"] for run in runs)
    fastest = max(run["rows_per_second"] for run in runs)
    slowest = min(run["rows_per_second"] for run in runs)
    assert slowest > 0 and fastest / slowest < 50, (fastest, slowest)
