"""Table 1 — per-service request volume and evasion rates."""

from repro.analysis.evasion import overall_detection_rates, table1_rows
from repro.reporting.tables import format_percent, format_table


def bench_table1_evasion_rates(benchmark, bot_store):
    rows = benchmark(table1_rows, bot_store)
    overall = overall_detection_rates(bot_store)
    print()
    print(
        format_table(
            ["Service", "Requests", "DataDome evasion", "BotD evasion"],
            [
                (r.service, r.num_requests, format_percent(r.datadome_evasion_rate), format_percent(r.botd_evasion_rate))
                for r in rows
            ],
            title="Table 1 (paper: 507,080 requests; DataDome detects 55.44%, BotD 47.07%)",
        )
    )
    print(f"Overall detection  DataDome={format_percent(overall['DataDome'])}  BotD={format_percent(overall['BotD'])}")
    assert len(rows) == 20
