"""Section 5.1 — ASN and IP block-list coverage and evasion."""

from repro.analysis.ip_analysis import analyze_asn_blocklist, analyze_ip_blocklist
from repro.reporting.tables import format_percent


def bench_asn_blocklist(benchmark, corpus, bot_store):
    result = benchmark(analyze_asn_blocklist, bot_store, corpus.site.geo)
    print()
    print(f"Flagged-ASN fraction: {format_percent(result.flagged_fraction)} (paper: 82.54%)")
    print(f"  DataDome evasion among flagged: {format_percent(result.flagged_datadome_evasion)} (paper: 52.93%)")
    print(f"  BotD evasion among flagged:     {format_percent(result.flagged_botd_evasion)} (paper: 43.17%)")
    assert result.flagged_fraction > 0.5


def bench_ip_blocklist(benchmark, bot_store):
    result = benchmark(analyze_ip_blocklist, bot_store, coverage=0.1586, seed=0)
    print()
    print(f"IP block-list coverage: {format_percent(result.coverage)} (paper: 15.86%)")
    print(f"  DataDome evasion among covered: {format_percent(result.covered_datadome_evasion)} (paper: 48.1%)")
    print(f"  BotD evasion among covered:     {format_percent(result.covered_botd_evasion)} (paper: 68.85%)")
