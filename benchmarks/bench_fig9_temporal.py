"""Figure 9 — temporal distribution of traffic on the honey site."""

from repro.analysis.figures import figure9_daily_series
from repro.reporting.figures import series_to_csv


def bench_fig9_daily_series(benchmark, bot_store):
    series = benchmark(figure9_daily_series, bot_store)
    print()
    csv_text = series_to_csv(
        {
            "day": series.days,
            "requests": series.requests,
            "unique_ips": series.unique_ips,
            "unique_cookies": series.unique_cookies,
            "unique_fingerprints": series.unique_fingerprints,
        }
    )
    print("Figure 9 series (first 10 days):")
    print("\n".join(csv_text.splitlines()[:11]))
    peak_day = series.days[series.requests.index(max(series.requests))]
    print(f"Peak volume on day {peak_day} (renewal days are 0, 30, 60)")
    assert sum(series.requests) == len(bot_store)
