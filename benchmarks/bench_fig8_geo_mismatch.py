"""Figure 8 / Section 6.2 — location via IP address vs browser timezone."""

from repro.analysis.figures import figure8_location_histograms, section62_geo_match
from repro.reporting.tables import format_percent, format_table


def bench_fig8_geo_mismatch(benchmark, corpus, bot_store):
    services_with_regions = {
        p.name: p.advertised_region for p in corpus.bot_profiles if p.advertised_region
    }
    summaries = benchmark(section62_geo_match, bot_store, services_with_regions)
    print()
    print(
        format_table(
            ["Service", "Advertised region", "Requests", "IP match", "Timezone match"],
            [
                (s.service, s.advertised_region, s.requests, format_percent(s.ip_match_rate), format_percent(s.timezone_match_rate))
                for s in summaries
            ],
            title="Section 6.2 (paper: Canada 92.44% vs 76.52%; Europe 99.83% vs 56%)",
        )
    )
    by_timezone, by_ip = figure8_location_histograms(bot_store)
    print(f"Figure 8: {len(by_ip)} countries by IP vs {len(by_timezone)} by timezone; distributions differ: {by_ip != by_timezone}")
    assert all(s.ip_match_rate >= s.timezone_match_rate - 0.05 for s in summaries)
