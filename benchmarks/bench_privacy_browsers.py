"""Section 7.5 / Appendix G — privacy-enhancing technologies."""

from repro.analysis.privacy_eval import evaluate_privacy_technologies
from repro.core.detector import FPInconsistent
from repro.reporting.tables import format_percent, format_table
from repro.users.privacy import PrivacyTechnology


def bench_privacy_technologies(benchmark, corpus, pipeline_result):
    stores = {
        technology: corpus.privacy_store(technology)
        for technology in PrivacyTechnology
        if len(corpus.privacy_store(technology)) > 0
    }
    detector = FPInconsistent(filter_list=pipeline_result.filter_list)
    results = benchmark(evaluate_privacy_technologies, stores, detector)
    print()
    print(
        format_table(
            ["Technology", "Requests", "DataDome", "BotD", "FP-Inc (spatial)", "FP-Inc (temporal)", "FP-Inc (combined)"],
            [
                (
                    r.technology.value,
                    r.requests,
                    format_percent(r.datadome_detection_rate),
                    format_percent(r.botd_detection_rate),
                    format_percent(r.fp_spatial_rate),
                    format_percent(r.fp_temporal_rate),
                    format_percent(r.fp_inconsistent_rate),
                )
                for r in results
            ],
            title="Section 7.5 / Appendix G (paper: Tor fully flagged; Brave only temporal; Safari/uBlock/ABP untouched)",
        )
    )
    by_tech = {r.technology: r for r in results}
    assert by_tech[PrivacyTechnology.TOR].fp_spatial_rate > 0.9
    assert by_tech[PrivacyTechnology.SAFARI].fp_inconsistent_rate == 0.0
