"""Corpus-engine scaling benchmark: serial seed path vs. sharded engine.

Times the legacy single-stream serial build against the sharded engine —
both generation engines (vectorized and legacy reference), each at 1 and
4 requested workers — for a couple of scales, printing requests/second,
the speedup over serial, the plan the engine actually chose (the
min-records clamp falls back to serial where fan-out overhead would
dominate), the columnar shard-payload bytes shipped back to the
coordinator and the deferred record-materialisation cost of the lazy
store, and writes the result document to ``BENCH_corpus_scaling.json``
next to the repository root so successive PRs accumulate a perf
trajectory.

The headline target is the vectorized engine beating the legacy serial
build ≥2× on a single worker; the assertion is opt-in because shared CI
runners are noisy.
"""

import json
import os
from pathlib import Path

from repro.cli import run_scaling_benchmark

#: Required engine-vs-serial speedup (the vectorized engine achieves it
#: on a single worker).
TARGET_SPEEDUP = 2.0

#: Cores needed before the speedup assertion is meaningful.
MIN_CPUS_FOR_TARGET = 4

#: Environment variable turning the speedup target into a hard failure.
#: Off by default: shared CI runners and small scales (where the largest
#: shard dominates) make an unconditional 2x gate too noisy to block
#: merges on; the numbers are always recorded either way.
REQUIRE_SPEEDUP_ENV_VAR = "REPRO_BENCH_REQUIRE_SPEEDUP"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus_scaling.json"


def bench_corpus_scaling():
    scales_env = os.environ.get("REPRO_SCALE")
    scales = [float(scales_env)] if scales_env else [0.01, 0.05]
    document = run_scaling_benchmark(scales=scales, worker_counts=[1, 4], seed=7)

    RESULT_PATH.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    for entry in document["scales"]:
        print(
            f"scale {entry['scale']}: serial {entry['serial_rps']} req/s; "
            + "; ".join(
                f"{run['generation'][:3]}/{run['workers']}w {run['rps']} req/s "
                f"({run['speedup_vs_serial']}x"
                + (
                    f", {run['payload_bytes'] // 1024}KiB payload, "
                    f"+{run['materialize_seconds']}s materialise"
                    if run.get("payload_bytes")
                    else ""
                )
                + ")"
                for run in entry["engine"]
            )
        )

    # The target is a claim about the *vectorized* engine; legacy-generation
    # runs are recorded for the trajectory but must not satisfy the gate.
    best = max(
        run["speedup_vs_serial"]
        for entry in document["scales"]
        for run in entry["engine"]
        if run["generation"] == "vectorized"
    )
    cpus = os.cpu_count() or 1
    if cpus >= MIN_CPUS_FOR_TARGET and os.environ.get(REQUIRE_SPEEDUP_ENV_VAR):
        assert best >= TARGET_SPEEDUP, (
            f"expected the vectorized engine to be >= {TARGET_SPEEDUP}x faster than "
            f"the serial seed path on {cpus} CPUs, got {best}x"
        )
    else:
        print(
            f"best speedup {best}x on {cpus} CPU(s); set {REQUIRE_SPEEDUP_ENV_VAR}=1 "
            f"on >={MIN_CPUS_FOR_TARGET}-core hardware to enforce the {TARGET_SPEEDUP}x target"
        )
    # Regardless of cores, the engine must not be pathologically slower.
    assert best > 0.4, f"engine throughput collapsed: best speedup {best}x"
