"""Corpus-engine scaling benchmark: serial seed path vs. sharded engine.

Times the legacy single-stream serial build against the sharded engine at
1 and 4 workers for a couple of scales, printing requests/second and the
speedup, and writes the result document to ``BENCH_corpus_scaling.json``
next to the repository root so successive PRs accumulate a perf
trajectory.

The ≥2× parallel speedup claim needs real cores; on single-CPU boxes the
benchmark still records the numbers but does not assert the ratio.
"""

import json
import os
from pathlib import Path

from repro.cli import run_scaling_benchmark

#: Required engine-vs-serial speedup with 4 workers when hardware allows.
TARGET_SPEEDUP = 2.0

#: Cores needed before the speedup assertion is meaningful.
MIN_CPUS_FOR_TARGET = 4

#: Environment variable turning the speedup target into a hard failure.
#: Off by default: shared CI runners and small scales (where the largest
#: shard dominates) make an unconditional 2x gate too noisy to block
#: merges on; the numbers are always recorded either way.
REQUIRE_SPEEDUP_ENV_VAR = "REPRO_BENCH_REQUIRE_SPEEDUP"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus_scaling.json"


def bench_corpus_scaling():
    scales_env = os.environ.get("REPRO_SCALE")
    scales = [float(scales_env)] if scales_env else [0.01, 0.05]
    document = run_scaling_benchmark(scales=scales, worker_counts=[1, 4], seed=7)

    RESULT_PATH.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    for entry in document["scales"]:
        print(
            f"scale {entry['scale']}: serial {entry['serial_rps']} req/s; "
            + "; ".join(
                f"{run['workers']}w {run['rps']} req/s ({run['speedup_vs_serial']}x)"
                for run in entry["engine"]
            )
        )

    best = max(
        run["speedup_vs_serial"] for entry in document["scales"] for run in entry["engine"]
    )
    cpus = os.cpu_count() or 1
    if cpus >= MIN_CPUS_FOR_TARGET and os.environ.get(REQUIRE_SPEEDUP_ENV_VAR):
        assert best >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x speedup over the serial seed path "
            f"with 4 workers on {cpus} CPUs, got {best}x"
        )
    else:
        print(
            f"best speedup {best}x on {cpus} CPU(s); set {REQUIRE_SPEEDUP_ENV_VAR}=1 "
            f"on >={MIN_CPUS_FOR_TARGET}-core hardware to enforce the {TARGET_SPEEDUP}x target"
        )
    # Regardless of cores, the engine must not be pathologically slower.
    assert best > 0.4, f"engine throughput collapsed: best speedup {best}x"
