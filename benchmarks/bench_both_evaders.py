"""Section 5.3.3 — services evading both DataDome and BotD."""

from repro.analysis.evasion import dual_evader_summary
from repro.reporting.tables import format_percent


def bench_dual_evaders(benchmark, bot_store):
    summary = benchmark(dual_evader_summary, bot_store)
    print()
    print(f"Services evading both: {summary.services} with {summary.num_requests} requests (paper: S14, S20; 5,302 requests)")
    print(f"  DataDome evasion: {format_percent(summary.datadome_evasion_rate)} (paper: 84.7%)")
    print(f"  BotD evasion:     {format_percent(summary.botd_evasion_rate)} (paper: 90.59%)")
    print(f"  <8 cores:         {format_percent(summary.low_cores_fraction)} (paper: 83.77%)")
    print(f"  no plugins:       {format_percent(summary.no_plugins_fraction)} (paper: 93.02%)")
    print(f"  touch support:    {format_percent(summary.touch_support_fraction)} (paper: 78.36%)")
    assert summary.touch_support_fraction > 0.5
