"""Appendix C — the attribute combination that evades DataDome."""

from repro.analysis.attributes import appendix_c_combination
from repro.reporting.tables import format_percent


def bench_appendix_c(benchmark, bot_store):
    result = benchmark(appendix_c_combination, bot_store)
    print()
    print(
        f"Requests matching the Appendix C combination: {result.matching_requests} "
        f"with DataDome evasion {format_percent(result.matching_datadome_evasion)} "
        f"(corpus-wide evasion {format_percent(result.overall_datadome_evasion)})"
    )
    assert result.matching_datadome_evasion >= result.overall_datadome_evasion
