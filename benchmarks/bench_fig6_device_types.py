"""Figure 6 — device types with the highest DataDome evasion probability."""

from repro.analysis.figures import figure6_device_evasion
from repro.reporting.figures import ascii_bar_chart


def bench_fig6_device_types(benchmark, bot_store):
    points = benchmark(figure6_device_evasion, bot_store)
    print()
    print(
        ascii_bar_chart(
            {p.device: p.evasion_probability for p in points},
            title="Figure 6 — top device types by P(evade DataDome) (paper: iPhone ~50%, then Other/iPad/Mac)",
        )
    )
    assert points
