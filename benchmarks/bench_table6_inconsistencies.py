"""Table 6 — example spatial inconsistencies mined per attribute group."""

from repro.core.spatial import SpatialInconsistencyMiner
from repro.reporting.tables import format_table


def bench_table6_mined_rules(benchmark, bot_store):
    miner = SpatialInconsistencyMiner()
    filter_list = benchmark.pedantic(miner.mine_store, args=(bot_store,), rounds=1, iterations=1)
    print()
    rows = []
    for category, rules in filter_list.by_category().items():
        top = sorted(rules, key=lambda r: r.support, reverse=True)[:5]
        for rule in top:
            rows.append((category.value, f"({rule.attribute_a.value}, {rule.attribute_b.value})", f"({rule.value_a}, {rule.value_b})", rule.support))
    print(format_table(["Group", "Attributes", "Example", "Support"], rows, title=f"Table 6 — {len(filter_list)} mined inconsistency rules"))
    assert len(filter_list) > 20
