"""Section 5.2 / Table 2 — evasion classifiers and attribute importance."""

from repro.analysis.attributes import train_evasion_classifier
from repro.reporting.tables import format_percent, format_table


def bench_table2_importance(benchmark, bot_store):
    def run():
        return {
            detector: train_evasion_classifier(bot_store, detector, max_samples=20_000, seed=0)
            for detector in ("DataDome", "BotD")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Detector", "Train acc", "Test acc", "Top-5 attributes"],
            [
                (
                    name,
                    format_percent(result.train_accuracy),
                    format_percent(result.test_accuracy),
                    ", ".join(result.top_attributes(5)),
                )
                for name, result in results.items()
            ],
            title="Table 2 (paper: DataDome acc 81.66%, BotD acc 97.71%)",
        )
    )
    assert results["BotD"].test_accuracy > 0.9
