"""Streaming replay scaling benchmark.

Replays the bot corpus through the online streaming subsystem
(:mod:`repro.stream`) at several micro-batch sizes, recording sustained
end-to-end throughput (ingest + classify, rows/second) and the p50/p99
per-batch wall-clock latency — the two numbers a serving deployment sizes
against.  Every frozen-list run first re-asserts the subsystem's oracle:
verdicts identical to one batch classification of the whole store (the
full pin lives in ``tests/test_stream.py``).

A refresh-enabled run (periodic window re-mining hot-swapped at batch
boundaries) is recorded alongside so the cost of keeping the filter list
fresh shows up in the same trajectory.

A telemetry A/B pair (same replay with ``repro.obs`` recording off and
on, best of :data:`TELEMETRY_REPEATS` runs each) gates the instrumented
hot path: the per-batch latency histogram and span records may cost at
most :data:`TELEMETRY_OVERHEAD_BUDGET` of throughput at the committed
baseline scale.

Results land in ``BENCH_stream_scaling.json`` next to the repository root
when run at the baseline scale (0.05); smaller scales (CI smoke uses 0.01)
write to a scratch file so they never clobber the committed trajectory.
``REPRO_BENCH_STREAM_OUTPUT`` overrides either default.
"""

import json
import os
import tempfile
from pathlib import Path

from repro import obs
from repro.analysis.corpus import default_scale
from repro.analysis.engine import CorpusEngine
from repro.core.detector import FPInconsistent
from repro.stream import FilterListRefresher, ReplayDriver

#: Micro-batch sizes swept by the frozen-list replay runs.
BATCH_SIZES = (256, 2048)

#: Refresh-run knobs: re-mine every this many batches over this window.
REFRESH_INTERVAL_BATCHES = 8
REFRESH_WINDOW_ROWS = 25_000

#: Scale of the committed repo-root baseline.
BASELINE_SCALE = 0.05

#: Telemetry A/B runs per arm; best-of-N fights scheduler noise.
TELEMETRY_REPEATS = 3

#: Maximum fraction of throughput the enabled telemetry may cost at the
#: baseline scale.  Tiny smoke corpora amortise the per-batch clock reads
#: over far less work, so sub-baseline scales get a noise-dominated
#: allowance instead of a meaningful gate.
TELEMETRY_OVERHEAD_BUDGET = 0.02
TELEMETRY_SMOKE_BUDGET = 0.25

#: Environment variable overriding where the result document is written.
OUTPUT_ENV_VAR = "REPRO_BENCH_STREAM_OUTPUT"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream_scaling.json"


def _result_path(scale: float) -> Path:
    override = os.environ.get(OUTPUT_ENV_VAR)
    if override:
        return Path(override)
    if scale >= BASELINE_SCALE:
        return RESULT_PATH
    return Path(tempfile.gettempdir()) / "BENCH_stream_scaling.json"


def _run_entry(result, batch_size: int) -> dict:
    return {
        "batch_size": batch_size,
        "rows": result.rows,
        "batches": result.batches,
        "seconds": round(result.seconds, 3),
        "rows_per_second": round(result.rows_per_second, 1),
        **{
            name: round(value, 3)
            for name, value in result.latency_quantiles_ms().items()
        },
    }


def _telemetry_overhead_entry(detector, bot_store, scale: float) -> dict:
    """Best-of-N throughput with telemetry off vs. on, plus the gate."""

    batch_size = BATCH_SIZES[-1]
    arms = {}
    for arm, enabled in (("off", False), ("on", True)):
        obs.set_telemetry(enabled)
        try:
            arms[arm] = max(
                ReplayDriver(detector, batch_size=batch_size)
                .replay(bot_store)
                .rows_per_second
                for _ in range(TELEMETRY_REPEATS)
            )
        finally:
            obs.set_telemetry(None)
    overhead = 1.0 - arms["on"] / arms["off"]
    budget = (
        TELEMETRY_OVERHEAD_BUDGET if scale >= BASELINE_SCALE else TELEMETRY_SMOKE_BUDGET
    )
    return {
        "batch_size": batch_size,
        "repeats": TELEMETRY_REPEATS,
        "rows_per_second_off": round(arms["off"], 1),
        "rows_per_second_on": round(arms["on"], 1),
        "overhead_pct": round(overhead * 100, 2),
        "budget_pct": round(budget * 100, 2),
    }


def bench_stream_scaling():
    scale = default_scale()
    corpus = CorpusEngine(seed=7, scale=scale, include_real_users=True).build(workers=1)
    bot_store = corpus.bot_store

    detector = FPInconsistent()
    table, _table_source = detector.resolve_table(
        bot_store, corpus.columnar_tables.get("bots")
    )
    detector.fit_table(table)
    batch_verdicts = detector.classify_table(table)

    runs = []
    for batch_size in BATCH_SIZES:
        result = ReplayDriver(detector, batch_size=batch_size).replay(bot_store)
        # Frozen-list oracle: going online must cost nothing in quality.
        assert result.verdicts == batch_verdicts, (
            f"streaming verdicts diverged from the batch pipeline at "
            f"batch size {batch_size}"
        )
        runs.append(_run_entry(result, batch_size))

    refresher = FilterListRefresher(
        detector.miner,
        interval_batches=REFRESH_INTERVAL_BATCHES,
        window_rows=REFRESH_WINDOW_ROWS,
    )
    refresh_result = ReplayDriver(
        detector, batch_size=BATCH_SIZES[-1], refresher=refresher
    ).replay(bot_store)
    refresh_run = _run_entry(refresh_result, BATCH_SIZES[-1])
    refresh_run["refreshes"] = refresh_result.refreshes
    refresh_run["refresh_interval_batches"] = REFRESH_INTERVAL_BATCHES
    refresh_run["refresh_window_rows"] = REFRESH_WINDOW_ROWS

    telemetry_run = _telemetry_overhead_entry(detector, bot_store, scale)

    document = {
        "benchmark": "stream_scaling",
        "seed": 7,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "rules": len(detector.filter_list),
        "runs": runs,
        "refresh_run": refresh_run,
        "telemetry_overhead": telemetry_run,
    }
    result_path = _result_path(scale)
    result_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {result_path}")
    for run in runs + [refresh_run]:
        label = "refresh" if "refreshes" in run else "frozen"
        print(
            f"{label} bs={run['batch_size']:>5}: {run['rows_per_second']} rows/s, "
            f"p50 {run['p50_batch_ms']}ms, p95 {run['p95_batch_ms']}ms, "
            f"p99 {run['p99_batch_ms']}ms"
        )
    print(
        f"telemetry bs={telemetry_run['batch_size']:>5}: "
        f"{telemetry_run['rows_per_second_off']} rows/s off, "
        f"{telemetry_run['rows_per_second_on']} rows/s on "
        f"({telemetry_run['overhead_pct']}% overhead, "
        f"budget {telemetry_run['budget_pct']}%)"
    )

    # Latency must scale with batch size, and throughput must stay in the
    # same order of magnitude across batch sizes (no pathological per-batch
    # constant); both hold with huge margins on any hardware.
    assert all(run["p50_batch_ms"] <= run["p99_batch_ms"] for run in runs)
    fastest = max(run["rows_per_second"] for run in runs)
    slowest = min(run["rows_per_second"] for run in runs)
    assert slowest > 0 and fastest / slowest < 50, (fastest, slowest)

    # The instrumented hot path must stay within its overhead budget.
    assert telemetry_run["overhead_pct"] <= telemetry_run["budget_pct"], telemetry_run
