"""Figure 10 — platform values reported under the busiest cookie."""

from repro.analysis.figures import figure10_platform_spread
from repro.reporting.figures import ascii_bar_chart


def bench_fig10_platform_spread(benchmark, bot_store):
    spread = benchmark(figure10_platform_spread, bot_store)
    print()
    assert spread is not None
    print(f"Busiest cookie carried {spread.requests} requests over {spread.distinct_platforms} platform values")
    print(
        ascii_bar_chart(
            spread.platform_percentages,
            title="Figure 10 — % of requests per platform for the busiest cookie (paper: 8 platforms for one device)",
        )
    )
