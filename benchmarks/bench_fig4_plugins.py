"""Figure 4 — probability of evading BotD per PDF plugin."""

from repro.analysis.figures import figure4_plugin_evasion
from repro.reporting.figures import ascii_bar_chart


def bench_fig4_plugin_evasion(benchmark, bot_store):
    points = benchmark(figure4_plugin_evasion, bot_store)
    print()
    print(
        ascii_bar_chart(
            {p.plugin: p.evasion_probability for p in points},
            title="Figure 4 — P(evade BotD | plugin present) (paper: ~1.0 for every PDF plugin)",
        )
    )
    assert all(p.evasion_probability > 0.9 for p in points if p.requests >= 50)
