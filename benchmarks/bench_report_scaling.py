"""Reporting-engine scaling benchmark (``repro report``).

Regenerates the paper's tables and figures from one corpus under both
report engines and records per-section wall-clock seconds: the
zero-materialisation columnar engine against the record-at-a-time object
oracle.  The per-section digests are asserted equal first — a speedup
over diverging output would be meaningless.

Two configurations are timed, each engine on a freshly loaded archive so
one run's session-decode caches never subsidise the other:

- ``analysis`` — every section the engines implement differently (all of
  them except ``table2`` and ``privacy``); this is the configuration the
  >=3x columnar-speedup gate applies to.
- ``full`` — the complete report.  ``table2`` trains the same classifier
  on the same sampled rows under both engines and ``privacy`` replays the
  same fitted detector, so their engine-invariant cost dilutes the ratio;
  it is recorded, not gated.

The corpus is also saved to a scratch archive and loaded twice with
memory-mapping enabled, timing the cold (first touch) and warm (page
cache hot) load paths that front a cached ``repro report`` invocation.

Results land in ``BENCH_report_scaling.json`` next to the repository root
when run at the baseline scale (0.05); smaller scales (CI smoke uses
0.01) write to a scratch file so they never clobber the committed
trajectory.  ``REPRO_BENCH_REPORT_OUTPUT`` overrides either default.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis.cache import MMAP_ENV_VAR, load_corpus, save_corpus
from repro.analysis.corpus import default_scale
from repro.analysis.engine import CorpusEngine
from repro.analysis.report import generate_report, report_section_keys

#: Training-sample cap for the Table 2 classifiers; identical work on both
#: engines, kept bounded so the ML section doesn't dominate the totals.
ML_SAMPLES = 2000

#: Sections whose implementation differs per engine (the speedup gate).
ENGINE_INVARIANT_SECTIONS = ("table2", "privacy")

#: Scale of the committed repo-root baseline.
BASELINE_SCALE = 0.05

#: Environment variable overriding where the result document is written.
OUTPUT_ENV_VAR = "REPRO_BENCH_REPORT_OUTPUT"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_report_scaling.json"


def _result_path(scale: float) -> Path:
    override = os.environ.get(OUTPUT_ENV_VAR)
    if override:
        return Path(override)
    if scale >= BASELINE_SCALE:
        return RESULT_PATH
    return Path(tempfile.gettempdir()) / "BENCH_report_scaling.json"


def bench_report_scaling():
    scale = default_scale()
    corpus = CorpusEngine(
        seed=7, scale=scale, include_real_users=True, include_privacy=True
    ).build(workers=1)
    analysis_sections = tuple(
        key for key in report_section_keys() if key not in ENGINE_INVARIANT_SECTIONS
    )

    archive = Path(tempfile.mkdtemp(prefix="repro-report-bench-"))
    previous_mmap = os.environ.get(MMAP_ENV_VAR)
    os.environ[MMAP_ENV_VAR] = "1"
    try:
        # Cold vs warm memory-mapped archive loads, as in a cached invocation.
        save_corpus(corpus, archive)
        started = time.perf_counter()
        load_corpus(archive)
        cold_load_seconds = time.perf_counter() - started
        started = time.perf_counter()
        load_corpus(archive)
        warm_load_seconds = time.perf_counter() - started

        configs = {}
        for config, sections in (("analysis", analysis_sections), ("full", None)):
            reports = {}
            for engine in ("columnar", "object"):
                # A fresh load per run: session-decode caches warmed by
                # one engine must not subsidise the other.
                fresh = load_corpus(archive)
                reports[engine] = generate_report(
                    fresh, engine=engine, ml_samples=ML_SAMPLES, sections=sections
                )
            # Oracle first: a speedup over diverging output is meaningless.
            assert reports["columnar"].digests() == reports["object"].digests()
            assert reports["columnar"].materialized_records == 0
            assert reports["object"].materialized_records > 0
            configs[config] = {
                "columnar_speedup": round(
                    reports["object"].total_seconds
                    / reports["columnar"].total_seconds,
                    2,
                ),
                "engines": {
                    engine: {
                        "total_seconds": round(report.total_seconds, 3),
                        "materialized_records": report.materialized_records,
                        "sections": {
                            section.key: round(section.seconds, 4)
                            for section in report.sections
                        },
                    }
                    for engine, report in reports.items()
                },
            }
    finally:
        if previous_mmap is None:
            os.environ.pop(MMAP_ENV_VAR, None)
        else:
            os.environ[MMAP_ENV_VAR] = previous_mmap
        shutil.rmtree(archive, ignore_errors=True)

    document = {
        "benchmark": "report_scaling",
        "seed": 7,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "ml_samples": ML_SAMPLES,
        "bot_requests": sum(corpus.service_volumes.values()),
        "cold_load_seconds": round(cold_load_seconds, 3),
        "warm_load_seconds": round(warm_load_seconds, 3),
        "configs": configs,
    }
    result_path = _result_path(scale)
    result_path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {result_path}")
    print(f"load: cold {cold_load_seconds:.3f}s, warm {warm_load_seconds:.3f}s (mmap)")
    for config, entry in configs.items():
        totals = {
            engine: run["total_seconds"] for engine, run in entry["engines"].items()
        }
        print(
            f"{config:>8}: columnar {totals['columnar']}s vs object "
            f"{totals['object']}s — {entry['columnar_speedup']}x"
        )

    # The whole point of the columnar engine: at the baseline scale the
    # engine-differentiated report must be at least 3x faster than the
    # object oracle.
    if scale >= BASELINE_SCALE:
        speedup = configs["analysis"]["columnar_speedup"]
        assert speedup >= 3.0, f"columnar speedup {speedup}x below 3x"
