"""Section 7.3 — 80/20 generalisation of the mined rules."""

from repro.core.evaluation import evaluate_generalization
from repro.reporting.tables import format_percent, format_table


def bench_generalization(benchmark, bot_store):
    results = benchmark.pedantic(
        evaluate_generalization, args=(bot_store,), kwargs={"train_fraction": 0.8, "seed": 0}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["Detector", "Train detection", "Test detection", "Drop"],
            [
                (name, format_percent(r.train_detection_rate), format_percent(r.test_detection_rate), format_percent(r.accuracy_drop))
                for name, r in results.items()
            ],
            title="Section 7.3 generalisation (paper: drop of 0.23% DataDome, 0.42% BotD)",
        )
    )
    for result in results.values():
        assert abs(result.accuracy_drop) < 0.05
