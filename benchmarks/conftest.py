"""Shared fixtures for the benchmark harness.

One corpus (bots + real users + privacy technologies) is used per
benchmark session at the scale given by ``REPRO_SCALE`` (default 0.05,
i.e. ~25k bot requests; set ``REPRO_SCALE=1.0`` to regenerate the paper's
full 507,080-request campaign).  Each benchmark regenerates one table or
figure of the paper and prints it alongside the paper's reference numbers.

The corpus comes from the sharded engine via the on-disk cache when the
``REPRO_CORPUS_CACHE`` / ``REPRO_WORKERS`` knobs are set (as in CI, where
the warm run must hit the cache); with neither set it falls back to the
legacy serial build.
"""

from __future__ import annotations

import pytest

from repro.analysis.corpus import build_corpus, default_scale
from repro.core.pipeline import FPInconsistentPipeline


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark reproducing one paper artefact")


@pytest.fixture(scope="session")
def corpus():
    """The measurement corpus shared by every benchmark.

    ``build_corpus`` engages the sharded engine and the on-disk cache when
    ``REPRO_WORKERS`` / ``REPRO_CORPUS_CACHE`` are set (as in CI) and
    falls back to the legacy serial build otherwise.
    """

    return build_corpus(
        seed=7,
        scale=default_scale(),
        include_real_users=True,
        include_privacy=True,
    )


@pytest.fixture(scope="session")
def bot_store(corpus):
    return corpus.bot_store


@pytest.fixture(scope="session")
def pipeline_result(corpus):
    """FP-Inconsistent mined and evaluated once for all rule benchmarks."""

    pipeline = FPInconsistentPipeline()
    return pipeline.run(corpus.bot_store, real_user_store=corpus.real_user_store)
