"""Figure 5 — CDF of CPU cores for high vs low DataDome-evasion cohorts."""

from repro.analysis.evasion import table1_rows, top_and_bottom_services
from repro.analysis.figures import figure5_core_cdfs
from repro.reporting.figures import cdf_table
from repro.reporting.tables import format_percent


def bench_fig5_core_cdfs(benchmark, bot_store):
    rows = table1_rows(bot_store)
    top, bottom = top_and_bottom_services(rows, "DataDome")
    high, low = benchmark(figure5_core_cdfs, bot_store, top, bottom)
    print()
    print(f"High-evasion cohort {top}: <8 cores on {format_percent(high.fraction_below(8))} of requests (paper: 84.7%)")
    print(f"Low-evasion cohort {bottom}: <8 cores on {format_percent(low.fraction_below(8))} of requests (paper: 38.16%)")
    print(cdf_table([
        (high.label, high.core_counts, high.cumulative_probability),
        (low.label, low.core_counts, low.cumulative_probability),
    ], value_name="cores"))
    assert high.fraction_below(8) > low.fraction_below(8)
