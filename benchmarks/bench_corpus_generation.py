"""Throughput of the measurement substrate itself (corpus generation)."""

import numpy as np

from repro.bots.marketplace import marketplace_by_name
from repro.bots.traffic import BotTrafficGenerator
from repro.honeysite.site import HoneySite


def bench_corpus_generation_throughput(benchmark):
    profile = marketplace_by_name()["S14"]

    def generate():
        site = HoneySite(rng=np.random.default_rng(0))
        generator = BotTrafficGenerator(site, rng=np.random.default_rng(0))
        generator.run_service(profile, scale=0.2)
        return len(site.store)

    recorded = benchmark.pedantic(generate, rounds=2, iterations=1)
    assert recorded == profile.scaled_requests(0.2)
