"""Section 7.4 — true-negative rate on real-user traffic."""

from repro.core.evaluation import true_negative_rate
from repro.core.detector import FPInconsistent
from repro.reporting.tables import format_percent


def bench_real_user_tnr(benchmark, corpus, pipeline_result):
    detector = FPInconsistent(filter_list=pipeline_result.filter_list)
    store = corpus.real_user_store

    def run():
        verdicts = detector.classify_store(store)
        return true_negative_rate(store, verdicts)

    tnr = benchmark(run)
    print()
    print(f"True-negative rate on {len(store)} real-user requests: {format_percent(tnr)} (paper: 96.84% on 2,206 requests)")
    assert tnr > 0.9
