"""Table 7 — attribute categories used for inconsistency analysis."""

from repro.fingerprint.categories import CATEGORY_ATTRIBUTES, all_candidate_pairs
from repro.ml.encoding import display_name
from repro.reporting.tables import format_table


def bench_table7_categories(benchmark):
    pairs = benchmark(all_candidate_pairs)
    print()
    print(
        format_table(
            ["Category", "Attributes"],
            [
                (category.value, ", ".join(display_name(a) for a in attributes))
                for category, attributes in CATEGORY_ATTRIBUTES.items()
            ],
            title="Table 7 — attribute categories",
        )
    )
    print(f"{len(pairs)} candidate attribute pairs examined by the spatial miner")
    assert len(CATEGORY_ATTRIBUTES) == 4
