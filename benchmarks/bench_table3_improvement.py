"""Table 3 — per-service detection improvement with FP-Inconsistent."""

from repro.core.evaluation import evaluate_table3
from repro.reporting.tables import format_percent, format_table


def bench_table3_per_service_improvement(benchmark, bot_store, pipeline_result):
    rows = benchmark(evaluate_table3, bot_store, pipeline_result.verdicts)
    print()
    print(
        format_table(
            ["Service", "Requests", "DataDome", "DataDome + FP-Inc", "BotD", "BotD + FP-Inc"],
            [
                (
                    r.service,
                    r.num_requests,
                    format_percent(r.datadome_baseline),
                    format_percent(r.datadome_improved),
                    format_percent(r.botd_baseline),
                    format_percent(r.botd_improved),
                )
                for r in rows
            ],
            title="Table 3 (paper, e.g. S1: DataDome 55.99%→83.41%, BotD 28.42%→60.26%)",
        )
    )
    assert all(r.datadome_improved >= r.datadome_baseline for r in rows)
