"""Table 4 — none / spatial / temporal / combined rule ablation."""

from repro.reporting.tables import format_percent, format_table


def bench_table4_ablation(benchmark, bot_store, pipeline_result):
    def table4():
        from repro.core.evaluation import evaluate_table4

        return evaluate_table4(bot_store, pipeline_result.verdicts)

    rates = benchmark(table4)
    print()
    print(
        format_table(
            ["Rules", "DataDome", "BotD"],
            [
                ("None", format_percent(rates["DataDome"].baseline), format_percent(rates["BotD"].baseline)),
                ("Spatial", format_percent(rates["DataDome"].with_spatial), format_percent(rates["BotD"].with_spatial)),
                ("Temporal", format_percent(rates["DataDome"].with_temporal), format_percent(rates["BotD"].with_temporal)),
                ("Combined", format_percent(rates["DataDome"].with_combined), format_percent(rates["BotD"].with_combined)),
            ],
            title="Table 4 (paper: 55.44/76.04/56.53/76.88 DataDome; 47.07/70.33/48.09/70.86 BotD)",
        )
    )
    print(
        "Evasion reduction: DataDome "
        + format_percent(rates["DataDome"].evasion_reduction)
        + " (paper 48.11%), BotD "
        + format_percent(rates["BotD"].evasion_reduction)
        + " (paper 44.95%)"
    )
    for detector_rates in rates.values():
        assert detector_rates.with_combined >= detector_rates.with_spatial >= detector_rates.baseline
