"""Figure 7 / Section 6.1 — screen resolutions of requests claiming iPhones."""

from repro.analysis.figures import figure7_iphone_resolutions
from repro.reporting.figures import ascii_bar_chart


def bench_fig7_iphone_resolutions(benchmark, bot_store):
    analysis = benchmark(figure7_iphone_resolutions, bot_store)
    print()
    print(f"Unique iPhone resolutions: {analysis.unique_resolutions} (paper: 83), among evading: {analysis.unique_resolutions_among_evading} (paper: 42)")
    print(f"Non-existent among top {len(analysis.top_points)}: {analysis.nonexistent_in_top} (paper: 9 of 10)")
    print(
        ascii_bar_chart(
            {p.resolution: p.evasion_probability for p in analysis.top_points},
            title="Figure 7 — top iPhone resolutions by P(evade DataDome)",
        )
    )
    assert analysis.unique_resolutions > 12
