"""Text tables, ASCII charts and CSV export."""

from repro.reporting.figures import ascii_bar_chart, cdf_table, series_to_csv
from repro.reporting.tables import format_percent, format_table

__all__ = [
    "ascii_bar_chart",
    "cdf_table",
    "format_percent",
    "format_table",
    "series_to_csv",
]
