"""Plain-text table rendering used by the benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string (``0.4401`` → ``"44.01%"``)."""

    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render *rows* as an aligned monospace table."""

    def _sanitise(cell: object) -> str:
        # Whitespace control characters would break the monospace alignment.
        return " ".join(str(cell).split())

    rendered_rows: List[List[str]] = [[_sanitise(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have the same number of cells as the header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
