"""Text rendering and CSV export of figure series.

The benchmarks print each figure as an ASCII bar chart or series table and
can export the underlying numbers as CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple


def ascii_bar_chart(
    items: Mapping[str, float],
    *,
    width: int = 40,
    value_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render a label → value mapping as a horizontal ASCII bar chart."""

    if not items:
        return title or ""
    maximum = max(items.values()) or 1.0
    label_width = max(len(str(label)) for label in items)
    lines = []
    if title:
        lines.append(title)
    for label, value in items.items():
        bar_length = int(round(width * (value / maximum))) if maximum > 0 else 0
        bar = "#" * bar_length
        lines.append(
            f"{str(label).ljust(label_width)} | {bar.ljust(width)} {value_format.format(value)}"
        )
    return "\n".join(lines)


def series_to_csv(
    columns: Mapping[str, Sequence[object]],
    path: Optional[object] = None,
) -> str:
    """Serialise parallel columns as CSV; optionally write to *path*.

    All columns must have the same length.
    """

    if not columns:
        raise ValueError("at least one column is required")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise ValueError("all columns must have the same length")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(columns)
    writer.writerow(names)
    for row_index in range(lengths.pop()):
        writer.writerow([columns[name][row_index] for name in names])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def cdf_table(
    curves: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    *,
    value_name: str = "value",
) -> str:
    """Render one or more CDF curves as a merged text table.

    ``curves`` is a sequence of ``(label, xs, cumulative_probabilities)``.
    """

    lines = []
    for label, xs, probabilities in curves:
        if len(xs) != len(probabilities):
            raise ValueError("xs and probabilities must have the same length")
        lines.append(f"{label}:")
        for x, probability in zip(xs, probabilities):
            lines.append(f"  {value_name}={x}: {probability:.3f}")
    return "\n".join(lines)
