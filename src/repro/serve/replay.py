"""Corpus replay through the parallel detection gateway.

The serving counterpart of :class:`~repro.stream.replay.ReplayDriver`:
the same arrival-ordered micro-batching (via
:class:`~repro.stream.replay.ArrivalStream`), but each batch is submitted
to a :class:`~repro.serve.gateway.DetectionGateway`, which fans scoring
out over its device-closed workers.  ``repro serve`` and
``benchmarks/bench_serve_scaling.py`` drive this class.

Like the single-stream driver, the gateway replay reads a lazy store's
columns without mutating them, so a memory-mapped corpus (warm
``REPRO_CORPUS_MMAP`` cache hit) replays directly from the on-disk
archive; worker submissions carry copied batch slices, never the maps.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.core.detector import InconsistencyVerdict
from repro.honeysite.storage import RequestStore
from repro.serve.gateway import DetectionGateway
from repro.stream.checkpoint import CheckpointError, StreamCheckpointer
from repro.stream.replay import DEFAULT_BATCH_SIZE, ArrivalStream, ReplayResult

logger = logging.getLogger("repro.serve")

#: The same per-batch latency histogram the single-stream driver fills
#: (interned by name): gateway batches are the same unit of work, so one
#: series answers "batch latency" for both front-ends.
_BATCH_SECONDS = obs.histogram("repro_stream_batch_seconds")


@dataclass
class ServeResult(ReplayResult):
    """A :class:`ReplayResult` plus the gateway's parallelism counters."""

    #: how many scoring workers the gateway ran
    workers: int = 1
    #: device keys whose state moved between workers during the replay
    #: (always 0 when the router was pre-pinned with ``from_table``)
    migrations: int = 0
    #: rows scored per worker, the replay's load-balance report
    worker_rows: List[int] = field(default_factory=list)
    #: the gateway's supervision incident report (JSON-ready)
    health: Optional[Dict] = None


class GatewayReplayDriver:
    """Replays a request store through a :class:`DetectionGateway`."""

    def __init__(self, gateway: DetectionGateway, *, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._gateway = gateway
        self.batch_size = int(batch_size)

    def replay(
        self,
        store: RequestStore,
        *,
        checkpointer: Optional[StreamCheckpointer] = None,
        resume: bool = False,
        max_batches: Optional[int] = None,
    ) -> ServeResult:
        """Stream every record of *store* through the gateway.

        Batches are submitted in stable timestamp order — the contract
        both the gateway and the single-stream driver assume.  The gateway
        is drained at end of stream so an in-flight background refresh is
        deployed (and counted) rather than lost, but it is left open:
        closing is the caller's job (``with gateway: ...``).

        Checkpointing mirrors :meth:`ReplayDriver.replay`: with a
        *checkpointer*, the gateway's full state is snapshotted at due
        batch boundaries (skipping boundaries where a background re-mine
        is in flight — the next boundary after the deploy captures a
        clean state); ``resume=True`` restores and continues, and
        *max_batches* bounds this invocation (the deterministic stand-in
        for a kill).
        """

        arrivals = ArrivalStream(store)
        total = arrivals.total

        verdicts: Dict[int, InconsistencyVerdict] = {}
        batch_seconds: List[float] = []
        start_row = 0
        resumed_from: Optional[int] = None
        if resume:
            if checkpointer is None:
                raise ValueError("resume=True requires a checkpointer")
            try:
                state = checkpointer.load()
            except CheckpointError as exc:
                logger.warning("checkpoint unreadable (%s); replaying from the start", exc)
                state = None
            if state is not None:
                if int(state["batch_size"]) != self.batch_size or int(state["rows_total"]) != total:
                    raise CheckpointError(
                        "checkpoint does not match this replay "
                        "(different batch size or store)"
                    )
                self._gateway.restore_state(state["gateway"])
                verdicts.update(state["verdicts"])
                start_row = int(state["cursor_rows"])
                resumed_from = int(state["batches"])

        scored_this_run = 0
        started = time.perf_counter()
        for start in range(start_row, total, self.batch_size):
            if max_batches is not None and scored_this_run >= max_batches:
                break
            batch_started = time.perf_counter()
            verdicts.update(arrivals.submit(self._gateway, start, self.batch_size))
            elapsed = time.perf_counter() - batch_started
            batch_seconds.append(elapsed)
            _BATCH_SECONDS.observe(elapsed, stage="total")
            scored_this_run += 1
            if (
                checkpointer is not None
                and checkpointer.due(self._gateway.batches)
                and self._gateway.checkpointable
            ):
                checkpointer.save(
                    {
                        "batch_size": self.batch_size,
                        "rows_total": total,
                        "cursor_rows": min(start + self.batch_size, total),
                        "batches": self._gateway.batches,
                        "gateway": self._gateway.export_state(),
                        "verdicts": dict(verdicts),
                    }
                )
        self._gateway.drain()
        seconds = time.perf_counter() - started
        return ServeResult(
            verdicts=verdicts,
            rows=total,
            batches=self._gateway.batches,
            seconds=seconds,
            batch_seconds=batch_seconds,
            refreshes=list(self._gateway.refreshes),
            checkpoints_saved=0 if checkpointer is None else checkpointer.saves,
            checkpoint_failures=0 if checkpointer is None else checkpointer.failures,
            resumed_from_batch=resumed_from,
            workers=self._gateway.workers,
            migrations=self._gateway.migrations,
            worker_rows=self._gateway.worker_rows(),
            health=self._gateway.health.to_dict(),
        )
