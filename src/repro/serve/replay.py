"""Corpus replay through the parallel detection gateway.

The serving counterpart of :class:`~repro.stream.replay.ReplayDriver`:
the same arrival-ordered micro-batching (via
:class:`~repro.stream.replay.ArrivalStream`), but each batch is submitted
to a :class:`~repro.serve.gateway.DetectionGateway`, which fans scoring
out over its device-closed workers.  ``repro serve`` and
``benchmarks/bench_serve_scaling.py`` drive this class.

Like the single-stream driver, the gateway replay reads a lazy store's
columns without mutating them, so a memory-mapped corpus (warm
``REPRO_CORPUS_MMAP`` cache hit) replays directly from the on-disk
archive; worker submissions carry copied batch slices, never the maps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.detector import InconsistencyVerdict
from repro.honeysite.storage import RequestStore
from repro.serve.gateway import DetectionGateway
from repro.stream.replay import DEFAULT_BATCH_SIZE, ArrivalStream, ReplayResult


@dataclass
class ServeResult(ReplayResult):
    """A :class:`ReplayResult` plus the gateway's parallelism counters."""

    #: how many scoring workers the gateway ran
    workers: int = 1
    #: device keys whose state moved between workers during the replay
    #: (always 0 when the router was pre-pinned with ``from_table``)
    migrations: int = 0
    #: rows scored per worker, the replay's load-balance report
    worker_rows: List[int] = field(default_factory=list)


class GatewayReplayDriver:
    """Replays a request store through a :class:`DetectionGateway`."""

    def __init__(self, gateway: DetectionGateway, *, batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._gateway = gateway
        self.batch_size = int(batch_size)

    def replay(self, store: RequestStore) -> ServeResult:
        """Stream every record of *store* through the gateway.

        Batches are submitted in stable timestamp order — the contract
        both the gateway and the single-stream driver assume.  The gateway
        is drained at end of stream so an in-flight background refresh is
        deployed (and counted) rather than lost, but it is left open:
        closing is the caller's job (``with gateway: ...``).
        """

        arrivals = ArrivalStream(store)
        total = arrivals.total

        verdicts: Dict[int, InconsistencyVerdict] = {}
        batch_seconds: List[float] = []
        started = time.perf_counter()
        for start in range(0, total, self.batch_size):
            batch_started = time.perf_counter()
            verdicts.update(arrivals.submit(self._gateway, start, self.batch_size))
            batch_seconds.append(time.perf_counter() - batch_started)
        self._gateway.drain()
        seconds = time.perf_counter() - started
        return ServeResult(
            verdicts=verdicts,
            rows=total,
            batches=len(batch_seconds),
            seconds=seconds,
            batch_seconds=batch_seconds,
            refreshes=list(self._gateway.refreshes),
            workers=self._gateway.workers,
            migrations=self._gateway.migrations,
            worker_rows=self._gateway.worker_rows(),
        )
