"""The parallel detection gateway: one ingest stream, N scoring workers.

:class:`DetectionGateway` is the serving front-end of the reproduction.
It owns the full online scoring path for one arrival stream:

* **one** :class:`~repro.stream.ingest.StreamIngestor` encodes every
  arriving micro-batch against a single growing vocabulary (ingestion is
  sequential and cheap; a shared vocabulary is what keeps N workers'
  outputs mergeable and byte-identical to a single stream);
* a :class:`~repro.serve.partition.DeviceRouter` splits each encoded
  batch into device-closed row groups, one per worker;
* **N** :class:`~repro.stream.classifier.OnlineClassifier` workers score
  their row groups concurrently on a thread pool, each carrying only its
  own devices' temporal state;
* an optional :class:`~repro.stream.refresh.FilterListRefresher` re-mines
  the filter list over a sliding window — by default on a **background**
  worker, off the scoring path — and the gateway hot-swaps the result
  into every worker at a batch boundary.

The gateway's oracle, pinned by ``tests/test_serve.py`` and the CI serve
smoke: with a frozen filter list, the merged verdicts are byte-identical
to the single-stream :class:`~repro.stream.replay.ReplayDriver` and to
one batch :meth:`FPInconsistent.classify_table` — for any worker count.
The argument is short: ingestion is shared, each device key's rows form
an identical subsequence on whichever single worker holds its state
(migrations move state between batches, before dispatch), spatial
matching is stateless per row, and verdict serialisation sorts by
request id.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.core.rules import FilterList
from repro.honeysite.storage import RecordColumns, RecordedRequest
from repro.stream.classifier import OnlineClassifier
from repro.stream.ingest import StreamIngestor
from repro.stream.refresh import FilterListRefresher
from repro.serve.partition import DeviceRouter, KeyMigration

#: Refresh scheduling modes: mine on a background thread and deploy at a
#: later batch boundary, or mine inline like the replay driver.
REFRESH_MODES = ("background", "sync")


class DetectionGateway:
    """Parallel online scoring: shared ingest, device-closed workers."""

    def __init__(
        self,
        detector: FPInconsistent,
        *,
        router: Optional[DeviceRouter] = None,
        workers: int = 1,
        refresher: Optional[FilterListRefresher] = None,
        refresh_mode: str = "background",
    ):
        """Assemble a gateway around a fitted *detector*.

        ``router`` defaults to a fresh dynamic :class:`DeviceRouter` with
        ``workers`` workers; pass :meth:`DeviceRouter.from_table` output to
        pre-pin the device partition (the replay path — zero migrations).
        When a ``router`` is given, ``workers`` is taken from it.
        ``refresh_mode`` is ``"background"`` (mine off the scoring path,
        deploy at a later batch boundary) or ``"sync"`` (mine inline at the
        due boundary — the :class:`ReplayDriver` cadence, byte-compatible
        with it).
        """

        if refresh_mode not in REFRESH_MODES:
            raise ValueError(
                f"refresh_mode must be one of {REFRESH_MODES}, got {refresh_mode!r}"
            )
        self._router = router if router is not None else DeviceRouter(workers)
        self.workers = self._router.workers
        self._ingestor = StreamIngestor(attributes=detector.table_attributes())
        self._classifiers = [OnlineClassifier(detector) for _ in range(self.workers)]
        self._pool = (
            ThreadPoolExecutor(max_workers=self.workers) if self.workers > 1 else None
        )
        self._refresher = refresher
        self.refresh_mode = refresh_mode
        self._refresh_pool = (
            ThreadPoolExecutor(max_workers=1)
            if refresher is not None and refresh_mode == "background"
            else None
        )
        self._inflight: Optional[Future] = None
        self._inflight_day: Optional[int] = None
        self.batches = 0
        self.migrations = 0
        #: one entry per filter-list hot-swap: {"batch", "rules"[, "stream_day"]}
        self.refreshes: List[Dict] = []
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def router(self) -> DeviceRouter:
        return self._router

    @property
    def ingestor(self) -> StreamIngestor:
        return self._ingestor

    @property
    def classifiers(self) -> List[OnlineClassifier]:
        """The per-worker scoring streams (observability/tests)."""

        return self._classifiers

    @property
    def rows_scored(self) -> int:
        return sum(classifier.rows_scored for classifier in self._classifiers)

    def worker_rows(self) -> List[int]:
        """Rows scored per worker — the gateway's load-balance report."""

        return [classifier.rows_scored for classifier in self._classifiers]

    # -- submission ------------------------------------------------------------

    def submit_records(
        self, records: Sequence[RecordedRequest]
    ) -> Dict[int, InconsistencyVerdict]:
        """Ingest and score one micro-batch of record objects.

        Returns one verdict per request id, exactly as the single-stream
        classifier would.  Batches must arrive in global timestamp order —
        the same contract the replay driver and a live collector satisfy.
        """

        self._check_open()
        return self._score(self._ingestor.ingest_records(records))

    def submit_rows(
        self, columns: RecordColumns, rows: np.ndarray
    ) -> Dict[int, InconsistencyVerdict]:
        """Ingest and score a row slice of cached record columns."""

        self._check_open()
        return self._score(self._ingestor.ingest_rows(columns, rows))

    # -- the scoring path ------------------------------------------------------

    def _score(self, batch: ColumnarTable) -> Dict[int, InconsistencyVerdict]:
        # A background-mined list deploys at the earliest batch boundary
        # after mining completes; every row of a batch sees one list.
        self._apply_ready_refresh(block=False)

        assignments, migrations = self._router.route(batch)
        for migration in migrations:
            self._migrate(migration)
        self.migrations += len(migrations)

        busy = [worker for worker, rows in enumerate(assignments) if rows.size]
        if self._pool is not None and len(busy) > 1:
            futures = {
                worker: self._pool.submit(
                    self._classifiers[worker].classify_batch,
                    batch.take(assignments[worker]),
                )
                for worker in busy
            }
            partials = {worker: futures[worker].result() for worker in busy}
        else:
            partials = {
                worker: self._classifiers[worker].classify_batch(
                    batch.take(assignments[worker])
                )
                for worker in busy
            }

        merged: Dict[int, InconsistencyVerdict] = {}
        for worker in busy:
            merged.update(partials[worker])
        # Re-emit in batch row order so callers see arrival-ordered
        # verdicts regardless of how rows were scattered over workers.
        verdicts = {int(rid): merged[int(rid)] for rid in batch.request_ids}

        self.batches += 1
        if self._refresher is not None:
            self._refresher.observe_batch(batch)
            if self.refresh_mode == "sync":
                refreshed = self._refresher.maybe_refresh()
                if refreshed is not None:
                    self._deploy(refreshed)
            elif self._inflight is None and self._refresher.poll_due():
                # Snapshot the window on the scoring path (cheap copies),
                # mine it off-path; at most one mining job is in flight.
                window = self._refresher.window_table()
                self._inflight_day = self._refresher.stream_day
                self._inflight = self._refresh_pool.submit(self._refresher.mine, window)
        return verdicts

    def _migrate(self, migration: KeyMigration) -> None:
        """Move one device key's temporal seen-state between workers.

        State entries are independent per (kind, key, attribute), so a
        straight dict move is exact: the target worker continues the key's
        observation sequence precisely where the source left off.
        """

        source = self._classifiers[migration.source].temporal_state.seen
        target = self._classifiers[migration.target].temporal_state.seen
        attributes = self._classifiers[0]._detector.temporal_detector.tracked_attributes
        for attribute in attributes:
            state_key = (migration.kind, migration.key, attribute)
            values = source.pop(state_key, None)
            if values is not None:
                target[state_key] = values

    # -- refresh plumbing ------------------------------------------------------

    def _apply_ready_refresh(self, *, block: bool) -> None:
        if self._inflight is None:
            return
        if not block and not self._inflight.done():
            return
        refreshed = self._inflight.result()
        self._inflight = None
        day, self._inflight_day = self._inflight_day, None
        self._deploy(refreshed, stream_day=day)

    def _deploy(self, filter_list: FilterList, stream_day: Optional[int] = None) -> None:
        for classifier in self._classifiers:
            classifier.swap_filter_list(filter_list)
        entry = {"batch": self.batches, "rules": len(filter_list)}
        if stream_day is None and self._refresher is not None:
            stream_day = self._refresher.stream_day
        if stream_day is not None:
            entry["stream_day"] = stream_day
        self.refreshes.append(entry)

    def drain(self) -> None:
        """Wait for any in-flight background mining and deploy its result.

        Call at end of stream (the replay drivers do) so a refresh that
        was still mining when the last batch arrived is not silently lost.
        """

        self._check_open()
        self._apply_ready_refresh(block=True)

    def close(self) -> None:
        """Shut the worker pools down; the gateway accepts no more batches."""

        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._refresh_pool is not None:
            if self._inflight is not None:
                self._inflight.cancel()
                self._inflight = None
            self._refresh_pool.shutdown(wait=True)

    def __enter__(self) -> "DetectionGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the gateway is closed")
