"""The parallel detection gateway: one ingest stream, N scoring workers.

:class:`DetectionGateway` is the serving front-end of the reproduction.
It owns the full online scoring path for one arrival stream:

* **one** :class:`~repro.stream.ingest.StreamIngestor` encodes every
  arriving micro-batch against a single growing vocabulary (ingestion is
  sequential and cheap; a shared vocabulary is what keeps N workers'
  outputs mergeable and byte-identical to a single stream);
* a :class:`~repro.serve.partition.DeviceRouter` splits each encoded
  batch into device-closed row groups, one per worker;
* **N** :class:`~repro.stream.classifier.OnlineClassifier` workers score
  their row groups concurrently on a thread pool, each carrying only its
  own devices' temporal state;
* an optional :class:`~repro.stream.refresh.FilterListRefresher` re-mines
  the filter list over a sliding window — by default on a **background**
  worker, off the scoring path — and the gateway hot-swaps the result
  into every worker at a batch boundary.

The gateway's oracle, pinned by ``tests/test_serve.py`` and the CI serve
smoke: with a frozen filter list, the merged verdicts are byte-identical
to the single-stream :class:`~repro.stream.replay.ReplayDriver` and to
one batch :meth:`FPInconsistent.classify_table` — for any worker count.
The argument is short: ingestion is shared, each device key's rows form
an identical subsequence on whichever single worker holds its state
(migrations move state between batches, before dispatch), spatial
matching is stateless per row, and verdict serialisation sorts by
request id.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import faults, obs
from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.core.rules import FilterList
from repro.honeysite.storage import RecordColumns, RecordedRequest
from repro.stream.classifier import OnlineClassifier
from repro.stream.ingest import StreamIngestor
from repro.stream.refresh import FilterListRefresher
from repro.serve.partition import DeviceRouter, KeyMigration

logger = logging.getLogger("repro.serve")

#: Refresh scheduling modes: mine on a background thread and deploy at a
#: later batch boundary, or mine inline like the replay driver.
REFRESH_MODES = ("background", "sync")

#: Scoring attempts per worker row group within one batch.  Each failed
#: attempt rebuilds the worker; a group still failing after the budget is
#: dead-lettered (recorded in :class:`GatewayHealth`, absent from the
#: batch's verdicts) instead of poisoning the stream.
WORKER_ATTEMPTS = 3

#: Seconds :meth:`DetectionGateway.close` waits for an in-flight
#: background re-mine before abandoning it.
CLOSE_JOIN_TIMEOUT = 5.0

#: Failed-re-mine retry backoff, in batches: the first retry launches one
#: batch later, then the delay doubles per consecutive failure up to the
#: cap, and resets on the next successful deploy.
REFRESH_BACKOFF_BASE_BATCHES = 1
REFRESH_BACKOFF_CAP_BATCHES = 64

#: Registry mirrors of :class:`GatewayHealth`.  The incident counters are
#: always on — health stays answerable in untraced runs, and the registry
#: is the cumulative source of truth across every gateway in the process
#: (the per-gateway ``health`` object keeps the detail: which rows were
#: dead-lettered, the last error).  Restoring a checkpoint does *not*
#: re-count: only live record_* events increment.
_WORKER_FAILURES = obs.counter(
    "repro_serve_worker_failures_total",
    "Supervised scoring failures, by gateway worker.",
    always=True,
)
_WORKER_REBUILDS = obs.counter(
    "repro_serve_worker_rebuilds_total",
    "Gateway workers rebuilt after a failure.",
    always=True,
)
_DEAD_LETTERS = obs.counter(
    "repro_serve_dead_letters_total",
    "Row groups dead-lettered after exhausting the attempt budget.",
    always=True,
)
_REFRESH_FAILURES = obs.counter(
    "repro_serve_refresh_failures_total",
    "Failed filter-list re-mines (background or sync).",
    always=True,
)
_MIGRATIONS = obs.counter(
    "repro_serve_migrations_total", "Device keys migrated between workers."
)
_REFRESH_DEPLOYS = obs.counter(
    "repro_serve_refresh_deploys_total",
    "Refreshed filter lists deployed across gateway workers.",
)
_WORKER_SCORE_SECONDS = obs.histogram(
    "repro_serve_worker_score_seconds",
    "Per-batch scoring wall-clock, by gateway worker.",
)


@dataclass
class GatewayHealth:
    """Incident report of one gateway's supervised execution.

    Every recovery action leaves a trace here: per-worker failure counts,
    how many workers were rebuilt, which row groups were dead-lettered
    after exhausting their attempt budget (batch index, worker, request
    ids) and how many background/sync re-mines failed.  A clean run is
    all zeros — the serve smoke asserts the *non*-zero counters under an
    injected fault plan.
    """

    worker_failures: Dict[int, int] = field(default_factory=dict)
    worker_rebuilds: int = 0
    dead_letters: List[Dict] = field(default_factory=list)
    refresh_failures: int = 0
    last_error: Optional[str] = None

    @property
    def total_worker_failures(self) -> int:
        return sum(self.worker_failures.values())

    def record_worker_failure(self, worker: int, exc: BaseException) -> None:
        self.worker_failures[worker] = self.worker_failures.get(worker, 0) + 1
        self.last_error = f"worker {worker}: {exc}"
        _WORKER_FAILURES.inc(worker=worker)

    def record_worker_rebuild(self) -> None:
        self.worker_rebuilds += 1
        _WORKER_REBUILDS.inc()

    def record_dead_letter(self, *, batch: int, worker: int, rows: List[int]) -> None:
        self.dead_letters.append({"batch": batch, "worker": worker, "rows": rows})
        _DEAD_LETTERS.inc()

    def record_refresh_failure(self, exc: BaseException) -> None:
        self.refresh_failures += 1
        self.last_error = f"refresh: {exc}"
        _REFRESH_FAILURES.inc()

    def to_dict(self) -> Dict:
        """JSON-ready summary (the serve CLI embeds it)."""

        return {
            "worker_failures": {
                str(worker): count for worker, count in sorted(self.worker_failures.items())
            },
            "total_worker_failures": self.total_worker_failures,
            "worker_rebuilds": self.worker_rebuilds,
            "dead_letters": [dict(entry) for entry in self.dead_letters],
            "refresh_failures": self.refresh_failures,
            "last_error": self.last_error,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "GatewayHealth":
        health = cls(
            worker_failures={
                int(worker): int(count)
                for worker, count in data.get("worker_failures", {}).items()
            },
            worker_rebuilds=int(data.get("worker_rebuilds", 0)),
            dead_letters=[dict(entry) for entry in data.get("dead_letters", ())],
            refresh_failures=int(data.get("refresh_failures", 0)),
            last_error=data.get("last_error"),
        )
        return health


class DetectionGateway:
    """Parallel online scoring: shared ingest, device-closed workers."""

    def __init__(
        self,
        detector: FPInconsistent,
        *,
        router: Optional[DeviceRouter] = None,
        workers: int = 1,
        refresher: Optional[FilterListRefresher] = None,
        refresh_mode: str = "background",
    ):
        """Assemble a gateway around a fitted *detector*.

        ``router`` defaults to a fresh dynamic :class:`DeviceRouter` with
        ``workers`` workers; pass :meth:`DeviceRouter.from_table` output to
        pre-pin the device partition (the replay path — zero migrations).
        When a ``router`` is given, ``workers`` is taken from it.
        ``refresh_mode`` is ``"background"`` (mine off the scoring path,
        deploy at a later batch boundary) or ``"sync"`` (mine inline at the
        due boundary — the :class:`ReplayDriver` cadence, byte-compatible
        with it).
        """

        if refresh_mode not in REFRESH_MODES:
            raise ValueError(
                f"refresh_mode must be one of {REFRESH_MODES}, got {refresh_mode!r}"
            )
        self._router = router if router is not None else DeviceRouter(workers)
        self.workers = self._router.workers
        #: the shared fitted detector — kept so supervision can rebuild a
        #: failed worker from scratch (each rebuild takes a fresh clone)
        self._detector = detector
        self._ingestor = StreamIngestor(attributes=detector.table_attributes())
        self._classifiers = [OnlineClassifier(detector) for _ in range(self.workers)]
        self._pool = (
            ThreadPoolExecutor(max_workers=self.workers) if self.workers > 1 else None
        )
        self._refresher = refresher
        self.refresh_mode = refresh_mode
        self._refresh_pool = (
            ThreadPoolExecutor(max_workers=1)
            if refresher is not None and refresh_mode == "background"
            else None
        )
        self._inflight: Optional[Future] = None
        self._inflight_day: Optional[int] = None
        self.batches = 0
        self.migrations = 0
        #: one entry per filter-list hot-swap: {"batch", "rules"[, "stream_day"]}
        self.refreshes: List[Dict] = []
        #: supervision incident report (failures, rebuilds, dead letters)
        self.health = GatewayHealth()
        self._health_lock = threading.Lock()
        self._refresh_attempts = 0
        self._refresh_retry_at: Optional[int] = None
        self._refresh_backoff = REFRESH_BACKOFF_BASE_BATCHES
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @property
    def router(self) -> DeviceRouter:
        return self._router

    @property
    def ingestor(self) -> StreamIngestor:
        return self._ingestor

    @property
    def classifiers(self) -> List[OnlineClassifier]:
        """The per-worker scoring streams (observability/tests)."""

        return self._classifiers

    @property
    def rows_scored(self) -> int:
        return sum(classifier.rows_scored for classifier in self._classifiers)

    def worker_rows(self) -> List[int]:
        """Rows scored per worker — the gateway's load-balance report."""

        return [classifier.rows_scored for classifier in self._classifiers]

    # -- submission ------------------------------------------------------------

    def submit_records(
        self, records: Sequence[RecordedRequest]
    ) -> Dict[int, InconsistencyVerdict]:
        """Ingest and score one micro-batch of record objects.

        Returns one verdict per request id, exactly as the single-stream
        classifier would.  Batches must arrive in global timestamp order —
        the same contract the replay driver and a live collector satisfy.
        """

        self._check_open()
        return self._score(self._ingestor.ingest_records(records))

    def submit_rows(
        self, columns: RecordColumns, rows: np.ndarray
    ) -> Dict[int, InconsistencyVerdict]:
        """Ingest and score a row slice of cached record columns."""

        self._check_open()
        return self._score(self._ingestor.ingest_rows(columns, rows))

    # -- the scoring path ------------------------------------------------------

    def _score(self, batch: ColumnarTable) -> Dict[int, InconsistencyVerdict]:
        telemetry_on = obs.telemetry_enabled()
        score_wall = time.time() if telemetry_on else 0.0
        score_started = time.perf_counter() if telemetry_on else 0.0
        # A background-mined list deploys at the earliest batch boundary
        # after mining completes; every row of a batch sees one list.
        self._apply_ready_refresh(block=False)

        assignments, migrations = self._router.route(batch)
        for migration in migrations:
            self._migrate(migration)
        self.migrations += len(migrations)
        if migrations:
            _MIGRATIONS.inc(len(migrations))

        busy = [worker for worker, rows in enumerate(assignments) if rows.size]
        groups = {worker: batch.take(assignments[worker]) for worker in busy}
        if self._pool is not None and len(busy) > 1:
            futures = {
                worker: self._pool.submit(self._classify_supervised, worker, groups[worker])
                for worker in busy
            }
            partials = {worker: futures[worker].result() for worker in busy}
        else:
            partials = {
                worker: self._classify_supervised(worker, groups[worker])
                for worker in busy
            }

        merged: Dict[int, InconsistencyVerdict] = {}
        for worker in busy:
            merged.update(partials[worker])
        # Re-emit in batch row order so callers see arrival-ordered
        # verdicts regardless of how rows were scattered over workers.
        # Dead-lettered rows (a worker's attempt budget exhausted) are the
        # one legitimate absence.
        verdicts: Dict[int, InconsistencyVerdict] = {}
        for rid in batch.request_ids:
            rid = int(rid)
            verdict = merged.get(rid)
            if verdict is not None:
                verdicts[rid] = verdict

        self.batches += 1
        if self._refresher is not None:
            self._refresher.observe_batch(batch)
            # poll_due runs every batch, even while a retry is pending, so
            # the days-mode schedule keeps consuming its triggers exactly
            # as in a failure-free run.
            due = self._refresher.poll_due()
            retry = (
                self._refresh_retry_at is not None
                and self.batches >= self._refresh_retry_at
            )
            if self.refresh_mode == "sync":
                if due or retry:
                    self._refresh_retry_at = None
                    try:
                        faults.check("refresh_mine", self._refresh_key())
                        refreshed = self._refresher.refresh()
                    except Exception as exc:
                        self._refresh_failed(exc)
                    else:
                        self._refresh_backoff = REFRESH_BACKOFF_BASE_BATCHES
                        self._deploy(refreshed)
            elif self._inflight is None and (due or retry):
                # Snapshot the window on the scoring path (cheap copies),
                # mine it off-path; at most one mining job is in flight.
                self._refresh_retry_at = None
                window = self._refresher.window_table()
                self._inflight_day = self._refresher.stream_day
                self._inflight = self._refresh_pool.submit(
                    self._mine_guarded, window, self._refresh_key()
                )
        if telemetry_on:
            obs.tracer().record(
                "serve.score",
                ts=score_wall,
                duration=time.perf_counter() - score_started,
                batch=self.batches - 1,
                rows=batch.n_rows,
                workers=len(busy),
            )
        return verdicts

    # -- supervision -----------------------------------------------------------

    def _classify_supervised(
        self, worker: int, rows_table: ColumnarTable
    ) -> Dict[int, InconsistencyVerdict]:
        """Score one worker's row group, surviving worker failures.

        Each failed attempt rebuilds the worker and re-scores the group
        (an injected fault fires before any state mutates, so the retry
        is exact; a genuine mid-batch crash re-scores best-effort from
        the carried-over state).  A group still failing after
        :data:`WORKER_ATTEMPTS` attempts is dead-lettered: recorded in
        :attr:`health` and absent from the batch's verdicts, so one
        poisoned group never takes the stream down.
        """

        for attempt in range(WORKER_ATTEMPTS):
            classifier = self._classifiers[worker]
            try:
                faults.check("worker_classify", f"b{self.batches}:w{worker}:a{attempt}")
                scored_at = time.perf_counter()
                partial = classifier.classify_batch(rows_table)
                _WORKER_SCORE_SECONDS.observe(
                    time.perf_counter() - scored_at, worker=worker
                )
                return partial
            except Exception as exc:
                with self._health_lock:
                    self.health.record_worker_failure(worker, exc)
                logger.warning("gateway worker %d failed (%s); rebuilding", worker, exc)
                self._rebuild_worker(worker)
        with self._health_lock:
            self.health.record_dead_letter(
                batch=self.batches,
                worker=worker,
                rows=[int(rid) for rid in rows_table.request_ids],
            )
        logger.error(
            "gateway worker %d dead-lettered %d rows of batch %d",
            worker,
            rows_table.n_rows,
            self.batches,
        )
        return {}

    def _rebuild_worker(self, worker: int) -> None:
        """Replace a failed worker with a rebuilt one, state carried over.

        The rebuilt classifier is a fresh clone of the shared detector
        carrying the failed worker's deployed filter list, its full
        device seen-state (the wholesale re-migration of every key the
        worker held — the router's key → worker pins stay valid) and its
        counters, so scoring resumes exactly where the failed worker
        stood.
        """

        failed = self._classifiers[worker]
        self._classifiers[worker] = OnlineClassifier(self._detector).restore(
            filter_list=failed.filter_list,
            temporal_state=failed.temporal_state,
            rows_scored=failed.rows_scored,
            swaps=failed.swaps,
        )
        with self._health_lock:
            self.health.record_worker_rebuild()

    def _migrate(self, migration: KeyMigration) -> None:
        """Move one device key's temporal seen-state between workers.

        State entries are independent per (kind, key, attribute), so a
        straight dict move is exact: the target worker continues the key's
        observation sequence precisely where the source left off.
        """

        source = self._classifiers[migration.source].temporal_state.seen
        target = self._classifiers[migration.target].temporal_state.seen
        attributes = self._classifiers[0]._detector.temporal_detector.tracked_attributes
        for attribute in attributes:
            state_key = (migration.kind, migration.key, attribute)
            values = source.pop(state_key, None)
            if values is not None:
                target[state_key] = values

    # -- refresh plumbing ------------------------------------------------------

    def _refresh_key(self) -> str:
        """The fault-point key of the next mining attempt (monotonic)."""

        key = f"d{self._refresher.stream_day}:r{self._refresh_attempts}"
        self._refresh_attempts += 1
        return key

    def _mine_guarded(self, window: ColumnarTable, key: str) -> FilterList:
        """Background mining unit: fire the ``refresh_mine`` point, then mine."""

        faults.check("refresh_mine", key)
        return self._refresher.mine(window)

    def _refresh_failed(self, exc: BaseException) -> None:
        """A re-mine failed: keep the deployed list, log, reschedule.

        The stream keeps scoring with the current filter list — a stale
        list degrades coverage, never correctness — and the next mining
        attempt is scheduled :attr:`_refresh_backoff` batches out, with
        the delay doubling per consecutive failure up to
        :data:`REFRESH_BACKOFF_CAP_BATCHES`.
        """

        with self._health_lock:
            self.health.record_refresh_failure(exc)
        self._refresh_retry_at = self.batches + self._refresh_backoff
        self._refresh_backoff = min(self._refresh_backoff * 2, REFRESH_BACKOFF_CAP_BATCHES)
        logger.warning(
            "filter-list refresh failed (%s); keeping the deployed list, "
            "retrying at batch %d",
            exc,
            self._refresh_retry_at,
        )

    def _apply_ready_refresh(self, *, block: bool) -> None:
        if self._inflight is None:
            return
        if not block and not self._inflight.done():
            return
        inflight, self._inflight = self._inflight, None
        day, self._inflight_day = self._inflight_day, None
        try:
            refreshed = inflight.result()
        except Exception as exc:
            self._refresh_failed(exc)
            return
        self._refresh_backoff = REFRESH_BACKOFF_BASE_BATCHES
        self._deploy(refreshed, stream_day=day)

    def _deploy(self, filter_list: FilterList, stream_day: Optional[int] = None) -> None:
        for classifier in self._classifiers:
            classifier.swap_filter_list(filter_list)
        entry = {"batch": self.batches, "rules": len(filter_list)}
        if stream_day is None and self._refresher is not None:
            stream_day = self._refresher.stream_day
        if stream_day is not None:
            entry["stream_day"] = stream_day
        self.refreshes.append(entry)
        _REFRESH_DEPLOYS.inc()

    # -- checkpointing ---------------------------------------------------------

    @property
    def checkpointable(self) -> bool:
        """Snapshot-safe right now? (no background re-mine in flight).

        The serve replay driver skips checkpoint boundaries where mining
        is in flight — the next boundary after the deploy captures a
        clean state.
        """

        return self._inflight is None

    def export_state(self) -> Dict:
        """The gateway's full durable state, as a picklable mapping.

        Covers everything a resumed gateway needs to continue the stream
        exactly: ingest vocabulary, router pins, each worker's filter
        list + seen-state + counters, the refresher window/schedule, the
        hot-swap history and the health report.
        """

        if self._inflight is not None:
            raise RuntimeError("cannot snapshot with a background re-mine in flight")
        return {
            "workers": self.workers,
            "ingest": self._ingestor.export_state(),
            "router": self._router.export_state(),
            "classifiers": [
                {
                    "filter_list": classifier.filter_list,
                    "temporal_state": classifier.temporal_state,
                    "rows_scored": classifier.rows_scored,
                    "swaps": classifier.swaps,
                }
                for classifier in self._classifiers
            ],
            "batches": self.batches,
            "migrations": self.migrations,
            "refreshes": [dict(entry) for entry in self.refreshes],
            "refresher": (
                self._refresher.export_state() if self._refresher is not None else None
            ),
            "refresh": {
                "attempts": self._refresh_attempts,
                "retry_at": self._refresh_retry_at,
                "backoff": self._refresh_backoff,
            },
            "health": self.health.to_dict(),
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt a snapshot exported by :meth:`export_state`."""

        if int(state["workers"]) != self.workers:
            raise ValueError(
                f"checkpointed gateway has {state['workers']} workers; "
                f"this gateway has {self.workers}"
            )
        self._ingestor.restore_state(state["ingest"])
        self._router.restore_state(state["router"])
        self._classifiers = [
            OnlineClassifier(self._detector).restore(
                filter_list=entry["filter_list"],
                temporal_state=entry["temporal_state"],
                rows_scored=entry["rows_scored"],
                swaps=entry["swaps"],
            )
            for entry in state["classifiers"]
        ]
        self.batches = int(state["batches"])
        self.migrations = int(state["migrations"])
        self.refreshes = [dict(entry) for entry in state["refreshes"]]
        if state.get("refresher") is not None and self._refresher is not None:
            self._refresher.restore_state(state["refresher"])
        refresh = state.get("refresh") or {}
        self._refresh_attempts = int(refresh.get("attempts", 0))
        self._refresh_retry_at = refresh.get("retry_at")
        self._refresh_backoff = int(refresh.get("backoff", REFRESH_BACKOFF_BASE_BATCHES))
        if state.get("health") is not None:
            self.health = GatewayHealth.from_dict(state["health"])

    def drain(self) -> None:
        """Wait for any in-flight background mining and deploy its result.

        Call at end of stream (the replay drivers do) so a refresh that
        was still mining when the last batch arrived is not silently lost.
        """

        self._check_open()
        self._apply_ready_refresh(block=True)

    def close(self) -> None:
        """Shut the worker pools down; the gateway accepts no more batches.

        An in-flight background re-mine is cancelled if still queued, else
        joined with a bounded timeout and its outcome — result or
        exception — swallowed: close never raises for work the caller
        already chose to abandon, and never blocks indefinitely on a
        stuck mining job.
        """

        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._refresh_pool is not None:
            inflight, self._inflight = self._inflight, None
            if inflight is not None:
                inflight.cancel()
                try:
                    inflight.exception(timeout=CLOSE_JOIN_TIMEOUT)
                except Exception:
                    pass  # cancelled, timed out or failed — all abandoned
            self._refresh_pool.shutdown(wait=False)

    def __enter__(self) -> "DetectionGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the gateway is closed")
