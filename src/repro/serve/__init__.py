"""Serving subsystem: the parallel online detection gateway.

``repro.stream`` made the detector *servable* — one ingest/score/refresh
stream with verdicts byte-identical to the batch pipeline.  This package
makes it *parallel* without giving that identity up, in three pieces:

* :class:`~repro.serve.partition.DeviceRouter` — pins device keys
  (cookies and addresses) to workers and routes each arriving micro-batch
  device-closed, reusing the union-find partition of the sharded batch
  classifier (:meth:`DeviceRouter.from_table`) or pinning keys on first
  sight for live traffic, with deterministic cross-worker merges reported
  as :class:`~repro.serve.partition.KeyMigration` records;
* :class:`~repro.serve.gateway.DetectionGateway` — one
  :class:`~repro.stream.ingest.StreamIngestor` feeding N
  :class:`~repro.stream.classifier.OnlineClassifier` workers on a thread
  pool, with :class:`~repro.stream.refresh.FilterListRefresher` re-mining
  moved off the scoring path onto a background worker and hot-swapped
  into every worker at a batch boundary;
* :class:`~repro.serve.replay.GatewayReplayDriver` /
  :class:`~repro.serve.replay.ServeResult` — corpus replay through the
  gateway, the serving twin of :class:`~repro.stream.replay.ReplayDriver`.

``repro serve`` on the command line and
``benchmarks/bench_serve_scaling.py`` drive this package; the
architecture is documented in ``docs/serving.md``.
"""

from repro.serve.gateway import (
    REFRESH_MODES,
    WORKER_ATTEMPTS,
    DetectionGateway,
    GatewayHealth,
)
from repro.serve.partition import KEY_KINDS, DeviceRouter, KeyMigration
from repro.serve.replay import GatewayReplayDriver, ServeResult

__all__ = [
    "DetectionGateway",
    "DeviceRouter",
    "GatewayHealth",
    "GatewayReplayDriver",
    "KEY_KINDS",
    "KeyMigration",
    "REFRESH_MODES",
    "ServeResult",
    "WORKER_ATTEMPTS",
]
