"""Device-closed routing of arriving rows onto gateway workers.

Temporal detection is the one stateful part of online scoring, and its
state is keyed on the first-party cookie and the source address.  For N
workers to score one arrival stream in parallel *and* reproduce the
single-worker verdicts exactly, every row of a given cookie and every row
of a given address must be scored by the worker holding that key's state.
The :class:`DeviceRouter` enforces exactly that invariant: it pins each
device key (cookie or address string) to one worker and routes every
arriving micro-batch so that no key's rows ever split across workers.

Two ways to build one:

* :meth:`DeviceRouter.from_table` — the replay/serving path: derive the
  pins from the device-closed union-find partition the sharded batch
  classifier already uses (:func:`repro.core.columnar.partition_rows_by_device`
  over the corpus table).  Every key is pre-pinned consistently, routing
  is a pure lookup, and no migrations ever occur.
* :class:`DeviceRouter` with no table — the live-traffic path: keys are
  pinned to the least-loaded worker when first seen.  When a later row
  proves two keys pinned to *different* workers belong to one device (a
  cookie reappearing from a new address, say), the router merges them
  deterministically and reports :class:`KeyMigration` records so the
  gateway can move the affected temporal state between workers before the
  batch is dispatched — preserving exactness even under online merges.

Rows with neither key carry no temporal state and are sprayed
round-robin.  Routing is per batch, before dispatch, so a batch's rows
that share a key (or are linked through one) always land on one worker
even when the link is first discovered inside that batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.columnar import ColumnarTable, partition_rows_by_device

#: Device-key kinds a router pins (also the temporal state's key kinds).
KEY_KINDS = ("cookie", "ip")


@dataclass(frozen=True)
class KeyMigration:
    """One device key whose pinned worker changed during routing.

    The gateway must move the key's temporal seen-state from ``source`` to
    ``target`` before dispatching the batch that triggered the merge;
    :meth:`repro.serve.DetectionGateway._migrate` does.
    """

    kind: str  # "cookie" | "ip"
    key: str
    source: int
    target: int


class DeviceRouter:
    """Pins device keys to workers; routes batches device-closed."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        #: (kind, key string) -> worker index
        self._pins: Dict[Tuple[str, str], int] = {}
        #: rows routed per worker — the balance target for new components
        self._loads: List[int] = [0] * self.workers
        self._keyless_cursor = 0

    @classmethod
    def from_table(cls, table: ColumnarTable, workers: int) -> "DeviceRouter":
        """A router whose pins reproduce the batch classifier's partition.

        Runs the device-closed union-find sharding over *table* (the same
        :func:`partition_rows_by_device` the sharded batch pipeline uses)
        and pins every cookie/address of partition *w* to worker *w*.  A
        replay of the same store through a gateway built on this router
        routes without ever migrating state, and its per-worker row groups
        are exactly the batch classifier's shards.
        """

        router = cls(workers)
        for worker, rows in enumerate(partition_rows_by_device(table, workers)):
            for kind, codes, values in (
                ("cookie", table.cookie_codes, table.cookie_values),
                ("ip", table.ip_codes, table.ip_values),
            ):
                present = codes[rows]
                for code in np.unique(present[present >= 0]).tolist():
                    key = values[code]
                    if key:
                        router._pins[(kind, key)] = worker
            router._loads[worker] += int(rows.size)
        return router

    # -- introspection ---------------------------------------------------------

    @property
    def pinned_keys(self) -> int:
        """How many device keys currently have a worker assignment."""

        return len(self._pins)

    def worker_of(self, kind: str, key: str) -> Optional[int]:
        """The worker *key* is pinned to, or ``None`` if unseen."""

        return self._pins.get((kind, key))

    # -- checkpointing ---------------------------------------------------------

    def export_state(self) -> Dict:
        """The router's pins, loads and cursor, as a picklable mapping."""

        return {
            "workers": self.workers,
            "pins": dict(self._pins),
            "loads": list(self._loads),
            "keyless_cursor": self._keyless_cursor,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt routing state exported by :meth:`export_state`."""

        if int(state["workers"]) != self.workers:
            raise ValueError(
                f"checkpointed router has {state['workers']} workers; "
                f"this router has {self.workers}"
            )
        self._pins = dict(state["pins"])
        self._loads = [int(load) for load in state["loads"]]
        self._keyless_cursor = int(state["keyless_cursor"])

    # -- routing ---------------------------------------------------------------

    def route(
        self, batch: ColumnarTable
    ) -> Tuple[List[np.ndarray], List[KeyMigration]]:
        """Assign every row of *batch* to a worker, device-closed.

        Returns ``(assignments, migrations)``: one sorted row-index array
        per worker (possibly empty; together they cover the batch exactly
        once), plus the state migrations the merges in this batch require.
        The batch's rows are grouped into connected components over their
        (cookie, address) keys first — a within-batch union-find, so links
        first revealed by this batch still route the whole component to
        one worker — and each component lands on:

        * the one worker its keys are pinned to, when they agree;
        * the pinned worker holding most of its keys (ties: lowest index)
          when a merge is discovered, repinning the rest and emitting a
          :class:`KeyMigration` per moved key;
        * the least-loaded worker (ties: lowest index) when no key has
          been seen before.
        """

        if batch.cookie_codes is None or batch.ip_codes is None:
            raise ValueError("routing requires batches with request metadata")
        n = batch.n_rows
        if self.workers == 1 or n == 0:
            self._loads[0] += n
            return (
                [np.arange(n, dtype=np.int64)]
                + [np.empty(0, dtype=np.int64) for _ in range(self.workers - 1)],
                [],
            )

        # Decode each row's usable keys once (falsy strings track nothing,
        # matching the temporal detector's guard).
        cookie_codes = batch.cookie_codes
        ip_codes = batch.ip_codes
        cookie_values = batch.cookie_values
        ip_values = batch.ip_values
        row_keys: List[Tuple[Tuple[str, str], ...]] = []
        for row in range(n):
            keys = []
            code = int(cookie_codes[row])
            if code >= 0:
                value = cookie_values[code]
                if value:
                    keys.append(("cookie", value))
            code = int(ip_codes[row])
            if code >= 0:
                value = ip_values[code]
                if value:
                    keys.append(("ip", value))
            row_keys.append(tuple(keys))

        # Within-batch union-find over the keys, in first-occurrence order.
        parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

        def find(node: Tuple[str, str]) -> Tuple[str, str]:
            root = node
            while parent[root] is not root:
                root = parent[root]
            while parent[node] is not root:  # path compression
                parent[node], node = root, parent[node]
            return root

        key_order: List[Tuple[str, str]] = []
        for keys in row_keys:
            for key in keys:
                if key not in parent:
                    parent[key] = key
                    key_order.append(key)
            if len(keys) == 2:
                root_a, root_b = find(keys[0]), find(keys[1])
                if root_a is not root_b:
                    parent[root_b] = root_a

        members: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        for key in key_order:
            members.setdefault(find(key), []).append(key)
        component_rows: Dict[Tuple[str, str], List[int]] = {}
        keyless_rows: List[int] = []
        for row, keys in enumerate(row_keys):
            if keys:
                component_rows.setdefault(find(keys[0]), []).append(row)
            else:
                keyless_rows.append(row)

        assignment = np.empty(n, dtype=np.int64)
        migrations: List[KeyMigration] = []
        # Components resolve in first-row order, so assignment, pinning and
        # load accounting are deterministic for a given arrival order.
        for root in sorted(component_rows, key=lambda root: component_rows[root][0]):
            keys = members[root]
            pinned: Dict[int, int] = {}
            for key in keys:
                worker = self._pins.get(key)
                if worker is not None:
                    pinned[worker] = pinned.get(worker, 0) + 1
            if not pinned:
                target = min(range(self.workers), key=lambda w: (self._loads[w], w))
            else:
                target = min(pinned, key=lambda w: (-pinned[w], w))
            for key in keys:
                worker = self._pins.get(key)
                if worker is not None and worker != target:
                    migrations.append(
                        KeyMigration(kind=key[0], key=key[1], source=worker, target=target)
                    )
                self._pins[key] = target
            rows = component_rows[root]
            assignment[rows] = target
            self._loads[target] += len(rows)
        for row in keyless_rows:
            assignment[row] = self._keyless_cursor % self.workers
            self._loads[assignment[row]] += 1
            self._keyless_cursor += 1

        return (
            [np.nonzero(assignment == worker)[0] for worker in range(self.workers)],
            migrations,
        )
