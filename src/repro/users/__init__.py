"""Real-user and privacy-technology traffic generators."""

from repro.users.privacy import (
    EXPERIMENT_DEVICE_NAMES,
    PrivacyTechnology,
    PrivacyTrafficGenerator,
    apply_brave,
    apply_fingerprint_spoofer,
    apply_tor,
)
from repro.users.realuser import REAL_USER_SOURCE, RealUserTrafficGenerator

__all__ = [
    "EXPERIMENT_DEVICE_NAMES",
    "PrivacyTechnology",
    "PrivacyTrafficGenerator",
    "REAL_USER_SOURCE",
    "RealUserTrafficGenerator",
    "apply_brave",
    "apply_fingerprint_spoofer",
    "apply_tor",
]
