"""Real-user traffic generator.

Section 7.4 evaluates FP-Inconsistent's false-positive behaviour on 2,206
requests from students who were given a dedicated honey-site URL.  This
module generates the equivalent traffic: each simulated user owns one real
device from the catalogue, keeps a stable, mutually consistent fingerprint,
connects from residential address space near the university, and retains
the first-party cookie across visits.

A small fraction of users run a User-Agent spoofer extension (the paper
attributes its handful of false positives to students experimenting with
exactly that), which rewrites the User-Agent while leaving every other
attribute untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.devices.catalog import DeviceCatalog
from repro.devices.profiles import DeviceProfile
from repro.fingerprint.fingerprint import Fingerprint
from repro.fingerprint.useragent import build_user_agent
from repro.honeysite.site import HoneySite, SessionRecorder
from repro.honeysite.storage import SECONDS_PER_DAY
from repro.network.cookies import ClientCookieStore
from repro.network.headers import build_headers
from repro.network.request import WebRequest
from repro.seeding import derive_rng

#: Default source label under which real-user traffic is recorded.
REAL_USER_SOURCE = "real_users"

#: User-Agents installed by the "User-Agent switcher" extensions some
#: students experimented with: desktop users masquerading as other devices.
_SPOOFER_TARGETS: Tuple[Tuple[str, str, str], ...] = (
    ("iPhone", "iOS", "Mobile Safari"),
    ("iPad", "iOS", "Mobile Safari"),
    ("Windows PC", "Windows", "Chrome"),
    ("Mac", "Mac OS X", "Safari"),
)


@dataclass
class _User:
    profile: DeviceProfile
    fingerprint: Fingerprint
    cookies: ClientCookieStore
    ip_address: str
    ua_spoofer: bool


class RealUserTrafficGenerator:
    """Generates consistent human traffic toward a dedicated URL."""

    def __init__(
        self,
        site: HoneySite,
        *,
        catalog: Optional[DeviceCatalog] = None,
        rng=None,
        home_country: str = "United States of America",
        home_region: str = "California",
        home_timezone: str = "America/Los_Angeles",
        ua_spoofer_rate: float = 0.03,
    ):
        if not 0.0 <= ua_spoofer_rate <= 1.0:
            raise ValueError("ua_spoofer_rate must be within [0, 1]")
        self._site = site
        self._catalog = catalog if catalog is not None else DeviceCatalog()
        self._rng = derive_rng(rng if rng is not None else 0)
        self._home_country = home_country
        self._home_region = home_region
        self._home_timezone = home_timezone
        self._ua_spoofer_rate = ua_spoofer_rate

    def _make_user(self, rng: np.random.Generator) -> _User:
        profile, fingerprint = self._catalog.sample_fingerprint(rng, timezone=self._home_timezone)
        ip_address = self._site.geo.allocate_address(
            rng,
            country=self._home_country,
            datacenter=False,
            region_name=self._home_region,
        )
        ua_spoofer = rng.random() < self._ua_spoofer_rate
        if ua_spoofer:
            target_device, target_os, target_browser = _SPOOFER_TARGETS[
                int(rng.integers(len(_SPOOFER_TARGETS)))
            ]
            fingerprint = fingerprint.replace(
                user_agent=build_user_agent(target_device, target_os, target_browser),
                ua_device=target_device,
                ua_os=target_os,
                ua_browser=target_browser,
            )
        return _User(
            profile=profile,
            fingerprint=fingerprint,
            cookies=ClientCookieStore(retention=1.0, rng=np.random.default_rng(rng.integers(0, 2 ** 32))),
            ip_address=ip_address,
            ua_spoofer=ua_spoofer,
        )

    def run(
        self,
        *,
        num_requests: int = 2206,
        num_users: int = 350,
        campaign_days: int = 30,
        source: str = REAL_USER_SOURCE,
    ) -> int:
        """Generate *num_requests* real-user requests.

        Returns the number of requests recorded by the honey site.
        """

        if num_requests < 1 or num_users < 1:
            raise ValueError("num_requests and num_users must be positive")
        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(source)
        users = [self._make_user(rng) for _ in range(num_users)]

        recorded = 0
        timestamps = np.sort(rng.random(num_requests)) * campaign_days * SECONDS_PER_DAY
        for timestamp in timestamps:
            user = users[int(rng.integers(len(users)))]
            request = WebRequest(
                url_path=url_path,
                timestamp=float(timestamp),
                ip_address=user.ip_address,
                fingerprint=user.fingerprint,
                cookie=user.cookies.outgoing(),
                headers=build_headers(user.fingerprint),
            )
            record = self._site.handle(request)
            if record is not None:
                user.cookies.receive(record.cookie)
                recorded += 1
        return recorded

    def run_vectorized(
        self,
        *,
        num_requests: int = 2206,
        num_users: int = 350,
        campaign_days: int = 30,
        source: str = REAL_USER_SOURCE,
        recorder: Optional[SessionRecorder] = None,
        emitter=None,
    ) -> int:
        """Vectorized, byte-identical counterpart of :meth:`run`.

        Users keep one configuration for the whole campaign, so every
        per-request quantity is materialised once per user; the user picks
        — the only per-request draws on the generator stream — are taken as
        one batched ``integers`` call, which consumes the bit stream
        exactly like the legacy loop's scalar draws.  The per-user private
        cookie streams (retention 1.0) never influence any output and are
        skipped: a user presents no cookie on the first visit and the
        retained server cookie afterwards.
        """

        if num_requests < 1 or num_users < 1:
            raise ValueError("num_requests and num_users must be positive")
        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(source)
        users = [self._make_user(rng) for _ in range(num_users)]
        if recorder is None:
            recorder = SessionRecorder(self._site)

        timestamps = np.sort(rng.random(num_requests)) * campaign_days * SECONDS_PER_DAY
        picks = rng.integers(0, len(users), size=num_requests)
        materials: list = [None] * len(users)
        cookies: list = [None] * len(users)
        emit = recorder.emit

        recorded = 0
        for timestamp, pick in zip(timestamps, picks):
            index = int(pick)
            material = materials[index]
            if material is None:
                user = users[index]
                material = recorder.materialize(user.fingerprint, user.ip_address)
                materials[index] = material
            cookies[index] = emit(
                material,
                url_path=url_path,
                source=source,
                timestamp=float(timestamp),
                presented_cookie=cookies[index],
            )
            if emitter is not None:
                if material.codes is None:
                    material.codes = emitter.codes_for(material.values)
                emitter.append(material.codes)
            recorded += 1
        return recorded
