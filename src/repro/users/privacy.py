"""Privacy-enhancing technology models.

Section 7.5 evaluates FP-Inconsistent on traffic generated with five
privacy technologies (Safari, Brave, Tor Browser, uBlock Origin and
AdBlock Plus on Chrome) from four real devices.  Each technology model
takes the consistent fingerprint of a real device and applies the
alterations the technology actually performs:

* **Brave** randomises ``deviceMemory``, ``hardwareConcurrency``, canvas,
  audio, plugins and adds small screen-resolution noise — but keeps the
  values *plausible*, and keeps cookies, so repeated visits from the same
  device produce temporal (not spatial) inconsistencies.
* **Tor Browser** standardises the fingerprint (fixed letterboxed window,
  UTC timezone, 2 cores) and routes traffic through exit relays, so the
  browser timezone no longer matches the IP location.
* **Safari, uBlock Origin and AdBlock Plus** block trackers but do not
  alter fingerprint attributes.
* **Fingerprint Spoofer** (a Chrome extension mentioned in the paper)
  rewrites the User-Agent without touching correlated attributes.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.catalog import DeviceCatalog
from repro.devices.profiles import DeviceProfile
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.fingerprint.useragent import build_user_agent
from repro.geo.asn import TOR_EXIT_ASNS
from repro.geo.ipaddr import regions_of_country
from repro.honeysite.site import HoneySite, SessionRecorder
from repro.honeysite.storage import SECONDS_PER_DAY
from repro.network.cookies import ClientCookieStore
from repro.network.headers import build_headers
from repro.network.request import WebRequest
from repro.seeding import derive_rng


class PrivacyTechnology(str, enum.Enum):
    """The privacy technologies evaluated in Section 7.5."""

    SAFARI = "Safari"
    BRAVE = "Brave"
    TOR = "Tor"
    UBLOCK_ORIGIN = "uBlock Origin"
    ADBLOCK_PLUS = "AdBlock Plus"
    FINGERPRINT_SPOOFER = "Fingerprint Spoofer"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Plausible deviceMemory values Brave farbles desktop reports into.
_BRAVE_MEMORY_VALUES: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0)


def apply_brave(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Apply Brave's per-session fingerprint farbling.

    Per the paper's observation, Brave "alters deviceMemory on desktops to
    plausible values"; on phones and tablets the reported memory is left
    alone.  Plugin *entries* are farbled rather than hidden, so the plugin
    surface (present on desktop, absent on mobile) stays intact.
    """

    base_cores = int(fingerprint.get(Attribute.HARDWARE_CONCURRENCY) or 4)
    farbled_cores = max(2, base_cores - int(rng.integers(0, 3)) * 2)
    resolution = fingerprint.get(Attribute.SCREEN_RESOLUTION) or (1920, 1080)
    farbled_resolution = (
        int(resolution[0]) - int(rng.integers(0, 9)),
        int(resolution[1]) - int(rng.integers(0, 9)),
    )
    changes = dict(
        hardware_concurrency=farbled_cores,
        screen_resolution=farbled_resolution,
        canvas=f"farbled-{int(rng.integers(1 << 30))}",
        audio=float(rng.random()),
    )
    is_mobile = int(fingerprint.get(Attribute.MAX_TOUCH_POINTS) or 0) > 0
    if not is_mobile:
        changes["device_memory"] = float(
            _BRAVE_MEMORY_VALUES[int(rng.integers(len(_BRAVE_MEMORY_VALUES)))]
        )
    return fingerprint.replace(**changes)


def apply_tor(fingerprint: Fingerprint) -> Fingerprint:
    """Apply Tor Browser's fingerprint standardisation.

    Tor Browser is Firefox ESR: like every modern Firefox it exposes the
    standard PDF-viewer plugin entries (which is also why BotD does not
    flag it — Appendix G).
    """

    return fingerprint.replace(
        user_agent=build_user_agent("Windows PC", "Windows", "Firefox"),
        ua_device="Windows PC",
        ua_os="Windows",
        ua_browser="Firefox",
        platform="Win32",
        vendor="",
        vendor_flavors=(),
        plugins=(
            "PDF Viewer",
            "Chrome PDF Viewer",
            "Chromium PDF Viewer",
            "Microsoft Edge PDF Viewer",
            "WebKit built-in PDF",
        ),
        hardware_concurrency=2,
        device_memory=8.0,
        screen_resolution=(1000, 1000),
        color_depth=24,
        max_touch_points=0,
        touch_support="None",
        timezone="UTC",
        languages=("en-US", "en"),
    )


def apply_fingerprint_spoofer(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Rewrite the User-Agent only, as the Chrome extension does."""

    targets = (("iPhone", "iOS", "Mobile Safari"), ("Mac", "Mac OS X", "Safari"))
    device, os_family, browser = targets[int(rng.integers(len(targets)))]
    return fingerprint.replace(
        user_agent=build_user_agent(device, os_family, browser),
        ua_device=device,
        ua_os=os_family,
        ua_browser=browser,
    )


#: The four physical devices used for the Section 7.5 experiment.
EXPERIMENT_DEVICE_NAMES: Tuple[str, ...] = (
    "macbook-pro-chrome",   # M1 MacBook Pro
    "linux-desktop-chrome",  # Intel Coffee Lake desktop
    "ipad-pro-12",           # iPad Pro
    "pixel-7",               # Google Pixel 7
)


class PrivacyTrafficGenerator:
    """Generates traffic through each privacy technology (Section 7.5)."""

    def __init__(
        self,
        site: HoneySite,
        *,
        catalog: Optional[DeviceCatalog] = None,
        rng=None,
        home_country: str = "United States of America",
        home_timezone: str = "America/Los_Angeles",
    ):
        self._site = site
        self._catalog = catalog if catalog is not None else DeviceCatalog()
        self._rng = derive_rng(rng if rng is not None else 0)
        self._home_country = home_country
        self._home_timezone = home_timezone

    def source_label(self, technology: PrivacyTechnology) -> str:
        """Source label under which the technology's traffic is recorded."""

        return f"privacy:{technology.value}"

    def _device_profiles(self) -> List[DeviceProfile]:
        profiles = []
        for name in EXPERIMENT_DEVICE_NAMES:
            try:
                profiles.append(self._catalog.get(name))
            except KeyError:
                continue
        if not profiles:
            profiles = list(self._catalog.desktop_profiles()[:2] + self._catalog.mobile_profiles()[:2])
        return profiles

    def _tor_exit_address(self, rng: np.random.Generator) -> str:
        asn = sorted(TOR_EXIT_ASNS)[int(rng.integers(len(TOR_EXIT_ASNS)))]
        from repro.geo.asn import ASN_REGISTRY

        country = ASN_REGISTRY[asn].country
        regions = regions_of_country(country) or regions_of_country("United States of America")
        region = regions[int(rng.integers(len(regions)))]
        return self._site.geo.space.allocate(asn, region, rng)

    def run_technology(
        self,
        technology: PrivacyTechnology,
        *,
        num_requests: int = 60,
        campaign_days: int = 5,
    ) -> int:
        """Send *num_requests* requests using *technology*.

        Requests rotate over the four experiment devices; each device keeps
        its cookies (as the paper notes, Brave retains cookies, which is
        what surfaces its temporal inconsistencies).
        """

        if num_requests < 1:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(self.source_label(technology))
        profiles = self._device_profiles()
        cookie_stores = {
            profile.name: ClientCookieStore(
                retention=1.0, rng=np.random.default_rng(rng.integers(0, 2 ** 32))
            )
            for profile in profiles
        }
        home_ips = {
            profile.name: self._site.geo.allocate_address(
                rng, country=self._home_country, datacenter=False
            )
            for profile in profiles
        }

        recorded = 0
        timestamps = np.sort(rng.random(num_requests)) * campaign_days * SECONDS_PER_DAY
        for index, timestamp in enumerate(timestamps):
            profile = profiles[index % len(profiles)]
            fingerprint = profile.fingerprint(timezone=self._home_timezone)
            ip_address = home_ips[profile.name]

            if technology is PrivacyTechnology.BRAVE:
                fingerprint = apply_brave(fingerprint, rng)
            elif technology is PrivacyTechnology.TOR:
                fingerprint = apply_tor(fingerprint)
                ip_address = self._tor_exit_address(rng)
            elif technology is PrivacyTechnology.FINGERPRINT_SPOOFER:
                fingerprint = apply_fingerprint_spoofer(fingerprint, rng)
            # Safari / uBlock Origin / AdBlock Plus: no fingerprint changes.

            cookies = cookie_stores[profile.name]
            request = WebRequest(
                url_path=url_path,
                timestamp=float(timestamp),
                ip_address=ip_address,
                fingerprint=fingerprint,
                cookie=cookies.outgoing(),
                headers=build_headers(fingerprint),
            )
            record = self._site.handle(request)
            if record is not None:
                cookies.receive(record.cookie)
                recorded += 1
        return recorded

    def run_technology_vectorized(
        self,
        technology: PrivacyTechnology,
        *,
        num_requests: int = 60,
        campaign_days: int = 5,
        recorder: Optional[SessionRecorder] = None,
        emitter=None,
    ) -> int:
        """Vectorized, byte-identical counterpart of :meth:`run_technology`.

        The four experiment devices keep stable fingerprints and addresses,
        so for the non-farbling technologies (Safari, uBlock Origin,
        AdBlock Plus — and Tor's standardised fingerprint) the session
        material is built once per device; Brave and the spoofer extension
        re-roll attributes per request and run the full per-request path.
        Per-device private cookie streams (retention 1.0) never influence
        output and are skipped, but their seeding draws are preserved.

        *emitter* optionally receives the per-request columnar code rows
        (a :class:`~repro.core.columnar.TableEmitter`), so the privacy
        evaluation can consume pre-extracted tables instead of re-reading
        fingerprint objects.
        """

        if num_requests < 1:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(self.source_label(technology))
        profiles = self._device_profiles()
        for _profile in profiles:
            # The legacy path seeds one private cookie-store generator per
            # device from the main stream; consume the identical draw.
            rng.integers(0, 2 ** 32)
        home_ips = {
            profile.name: self._site.geo.allocate_address(
                rng, country=self._home_country, datacenter=False
            )
            for profile in profiles
        }
        if recorder is None:
            recorder = SessionRecorder(self._site)
        source = self.source_label(technology)

        base_fingerprints = {
            profile.name: profile.fingerprint(timezone=self._home_timezone)
            for profile in profiles
        }
        static_materials: Dict[str, object] = {}
        if technology is PrivacyTechnology.TOR:
            tor_fingerprints = {
                name: apply_tor(fingerprint)
                for name, fingerprint in base_fingerprints.items()
            }
        elif technology not in (
            PrivacyTechnology.BRAVE,
            PrivacyTechnology.FINGERPRINT_SPOOFER,
        ):
            static_materials = {
                profile.name: recorder.materialize(
                    base_fingerprints[profile.name], home_ips[profile.name]
                )
                for profile in profiles
            }

        held_cookies: Dict[str, Optional[str]] = {profile.name: None for profile in profiles}
        recorded = 0
        timestamps = np.sort(rng.random(num_requests)) * campaign_days * SECONDS_PER_DAY
        for index, timestamp in enumerate(timestamps):
            profile = profiles[index % len(profiles)]
            name = profile.name
            if technology is PrivacyTechnology.BRAVE:
                fingerprint = apply_brave(base_fingerprints[name], rng)
                material = recorder.materialize(fingerprint, home_ips[name])
            elif technology is PrivacyTechnology.TOR:
                ip_address = self._tor_exit_address(rng)
                material = recorder.materialize(tor_fingerprints[name], ip_address)
            elif technology is PrivacyTechnology.FINGERPRINT_SPOOFER:
                fingerprint = apply_fingerprint_spoofer(base_fingerprints[name], rng)
                material = recorder.materialize(fingerprint, home_ips[name])
            else:
                material = static_materials[name]
            held_cookies[name] = recorder.emit(
                material,
                url_path=url_path,
                source=source,
                timestamp=float(timestamp),
                presented_cookie=held_cookies[name],
            )
            if emitter is not None:
                if material.codes is None:
                    material.codes = emitter.codes_for(material.values)
                emitter.append(material.codes)
            recorded += 1
        return recorded

    def run_all(
        self,
        *,
        technologies: Sequence[PrivacyTechnology] = (
            PrivacyTechnology.SAFARI,
            PrivacyTechnology.BRAVE,
            PrivacyTechnology.TOR,
            PrivacyTechnology.UBLOCK_ORIGIN,
            PrivacyTechnology.ADBLOCK_PLUS,
        ),
        num_requests_each: int = 60,
    ) -> Dict[PrivacyTechnology, int]:
        """Run every technology; returns recorded request counts."""

        return {
            technology: self.run_technology(technology, num_requests=num_requests_each)
            for technology in technologies
        }
