"""FP-Inconsistent reproduction library.

This package reproduces the systems and experiments of *FP-Inconsistent:
Measurement and Analysis of Fingerprint Inconsistencies in Evasive Bot
Traffic* (IMC 2025).  The public API is organised as:

``repro.fingerprint``
    Browser-fingerprint attribute model, categories and User-Agent parsing.
``repro.devices``
    Catalogue of real hardware/software configurations.
``repro.geo``
    Synthetic IP/ASN/geolocation/timezone substrate.
``repro.network``
    Web-request, header and cookie model.
``repro.honeysite``
    Versioned-URL honey-site architecture and request store.
``repro.antibot``
    DataDome-like and BotD-like anti-bot detector models.
``repro.bots``
    Evasion strategies and the 20 calibrated bot-service profiles.
``repro.users``
    Real-user and privacy-technology traffic generators.
``repro.ml``
    From-scratch decision tree / forest / boosting and explainability.
``repro.core``
    FP-Inconsistent itself: spatial and temporal inconsistency mining,
    rule generation, combined detection and evaluation.
``repro.analysis``
    Per-table / per-figure measurement analysis.
``repro.reporting``
    Table and figure-series rendering.
"""

from repro.fingerprint import Fingerprint, AttributeCategory
from repro.core import (
    FPInconsistent,
    InconsistencyRule,
    FilterList,
    SpatialInconsistencyMiner,
    TemporalInconsistencyDetector,
)

__version__ = "1.0.0"

__all__ = [
    "Fingerprint",
    "AttributeCategory",
    "FPInconsistent",
    "InconsistencyRule",
    "FilterList",
    "SpatialInconsistencyMiner",
    "TemporalInconsistencyDetector",
    "__version__",
]
