"""One-command paper report (``repro report``).

Regenerates every table and figure of the paper from a built (or cached)
corpus in a single pass, timing each section and rendering the results
through :mod:`repro.reporting.tables` / :mod:`repro.reporting.figures`.

Two engines produce value-identical output:

- ``"columnar"`` — every analysis answers the corpus's
  :class:`~repro.honeysite.storage.LazyRequestStore` straight from its
  :class:`~repro.honeysite.storage.RecordColumns` arrays.  No record
  object is materialised; the report asserts this via the global
  :func:`~repro.honeysite.storage.materialized_record_count` counter.
- ``"object"`` — the same analyses over a fully materialised
  :class:`~repro.honeysite.storage.RequestStore`, exercising the retained
  record-at-a-time reference paths.

Per-section SHA-256 digests over the canonical JSON of each section's
data make the equivalence checkable from the command line (and in CI):
``repro report --json`` emits them for both engines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.attributes import appendix_c_combination, table2
from repro.analysis.corpus import Corpus
from repro.analysis.evasion import (
    cohort_comparison,
    dual_evader_summary,
    overall_detection_rates,
    table1_rows,
    top_and_bottom_services,
)
from repro.analysis.figures import (
    figure4_plugin_evasion,
    figure5_core_cdfs,
    figure6_device_evasion,
    figure7_iphone_resolutions,
    figure8_location_histograms,
    figure9_daily_series,
    figure10_platform_spread,
    new_fingerprints_over_time,
    section62_geo_match,
)
from repro.analysis.ip_analysis import analyze_asn_blocklist, analyze_ip_blocklist
from repro.honeysite.storage import (
    LazyRequestStore,
    RequestStore,
    materialized_record_count,
)
from repro.reporting.figures import ascii_bar_chart, cdf_table
from repro.reporting.tables import format_percent, format_table

#: Report engine selectors, mirroring the detection pipeline's naming:
#: ``"columnar"`` answers from the array views, ``"object"`` from
#: materialised record objects (the reference oracle).
REPORT_ENGINES = ("columnar", "object")


@dataclass(frozen=True)
class ReportSection:
    """One rendered table or figure plus its machine-readable data."""

    key: str
    title: str
    paper_ref: str
    seconds: float
    body: str
    data: object

    @property
    def digest(self) -> str:
        """Engine-independent content address of the section data."""

        canonical = json.dumps(self.data, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Report:
    """Every paper table/figure regenerated from one corpus."""

    engine: str
    scale: float
    seed: int
    sections: Tuple[ReportSection, ...]
    total_seconds: float
    #: record objects materialised while generating (0 on the columnar path)
    materialized_records: int
    #: corpus cache content-address, when the corpus came through the cache
    cache_key: Optional[str] = None

    def digests(self) -> Dict[str, str]:
        return {section.key: section.digest for section in self.sections}

    def render(self) -> str:
        """The full plain-text report."""

        blocks = []
        for section in self.sections:
            header = f"{section.title} ({section.paper_ref})"
            blocks.append(f"{header}\n{'=' * len(header)}\n{section.body}")
        return "\n\n".join(blocks)

    def to_document(self) -> dict:
        """The ``--json`` document: timings, digests and section data."""

        return {
            "engine": self.engine,
            "scale": self.scale,
            "seed": self.seed,
            "cache_key": self.cache_key,
            "total_seconds": round(self.total_seconds, 3),
            "materialized_records": self.materialized_records,
            "sections": [
                {
                    "key": section.key,
                    "title": section.title,
                    "paper_ref": section.paper_ref,
                    "seconds": round(section.seconds, 4),
                    "digest": section.digest,
                    "data": section.data,
                }
                for section in self.sections
            ],
        }


def _asdict(value) -> dict:
    return dataclasses.asdict(value)


def _rate_bar(points, label_of, value_of) -> str:
    return ascii_bar_chart(
        {label_of(point): value_of(point) for point in points},
        value_format="{:.4f}",
    )


def _section_table1(corpus: Corpus, store: RequestStore):
    rows = table1_rows(store)
    overall = overall_detection_rates(store)
    data = {"rows": [_asdict(row) for row in rows], "overall_detection": overall}
    body = format_table(
        ["Service", "Requests", "DataDome evasion", "BotD evasion"],
        [
            (
                row.service,
                row.num_requests,
                format_percent(row.datadome_evasion_rate),
                format_percent(row.botd_evasion_rate),
            )
            for row in rows
        ],
    )
    body += "\n" + "\n".join(
        f"Overall {name} detection: {format_percent(rate)}"
        for name, rate in overall.items()
    )
    return data, body


def _section_cohorts(corpus: Corpus, store: RequestStore):
    comparisons = {
        detector: cohort_comparison(store, detector)
        for detector in ("DataDome", "BotD")
    }
    dual = dual_evader_summary(store)
    data = {
        "comparisons": {name: _asdict(c) for name, c in comparisons.items()},
        "dual_evaders": _asdict(dual),
    }
    rows = []
    for name, c in comparisons.items():
        rows.append(
            (
                name,
                ", ".join(c.top_services),
                format_percent(c.top_evasion_rate),
                format_percent(c.top_with_plugins),
                format_percent(c.top_with_touch),
                format_percent(c.top_low_cores),
            )
        )
        rows.append(
            (
                f"{name} (bottom)",
                ", ".join(c.bottom_services),
                format_percent(c.bottom_evasion_rate),
                format_percent(c.bottom_with_plugins),
                format_percent(c.bottom_with_touch),
                format_percent(c.bottom_low_cores),
            )
        )
    body = format_table(
        ["Cohort", "Services", "Evasion", "Plugins", "Touch", "<8 cores"], rows
    )
    body += (
        f"\nDual evaders (>80% on both): {', '.join(dual.services) or '(none)'} — "
        f"{dual.num_requests} requests, "
        f"DataDome {format_percent(dual.datadome_evasion_rate)}, "
        f"BotD {format_percent(dual.botd_evasion_rate)}"
    )
    return data, body


def _section_table2(ml_samples: int, ml_seed: int):
    def build(corpus: Corpus, store: RequestStore):
        columns = table2(store, max_samples=ml_samples, seed=ml_seed)
        depth = max((len(names) for names in columns.values()), default=0)
        rows = [
            [rank + 1] + [columns[d][rank] if rank < len(columns[d]) else "" for d in columns]
            for rank in range(depth)
        ]
        body = format_table(["Rank", *columns.keys()], rows)
        return columns, body

    return build


def _section_appendix_c(corpus: Corpus, store: RequestStore):
    result = appendix_c_combination(store)
    data = _asdict(result)
    body = (
        f"Matching requests: {result.matching_requests}\n"
        f"DataDome evasion among matches: {format_percent(result.matching_datadome_evasion)}\n"
        f"Overall DataDome evasion: {format_percent(result.overall_datadome_evasion)}"
    )
    return data, body


def _section_figure4(corpus: Corpus, store: RequestStore):
    points = figure4_plugin_evasion(store)
    data = [_asdict(point) for point in points]
    body = _rate_bar(points, lambda p: p.plugin, lambda p: p.evasion_probability)
    return data, body


def _section_figure5(corpus: Corpus, store: RequestStore):
    rows = table1_rows(store)
    top, bottom = top_and_bottom_services(rows, "DataDome")
    high, low = figure5_core_cdfs(store, top, bottom)
    data = {
        "high_services": list(top),
        "low_services": list(bottom),
        "curves": [_asdict(curve) for curve in (high, low)],
    }
    body = cdf_table(
        [
            (curve.label, curve.core_counts, curve.cumulative_probability)
            for curve in (high, low)
        ],
        value_name="cores",
    )
    return data, body


def _section_figure6(corpus: Corpus, store: RequestStore):
    points = figure6_device_evasion(store)
    data = [_asdict(point) for point in points]
    body = _rate_bar(points, lambda p: p.device, lambda p: p.evasion_probability)
    return data, body


def _section_figure7(corpus: Corpus, store: RequestStore):
    analysis = figure7_iphone_resolutions(store)
    data = _asdict(analysis)
    body = format_table(
        ["Resolution", "Requests", "Evasion", "Real iPhone?"],
        [
            (
                point.resolution,
                point.requests,
                format_percent(point.evasion_probability),
                "yes" if point.exists_on_real_iphone else "no",
            )
            for point in analysis.top_points
        ],
    )
    body += (
        f"\nUnique resolutions: {analysis.unique_resolutions} "
        f"({analysis.unique_resolutions_among_evading} among evading); "
        f"{analysis.nonexistent_in_top} of the top {len(analysis.top_points)} "
        "do not exist on real iPhones"
    )
    return data, body


def _section_figure8(corpus: Corpus, store: RequestStore):
    by_timezone, by_ip = figure8_location_histograms(store)
    data = {"by_timezone_country": by_timezone, "by_ip_country": by_ip}
    top_tz = dict(sorted(by_timezone.items(), key=lambda kv: kv[1], reverse=True)[:10])
    top_ip = dict(sorted(by_ip.items(), key=lambda kv: kv[1], reverse=True)[:10])
    body = ascii_bar_chart(top_tz, value_format="{:.0f}", title="By timezone country (top 10)")
    body += "\n" + ascii_bar_chart(top_ip, value_format="{:.0f}", title="By IP country (top 10)")
    return data, body


def _section_geo_match(corpus: Corpus, store: RequestStore):
    regions = {
        profile.name: profile.advertised_region
        for profile in corpus.bot_profiles
        if profile.advertised_region
    }
    summaries = section62_geo_match(store, regions)
    data = [_asdict(summary) for summary in summaries]
    body = format_table(
        ["Service", "Region", "Requests", "IP match", "Timezone match"],
        [
            (
                summary.service,
                summary.advertised_region,
                summary.requests,
                format_percent(summary.ip_match_rate),
                format_percent(summary.timezone_match_rate),
            )
            for summary in summaries
        ],
    )
    return data, body


def _section_figure9(corpus: Corpus, store: RequestStore):
    series = figure9_daily_series(store)
    new_fingerprints = new_fingerprints_over_time(store)
    data = {"series": _asdict(series), "new_fingerprints": list(new_fingerprints)}
    body = format_table(
        ["Day", "Requests", "Unique IPs", "Unique cookies", "Unique fingerprints"],
        list(
            zip(
                series.days,
                series.requests,
                series.unique_ips,
                series.unique_cookies,
                series.unique_fingerprints,
            )
        ),
    )
    body += f"\nNew fingerprints per day: {sum(new_fingerprints)} total over {len(new_fingerprints)} day(s)"
    return data, body


def _section_figure10(corpus: Corpus, store: RequestStore):
    spread = figure10_platform_spread(store)
    if spread is None:
        return None, "(no cookies recorded)"
    data = _asdict(spread)
    body = (
        f"Busiest cookie: {spread.cookie} ({spread.requests} requests, "
        f"{spread.distinct_platforms} platform(s))\n"
    )
    body += ascii_bar_chart(spread.platform_percentages, value_format="{:.2f}%")
    return data, body


def _section_blocklists(corpus: Corpus, store: RequestStore):
    asn = analyze_asn_blocklist(store, corpus.site.geo)
    ip = analyze_ip_blocklist(store)
    data = {"asn": _asdict(asn), "ip": _asdict(ip)}
    body = format_table(
        ["Blocklist", "Requests covered", "Coverage", "DataDome evasion", "BotD evasion"],
        [
            (
                "ASN",
                asn.flagged_requests,
                format_percent(asn.flagged_fraction),
                format_percent(asn.flagged_datadome_evasion),
                format_percent(asn.flagged_botd_evasion),
            ),
            (
                "IP (minFraud-like)",
                ip.covered_requests,
                format_percent(ip.coverage),
                format_percent(ip.covered_datadome_evasion),
                format_percent(ip.covered_botd_evasion),
            ),
        ],
    )
    return data, body


def _section_privacy(engine: str):
    def build(corpus: Corpus, store: RequestStore):
        from repro.analysis.privacy_eval import (
            corpus_privacy_tables,
            evaluate_privacy_technologies,
        )
        from repro.core.detector import FPInconsistent
        from repro.users.privacy import PrivacyTechnology

        stores = {}
        for technology in PrivacyTechnology:
            privacy_store = corpus.privacy_store(technology)
            if len(privacy_store) == 0:
                continue
            if engine == "object" and isinstance(privacy_store, LazyRequestStore):
                privacy_store = RequestStore(list(privacy_store))
            stores[technology] = privacy_store
        if not stores:
            return None, "(no privacy-technology traffic in this corpus)"

        # Fit identically under both engines (the mined rules are a pure
        # function of the bot table), then classify per engine.
        detector = FPInconsistent()
        table, _source = detector.resolve_table(
            corpus.bot_store, corpus.columnar_tables.get("bots")
        )
        detector.fit_table(table)
        results = evaluate_privacy_technologies(
            stores,
            detector,
            engine="columnar" if engine == "columnar" else "legacy",
            tables=corpus_privacy_tables(corpus) if engine == "columnar" else None,
        )
        data = [
            {**_asdict(result), "technology": result.technology.value}
            for result in results
        ]
        body = format_table(
            ["Technology", "Requests", "DataDome", "BotD", "FP-Inconsistent", "Spatial", "Temporal"],
            [
                (
                    result.technology.value,
                    result.requests,
                    format_percent(result.datadome_detection_rate),
                    format_percent(result.botd_detection_rate),
                    format_percent(result.fp_inconsistent_rate),
                    format_percent(result.fp_spatial_rate),
                    format_percent(result.fp_temporal_rate),
                )
                for result in results
            ],
        )
        return data, body

    return build


def _section_builders(
    engine: str, ml_samples: int, ml_seed: int
) -> List[Tuple[str, str, str, Callable]]:
    """(key, title, paper_ref, builder) for every report section, in
    paper order."""

    return [
        ("table1", "Table 1 · Per-service evasion", "§5.3", _section_table1),
        ("blocklists", "ASN / IP blocklist coverage", "§5.1", _section_blocklists),
        ("table2", "Table 2 · Attribute importance", "§5.2", _section_table2(ml_samples, ml_seed)),
        ("cohorts", "Evasion cohorts", "§5.3.1–5.3.3", _section_cohorts),
        ("figure4", "Figure 4 · PDF-plugin evasion", "§5.3", _section_figure4),
        ("figure5", "Figure 5 · Core-count CDFs", "§5.3.1", _section_figure5),
        ("figure6", "Figure 6 · Device-type evasion", "§6.1", _section_figure6),
        ("figure7", "Figure 7 · iPhone resolutions", "§6.1", _section_figure7),
        ("section62", "Advertised-region match rates", "§6.2", _section_geo_match),
        ("figure8", "Figure 8 · Location histograms", "§6.2", _section_figure8),
        ("figure9", "Figure 9 · Daily series", "§6.3", _section_figure9),
        ("figure10", "Figure 10 · Cookie platform spread", "§6.3", _section_figure10),
        ("appendix_c", "Appendix C · Combination rule", "App. C", _section_appendix_c),
        ("privacy", "Privacy technologies", "§7.5", _section_privacy(engine)),
    ]


def report_section_keys() -> Tuple[str, ...]:
    """Every section key ``generate_report`` knows, in report order."""

    return tuple(entry[0] for entry in _section_builders("columnar", 0, 0))


def generate_report(
    corpus: Corpus,
    *,
    engine: str = "columnar",
    ml_samples: int = 4000,
    ml_seed: int = 0,
    sections: Optional[Sequence[str]] = None,
    cache_key: Optional[str] = None,
) -> Report:
    """Regenerate every paper table/figure from *corpus* under *engine*.

    ``sections`` optionally restricts generation to a subset of
    :func:`report_section_keys`.  The returned report carries per-section
    wall-clock seconds, content digests, and the number of record objects
    materialised while generating (zero on the columnar engine when the
    corpus is columnar-backed).
    """

    if engine not in REPORT_ENGINES:
        raise ValueError(f"engine must be one of {REPORT_ENGINES}, got {engine!r}")
    builders = _section_builders(engine, ml_samples, ml_seed)
    known = {key for key, _, _, _ in builders}
    if sections is not None:
        unknown = sorted(set(sections) - known)
        if unknown:
            raise ValueError(
                f"unknown report section(s) {', '.join(unknown)}; "
                f"known: {', '.join(key for key, _, _, _ in builders)}"
            )
        builders = [entry for entry in builders if entry[0] in set(sections)]

    counter_before = materialized_record_count()
    tracer = obs.tracer()
    store = corpus.bot_store
    with tracer.span(
        "report.generate", engine=engine, sections=len(builders)
    ) as report_span:
        if engine == "object" and isinstance(store, LazyRequestStore):
            store = RequestStore(list(store))

        built: List[ReportSection] = []
        for key, title, paper_ref, builder in builders:
            # The span is the section timer: ``Span.duration`` is always
            # measured (recording into the tracer stays telemetry-gated).
            with tracer.span("report.section", key=key) as span:
                data, body = builder(corpus, store)
            built.append(
                ReportSection(
                    key=key,
                    title=title,
                    paper_ref=paper_ref,
                    seconds=span.duration,
                    body=body,
                    data=data,
                )
            )
    total_seconds = report_span.duration
    # Counter delta across the whole run, including the object engine's
    # up-front materialisation (a lazy store that was already forced
    # earlier in the process reports 0 — the records were billed to
    # whoever forced them first).
    materialized = materialized_record_count() - counter_before
    return Report(
        engine=engine,
        scale=corpus.scale,
        seed=corpus.seed,
        sections=tuple(built),
        total_seconds=total_seconds,
        materialized_records=materialized,
        cache_key=cache_key,
    )
