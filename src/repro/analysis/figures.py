"""Per-figure analyses (Figures 4–10).

Each function returns the data series behind one figure of the paper, in a
plain structure (labels + values) that the reporting module can render as a
text chart or CSV.

Every figure follows the same engine split: a columnar-backed store
(:class:`~repro.honeysite.storage.LazyRequestStore`) is answered straight
from its :class:`~repro.honeysite.storage.RecordColumns` arrays with zero
record objects materialised, while the object-at-a-time implementation is
retained as the reference oracle (``tests/test_report.py`` pins
value-identity between the two).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.profiles import CHROMIUM_PDF_PLUGINS
from repro.devices.screens import is_real_iphone_resolution
from repro.fingerprint.attributes import Attribute, parse_resolution
from repro.fingerprint.fingerprint import _json_default, grouping_value
from repro.honeysite.storage import (
    SECONDS_PER_DAY,
    LazyRequestStore,
    RecordColumns,
    RequestStore,
)


# ---------------------------------------------------------------------------
# Shared columnar helpers
# ---------------------------------------------------------------------------


def _first_occurrence_rows(
    row_codes: np.ndarray, keys: Sequence
) -> Tuple[np.ndarray, List]:
    """Re-code a row column by ``keys[code]`` in row first-occurrence order.

    ``row_codes`` may contain ``-1`` (attribute missing) and several input
    codes may share one key; both the missing rows and the rows whose key
    is ``None`` map to ``-1``.  Output codes count up in the order their
    key first appears in row order — exactly the insertion order of the
    dict the object path accumulates, which the figures' stable sorts
    tie-break on.
    """

    n_keys = len(keys)
    row_codes = np.asarray(row_codes, dtype=np.int64)
    canonical: Dict[object, int] = {}
    canon = np.empty(n_keys + 1, dtype=np.int64)
    for code, key in enumerate(keys):
        canon[code] = -1 if key is None else canonical.setdefault(key, code)
    canon[n_keys] = -1  # the "attribute missing" bucket
    canon_rows = canon[np.where(row_codes < 0, n_keys, row_codes)]
    valid = canon_rows >= 0
    out = np.full(row_codes.size, -1, dtype=np.int64)
    if not valid.any():
        return out, []
    positions = np.nonzero(valid)[0]
    first_row = np.full(n_keys, row_codes.size, dtype=np.int64)
    np.minimum.at(first_row, canon_rows[valid], positions)
    used = np.nonzero(first_row < row_codes.size)[0]
    used = used[np.argsort(first_row[used], kind="stable")]
    remap = np.full(n_keys, -1, dtype=np.int64)
    remap[used] = np.arange(used.size, dtype=np.int64)
    out[valid] = remap[canon_rows[valid]]
    return out, [keys[int(code)] for code in used]


def _grouping_rows(
    columns: RecordColumns, attribute: Attribute
) -> Tuple[np.ndarray, List]:
    """Per-row codes over *grouping* values, in row first-occurrence order.

    The decode list holds the distinct non-``None`` grouping values in the
    order they first appear in row order — the key order of the object
    path's ``unique_values`` histogram with its ``None`` bucket dropped.
    ``grouping_value`` runs once per distinct raw value, not once per row.
    """

    raw_rows, raw_values = columns.attribute_rows(attribute)
    keys = [grouping_value(attribute, value) for value in raw_values]
    return _first_occurrence_rows(raw_rows, keys)


def _value_flags(values: Sequence, predicate) -> np.ndarray:
    """``predicate`` evaluated once per distinct decoded value."""

    return np.fromiter(
        (bool(predicate(value)) for value in values), dtype=bool, count=len(values)
    )


# ---------------------------------------------------------------------------
# Figure 4 — probability of evading BotD per PDF plugin
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PluginEvasionPoint:
    """One bar of Figure 4."""

    plugin: str
    requests: int
    evasion_probability: float


def figure4_plugin_evasion(
    store: RequestStore, *, plugins: Sequence[str] = CHROMIUM_PDF_PLUGINS
) -> Tuple[PluginEvasionPoint, ...]:
    """P(evading BotD | plugin present) for each common PDF plugin."""

    if isinstance(store, LazyRequestStore):
        points = _figure4_from_columns(store.columns, plugins)
    else:
        points = _figure4_from_records(store, plugins)
    points.sort(key=lambda point: point.evasion_probability, reverse=True)
    return tuple(points)


def _figure4_points(plugins, requests, evaded) -> List[PluginEvasionPoint]:
    return [
        PluginEvasionPoint(
            plugin=plugin,
            requests=requests[plugin],
            evasion_probability=(
                evaded[plugin] / requests[plugin] if requests[plugin] else 0.0
            ),
        )
        for plugin in plugins
    ]


def _figure4_from_records(store: RequestStore, plugins: Sequence[str]) -> List[PluginEvasionPoint]:
    """Object-path reference: one counting pass instead of one filtered
    re-scan per plugin — identical integer counts, bit-identical rates."""

    requests = {plugin: 0 for plugin in plugins}
    evaded = {plugin: 0 for plugin in plugins}
    for record in store:
        present = record.attribute(Attribute.PLUGINS) or ()
        if not present:
            continue
        record_evaded = record.evaded("BotD")
        for plugin in plugins:
            if plugin in present:
                requests[plugin] += 1
                if record_evaded:
                    evaded[plugin] += 1
    return _figure4_points(plugins, requests, evaded)


def _figure4_from_columns(
    columns: RecordColumns, plugins: Sequence[str]
) -> List[PluginEvasionPoint]:
    """Columnar implementation: plugin membership is decided once per
    distinct plugin tuple, row totals come from two bincounts."""

    rows, values = columns.attribute_rows(Attribute.PLUGINS)
    valid = rows >= 0
    counts = np.bincount(rows[valid], minlength=len(values))
    evaded_counts = np.bincount(
        rows[valid & columns.evaded_rows("BotD")], minlength=len(values)
    )
    requests = {}
    evaded = {}
    for plugin in plugins:
        member = _value_flags(values, lambda value, p=plugin: p in (value or ()))
        requests[plugin] = int(counts[member].sum())
        evaded[plugin] = int(evaded_counts[member].sum())
    return _figure4_points(plugins, requests, evaded)


# ---------------------------------------------------------------------------
# Figure 5 — CDF of CPU core counts, high vs low DataDome evasion cohorts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoreCountCdf:
    """One CDF curve of Figure 5."""

    label: str
    core_counts: Tuple[int, ...]
    cumulative_probability: Tuple[float, ...]

    def fraction_below(self, threshold: int) -> float:
        """Fraction of requests reporting fewer than *threshold* cores."""

        fraction = 0.0
        for cores, cumulative in zip(self.core_counts, self.cumulative_probability):
            if cores < threshold:
                fraction = cumulative
        return fraction


def _core_cdf(store: RequestStore, label: str) -> CoreCountCdf:
    values = [
        int(record.attribute(Attribute.HARDWARE_CONCURRENCY))
        for record in store
        if record.attribute(Attribute.HARDWARE_CONCURRENCY) is not None
    ]
    if not values:
        return CoreCountCdf(label=label, core_counts=(), cumulative_probability=())
    array = np.sort(np.array(values))
    unique, counts = np.unique(array, return_counts=True)
    cumulative = np.cumsum(counts) / array.size
    return CoreCountCdf(
        label=label,
        core_counts=tuple(int(value) for value in unique),
        cumulative_probability=tuple(float(value) for value in cumulative),
    )


def _core_cdf_from_columns(columns: RecordColumns, label: str) -> CoreCountCdf:
    """Columnar counterpart of :func:`_core_cdf` (decode once per distinct
    core count, sort the gathered ``int64`` column)."""

    rows, values = columns.attribute_rows(Attribute.HARDWARE_CONCURRENCY)
    present = _value_flags(values, lambda value: value is not None)
    decoded = np.fromiter(
        (0 if value is None else int(value) for value in values),
        dtype=np.int64,
        count=len(values),
    )
    valid = rows >= 0
    valid[valid] = present[rows[valid]]
    if not valid.any():
        return CoreCountCdf(label=label, core_counts=(), cumulative_probability=())
    array = np.sort(decoded[rows[valid]])
    unique, counts = np.unique(array, return_counts=True)
    cumulative = np.cumsum(counts) / array.size
    return CoreCountCdf(
        label=label,
        core_counts=tuple(int(value) for value in unique),
        cumulative_probability=tuple(float(value) for value in cumulative),
    )


def figure5_core_cdfs(
    store: RequestStore,
    high_evasion_services: Sequence[str],
    low_evasion_services: Sequence[str],
) -> Tuple[CoreCountCdf, CoreCountCdf]:
    """The two CDF curves of Figure 5 (high- and low-evasion cohorts)."""

    if isinstance(store, LazyRequestStore):
        high = store.by_sources(tuple(high_evasion_services))
        low = store.by_sources(tuple(low_evasion_services))
        return (
            _core_cdf_from_columns(high.columns, "High evasion rate"),
            _core_cdf_from_columns(low.columns, "Low evasion rate"),
        )
    high = store.filter(lambda record: record.source in tuple(high_evasion_services))
    low = store.filter(lambda record: record.source in tuple(low_evasion_services))
    return (_core_cdf(high, "High evasion rate"), _core_cdf(low, "Low evasion rate"))


# ---------------------------------------------------------------------------
# Figure 6 — probability of evading DataDome per UA device type
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceEvasionPoint:
    """One bar of Figure 6."""

    device: str
    requests: int
    evasion_probability: float


def figure6_device_evasion(
    store: RequestStore, *, detector: str = "DataDome", top: int = 4, min_requests: int = 50
) -> Tuple[DeviceEvasionPoint, ...]:
    """The UA device families with the highest probability of evading
    *detector* (Figure 6 uses DataDome and the top 4)."""

    if isinstance(store, LazyRequestStore):
        points = _figure6_from_columns(
            store.columns, detector=detector, min_requests=min_requests
        )
    else:
        points = _figure6_from_records(
            store, detector=detector, min_requests=min_requests
        )
    points.sort(key=lambda point: point.evasion_probability, reverse=True)
    return tuple(points[:top])


def _figure6_from_records(
    store: RequestStore, *, detector: str, min_requests: int
) -> List[DeviceEvasionPoint]:
    """Object-path reference implementation of :func:`figure6_device_evasion`."""

    histogram = store.unique_values(Attribute.UA_DEVICE)
    points = []
    for device, count in histogram.items():
        if device is None or count < min_requests:
            continue
        subset = store.filter(
            lambda record, d=device: record.request.fingerprint.value_for_grouping(Attribute.UA_DEVICE) == d
        )
        points.append(
            DeviceEvasionPoint(
                device=str(device),
                requests=count,
                evasion_probability=subset.evasion_rate(detector),
            )
        )
    return points


def _figure6_from_columns(
    columns: RecordColumns, *, detector: str, min_requests: int
) -> List[DeviceEvasionPoint]:
    """Columnar implementation over the grouped UA-device code column."""

    rows, devices = _grouping_rows(columns, Attribute.UA_DEVICE)
    valid = rows >= 0
    counts = np.bincount(rows[valid], minlength=len(devices))
    evaded_counts = np.bincount(
        rows[valid & columns.evaded_rows(detector)], minlength=len(devices)
    )
    points = []
    for code, device in enumerate(devices):
        count = int(counts[code])
        if count < min_requests:
            continue
        points.append(
            DeviceEvasionPoint(
                device=str(device),
                requests=count,
                evasion_probability=int(evaded_counts[code]) / count,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Figure 7 — top iPhone screen resolutions by DataDome evasion probability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolutionEvasionPoint:
    """One bar of Figure 7."""

    resolution: str
    requests: int
    evasion_probability: float
    exists_on_real_iphone: bool


@dataclass(frozen=True)
class IphoneResolutionAnalysis:
    """Figure 7 plus the Section 6.1 unique-resolution counts."""

    unique_resolutions: int
    unique_resolutions_among_evading: int
    top_points: Tuple[ResolutionEvasionPoint, ...]

    @property
    def nonexistent_in_top(self) -> int:
        """How many of the top resolutions do not exist on real iPhones."""

        return sum(1 for point in self.top_points if not point.exists_on_real_iphone)


def figure7_iphone_resolutions(
    store: RequestStore, *, detector: str = "DataDome", top: int = 10, min_requests: int = 10
) -> IphoneResolutionAnalysis:
    """Resolution spread of requests claiming to be iPhones (Section 6.1)."""

    if isinstance(store, LazyRequestStore):
        return _figure7_from_columns(
            store.columns, detector=detector, top=top, min_requests=min_requests
        )
    return _figure7_from_records(
        store, detector=detector, top=top, min_requests=min_requests
    )


def _figure7_from_columns(
    columns: RecordColumns, *, detector: str, top: int, min_requests: int
) -> IphoneResolutionAnalysis:
    """Columnar implementation: the iPhone subset is a row slice, both
    resolution histograms are bincounts over the grouped code column."""

    device_rows, devices = _grouping_rows(columns, Attribute.UA_DEVICE)
    try:
        iphone_code = devices.index("iPhone")
    except ValueError:
        iphone_rows = np.empty(0, dtype=np.int64)
    else:
        iphone_rows = np.nonzero(device_rows == iphone_code)[0]
    iphone = columns.take(iphone_rows)
    rows, resolutions = _grouping_rows(iphone, Attribute.SCREEN_RESOLUTION)
    valid = rows >= 0
    counts = np.bincount(rows[valid], minlength=len(resolutions))
    evaded_valid = valid & iphone.evaded_rows(detector)
    evaded_counts = np.bincount(rows[evaded_valid], minlength=len(resolutions))
    points = []
    for code, resolution in enumerate(resolutions):
        count = int(counts[code])
        if count < min_requests:
            continue
        points.append(
            ResolutionEvasionPoint(
                resolution=str(resolution),
                requests=count,
                evasion_probability=int(evaded_counts[code]) / count,
                exists_on_real_iphone=is_real_iphone_resolution(parse_resolution(resolution)),
            )
        )
    points.sort(key=lambda point: (point.evasion_probability, point.requests), reverse=True)
    return IphoneResolutionAnalysis(
        unique_resolutions=len(resolutions),
        unique_resolutions_among_evading=int(np.unique(rows[evaded_valid]).size),
        top_points=tuple(points[:top]),
    )


def _figure7_from_records(
    store: RequestStore, *, detector: str, top: int, min_requests: int
) -> IphoneResolutionAnalysis:
    """Object-path reference implementation of :func:`figure7_iphone_resolutions`."""

    iphone_store = store.filter(
        lambda record: record.request.fingerprint.value_for_grouping(Attribute.UA_DEVICE) == "iPhone"
    )
    histogram = iphone_store.unique_values(Attribute.SCREEN_RESOLUTION)
    histogram.pop(None, None)
    evading_histogram = iphone_store.evading(detector).unique_values(Attribute.SCREEN_RESOLUTION)
    evading_histogram.pop(None, None)

    points = []
    for resolution, count in histogram.items():
        if count < min_requests:
            continue
        subset = iphone_store.filter(
            lambda record, r=resolution: record.request.fingerprint.value_for_grouping(
                Attribute.SCREEN_RESOLUTION
            )
            == r
        )
        points.append(
            ResolutionEvasionPoint(
                resolution=str(resolution),
                requests=count,
                evasion_probability=subset.evasion_rate(detector),
                exists_on_real_iphone=is_real_iphone_resolution(parse_resolution(resolution)),
            )
        )
    points.sort(key=lambda point: (point.evasion_probability, point.requests), reverse=True)
    return IphoneResolutionAnalysis(
        unique_resolutions=len(histogram),
        unique_resolutions_among_evading=len(evading_histogram),
        top_points=tuple(points[:top]),
    )


# ---------------------------------------------------------------------------
# Figure 8 / Section 6.2 — location inferred from timezone vs IP address
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeoMismatchSummary:
    """Per-service location match rates (Section 6.2) and the Figure 8 data."""

    service: str
    advertised_region: str
    requests: int
    ip_match_rate: float
    timezone_match_rate: float


def _timezone_matches_value(value, region, matcher) -> bool:
    """The object path's per-record timezone check, on one decoded value."""

    if not value:
        return False
    try:
        return bool(matcher(str(value), region))
    except KeyError:
        return False


def section62_geo_match(
    store: RequestStore,
    services_with_regions: Dict[str, str],
) -> Tuple[GeoMismatchSummary, ...]:
    """Match rates of the advertised region via IP vs via browser timezone."""

    from repro.geo.timezones import country_matches_region, timezone_matches_region

    if isinstance(store, LazyRequestStore):
        summaries = []
        for service, region in services_with_regions.items():
            service_store = store.by_source(service)
            requests = len(service_store)
            if requests == 0:
                continue
            columns = service_store.columns
            country_rows, countries = columns.attribute_rows(Attribute.IP_COUNTRY)
            country_ok = _value_flags(
                countries,
                lambda value: bool(value) and country_matches_region(str(value), region),
            )
            country_valid = country_rows >= 0
            ip_matches = int(np.count_nonzero(country_ok[country_rows[country_valid]]))
            tz_rows, timezones = columns.attribute_rows(Attribute.TIMEZONE)
            tz_ok = _value_flags(
                timezones,
                lambda value: _timezone_matches_value(value, region, timezone_matches_region),
            )
            tz_valid = tz_rows >= 0
            timezone_matches = int(np.count_nonzero(tz_ok[tz_rows[tz_valid]]))
            summaries.append(
                GeoMismatchSummary(
                    service=service,
                    advertised_region=region,
                    requests=requests,
                    ip_match_rate=ip_matches / requests,
                    timezone_match_rate=timezone_matches / requests,
                )
            )
        return tuple(summaries)

    summaries = []
    for service, region in services_with_regions.items():
        service_store = store.by_source(service)
        if len(service_store) == 0:
            continue
        ip_matches = 0
        timezone_matches = 0
        for record in service_store:
            country = record.attribute(Attribute.IP_COUNTRY)
            if country and country_matches_region(str(country), region):
                ip_matches += 1
            timezone = record.attribute(Attribute.TIMEZONE)
            if timezone:
                try:
                    if timezone_matches_region(str(timezone), region):
                        timezone_matches += 1
                except KeyError:
                    pass
        summaries.append(
            GeoMismatchSummary(
                service=service,
                advertised_region=region,
                requests=len(service_store),
                ip_match_rate=ip_matches / len(service_store),
                timezone_match_rate=timezone_matches / len(service_store),
            )
        )
    return tuple(summaries)


def figure8_location_histograms(store: RequestStore) -> Tuple[Dict[str, int], Dict[str, int]]:
    """The two Figure 8 heatmaps flattened to per-country request counts.

    Returns ``(by_timezone_country, by_ip_country)``.
    """

    from repro.geo.timezones import country_of_timezone

    if isinstance(store, LazyRequestStore):
        columns = store.columns

        def histogram(attribute: Attribute, key_of) -> Dict[str, int]:
            raw_rows, raw_values = columns.attribute_rows(attribute)
            codes, keys = _first_occurrence_rows(
                raw_rows, [key_of(value) for value in raw_values]
            )
            counts = np.bincount(codes[codes >= 0], minlength=len(keys))
            return {str(key): int(count) for key, count in zip(keys, counts)}

        by_timezone = histogram(
            Attribute.TIMEZONE,
            lambda value: (country_of_timezone(str(value)) or "Unknown") if value else None,
        )
        by_ip = histogram(
            Attribute.IP_COUNTRY, lambda value: str(value) if value else None
        )
        return by_timezone, by_ip

    by_timezone: Dict[str, int] = {}
    by_ip: Dict[str, int] = {}
    for record in store:
        timezone = record.attribute(Attribute.TIMEZONE)
        if timezone:
            country = country_of_timezone(str(timezone)) or "Unknown"
            by_timezone[country] = by_timezone.get(country, 0) + 1
        ip_country = record.attribute(Attribute.IP_COUNTRY)
        if ip_country:
            by_ip[str(ip_country)] = by_ip.get(str(ip_country), 0) + 1
    return by_timezone, by_ip


# ---------------------------------------------------------------------------
# Figure 9 — temporal distribution of traffic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DailySeries:
    """The four Figure 9 series."""

    days: Tuple[int, ...]
    requests: Tuple[int, ...]
    unique_ips: Tuple[int, ...]
    unique_cookies: Tuple[int, ...]
    unique_fingerprints: Tuple[int, ...]


def figure9_daily_series(store: RequestStore) -> DailySeries:
    """Per-day request / unique-IP / unique-cookie / unique-fingerprint counts.

    A columnar-backed store computes straight from its
    :class:`~repro.honeysite.storage.RecordColumns` arrays — no record
    object is materialised, and fingerprints hash once per *session*
    instead of once per request; the object path below is the reference
    oracle (``tests/test_analysis_integration.py`` pins equality).
    """

    if isinstance(store, LazyRequestStore):
        return _figure9_from_columns(store.columns)
    return _figure9_from_records(store)


def _figure9_from_records(store: RequestStore) -> DailySeries:
    """Object-path reference implementation of :func:`figure9_daily_series`."""

    series = store.daily_series()
    days = tuple(sorted(series))
    return DailySeries(
        days=days,
        requests=tuple(series[day]["requests"] for day in days),
        unique_ips=tuple(series[day]["unique_ips"] for day in days),
        unique_cookies=tuple(series[day]["unique_cookies"] for day in days),
        unique_fingerprints=tuple(series[day]["unique_fingerprints"] for day in days),
    )


#: Transport-level attributes :meth:`Fingerprint.stable_hash` excludes.
_TRANSPORT_ATTRIBUTES = (
    Attribute.IP_ADDRESS,
    Attribute.IP_COUNTRY,
    Attribute.IP_REGION,
    Attribute.ASN,
)


def _canonical_fingerprint_rows(columns: RecordColumns) -> np.ndarray:
    """Per-row fingerprint codes, canonicalised by stable hash.

    One hash per *session*; sessions whose browser-side attributes hash
    identically collapse onto one code, exactly like the object path's
    set-of-hashes semantics.  (Cookie and address columns go through
    :meth:`RecordColumns.cookie_columns` / :meth:`~RecordColumns.ip_columns`
    instead — only the hash case needs a bespoke canonicalisation.)

    :meth:`~repro.fingerprint.fingerprint.Fingerprint.stable_hash`
    serialises the browser-side attributes with ``sort_keys=True``, so its
    payload can be assembled from per-distinct-``(attribute, value)`` JSON
    fragments joined in attribute-name order — one serialisation per
    distinct pair and one SHA-256 per session, with no
    :class:`~repro.fingerprint.fingerprint.Fingerprint` decoded at all.
    """

    sessions = columns.sessions
    n_sessions = columns.n_sessions
    names = sessions.fp_attribute_names
    excluded = {attribute.value for attribute in _TRANSPORT_ATTRIBUTES}
    # One JSON fragment (the payload minus its braces) per distinct pair.
    fragments: List[List[str]] = []
    for code, name in enumerate(names):
        if name in excluded:
            fragments.append([])
            continue
        fragments.append(
            [
                json.dumps(
                    {name: value},
                    sort_keys=True,
                    default=_json_default,
                    separators=(",", ":"),
                )[1:-1]
                for value in sessions.fp_values[code]
            ]
        )

    attr_codes = np.asarray(sessions.fp_attr_codes, dtype=np.int64)
    value_codes = np.asarray(sessions.fp_value_codes, dtype=np.int64)
    offsets = np.asarray(sessions.fp_offsets, dtype=np.int64)
    owners = np.repeat(np.arange(n_sessions, dtype=np.int64), np.diff(offsets))
    keep = np.fromiter(
        (name not in excluded for name in names), dtype=bool, count=len(names)
    )[attr_codes] if len(names) else np.zeros(0, dtype=bool)
    # ``sort_keys`` orders by attribute name; rank codes the same way.
    name_rank = np.empty(len(names), dtype=np.int64)
    name_rank[sorted(range(len(names)), key=names.__getitem__)] = np.arange(len(names))
    order = np.lexsort((name_rank[attr_codes[keep]], owners[keep]))
    kept_attrs = attr_codes[keep][order]
    kept_values = value_codes[keep][order]
    bounds = np.searchsorted(owners[keep][order], np.arange(n_sessions + 1)).tolist()

    # One flat fragment pool, gathered per pair in a single fancy index.
    bases = np.zeros(len(names) + 1, dtype=np.int64)
    np.cumsum([len(table) for table in fragments], out=bases[1:])
    pool = np.array(
        [fragment for table in fragments for fragment in table] or [""], dtype=object
    )
    pair_fragments = pool[bases[kept_attrs] + kept_values].tolist()

    canonical: Dict[str, int] = {}
    session_canon = np.empty(n_sessions, dtype=np.int64)
    for session in range(n_sessions):
        payload = (
            "{" + ",".join(pair_fragments[bounds[session] : bounds[session + 1]]) + "}"
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        session_canon[session] = canonical.setdefault(digest, session)
    return session_canon[columns.session_codes]


def _row_days(columns: RecordColumns) -> np.ndarray:
    return (columns.timestamps // SECONDS_PER_DAY).astype(np.int64)


def _figure9_from_columns(columns: RecordColumns) -> DailySeries:
    """Columnar implementation over per-row code arrays (object-free)."""

    if columns.n_rows == 0:
        return DailySeries(days=(), requests=(), unique_ips=(), unique_cookies=(),
                           unique_fingerprints=())
    unique_days, day_rank = np.unique(_row_days(columns), return_inverse=True)
    requests = np.bincount(day_rank, minlength=unique_days.size)

    def distinct_per_day(row_codes: np.ndarray, n_codes: int) -> np.ndarray:
        keys = np.unique(day_rank.astype(np.int64) * n_codes + row_codes)
        return np.bincount(keys // n_codes, minlength=unique_days.size)

    ip_rows, ip_values = columns.ip_columns()
    cookie_rows, cookie_values = columns.cookie_columns()
    fingerprint_rows = _canonical_fingerprint_rows(columns)
    return DailySeries(
        days=tuple(int(day) for day in unique_days),
        requests=tuple(int(count) for count in requests),
        unique_ips=tuple(
            int(count) for count in distinct_per_day(ip_rows, len(ip_values))
        ),
        unique_cookies=tuple(
            int(count) for count in distinct_per_day(cookie_rows, len(cookie_values))
        ),
        unique_fingerprints=tuple(
            int(count)
            for count in distinct_per_day(fingerprint_rows, columns.n_sessions)
        ),
    )


def new_fingerprints_over_time(store: RequestStore) -> Tuple[int, ...]:
    """Per-day count of never-before-seen fingerprints (Section 6.3).

    Like :func:`figure9_daily_series`, a columnar-backed store answers
    from its arrays (one hash per session, vectorized first-occurrence
    scan); the object path is the reference oracle.
    """

    if isinstance(store, LazyRequestStore):
        return _new_fingerprints_from_columns(store.columns)
    return _new_fingerprints_from_records(store)


def _new_fingerprints_from_records(store: RequestStore) -> Tuple[int, ...]:
    """Object-path reference implementation of :func:`new_fingerprints_over_time`."""

    seen = set()
    per_day: Dict[int, int] = {}
    for record in store.sorted_by_time():
        digest = record.request.fingerprint.stable_hash()
        if digest not in seen:
            seen.add(digest)
            per_day[record.day] = per_day.get(record.day, 0) + 1
    return tuple(per_day.get(day, 0) for day in sorted(set(record.day for record in store)))


def _new_fingerprints_from_columns(columns: RecordColumns) -> Tuple[int, ...]:
    """Columnar implementation over per-row code arrays (object-free)."""

    if columns.n_rows == 0:
        return ()
    days = _row_days(columns)
    order = np.argsort(columns.timestamps, kind="stable")
    fingerprint_rows = _canonical_fingerprint_rows(columns)[order]
    # First time-ordered occurrence of each distinct fingerprint, and the
    # day it landed on.
    _unique, first_positions = np.unique(fingerprint_rows, return_index=True)
    first_days = days[order][first_positions]
    unique_days = np.unique(days)
    per_day = np.bincount(
        np.searchsorted(unique_days, first_days), minlength=unique_days.size
    )
    return tuple(int(count) for count in per_day)


# ---------------------------------------------------------------------------
# Figure 10 — platform values reported under one cookie
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CookiePlatformSpread:
    """Figure 10: platform distribution of the busiest cookie."""

    cookie: str
    requests: int
    platform_percentages: Dict[str, float]

    @property
    def distinct_platforms(self) -> int:
        return len(self.platform_percentages)


def figure10_platform_spread(store: RequestStore) -> Optional[CookiePlatformSpread]:
    """Platform values reported by the device with the busiest cookie."""

    if isinstance(store, LazyRequestStore):
        return _figure10_from_columns(store.columns)
    return _figure10_from_records(store)


def _figure10_from_columns(columns: RecordColumns) -> Optional[CookiePlatformSpread]:
    """Columnar implementation: busiest cookie via bincount + first-max
    argmax (the ``max()``-over-insertion-order semantics of the object
    path), platform spread via one more bincount over its row slice."""

    if not columns.n_rows:
        return None
    cookie_rows, cookies = columns.cookie_columns()
    cookie_counts = np.bincount(cookie_rows, minlength=len(cookies))
    busiest = int(np.argmax(cookie_counts))
    subset = np.nonzero(cookie_rows == busiest)[0]
    platform_raw, platform_values = columns.attribute_rows(Attribute.PLATFORM)
    codes, platforms = _first_occurrence_rows(
        platform_raw[subset],
        [None if value is None else str(value) for value in platform_values],
    )
    counts = np.bincount(codes[codes >= 0], minlength=len(platforms))
    total = int(counts.sum())
    if total == 0:
        return None
    order = sorted(
        range(len(platforms)), key=lambda code: int(counts[code]), reverse=True
    )
    return CookiePlatformSpread(
        cookie=cookies[busiest],
        requests=int(cookie_counts[busiest]),
        platform_percentages={
            platforms[code]: 100.0 * int(counts[code]) / total for code in order
        },
    )


def _figure10_from_records(store: RequestStore) -> Optional[CookiePlatformSpread]:
    """Object-path reference implementation of :func:`figure10_platform_spread`."""

    groups = store.group_by_cookie()
    if not groups:
        return None
    cookie, records = max(groups.items(), key=lambda item: len(item[1]))
    histogram: Dict[str, int] = {}
    for record in records:
        platform = record.attribute(Attribute.PLATFORM)
        if platform is None:
            continue
        histogram[str(platform)] = histogram.get(str(platform), 0) + 1
    total = sum(histogram.values())
    if total == 0:
        return None
    return CookiePlatformSpread(
        cookie=cookie,
        requests=len(records),
        platform_percentages={
            platform: 100.0 * count / total for platform, count in sorted(
                histogram.items(), key=lambda item: item[1], reverse=True
            )
        },
    )
