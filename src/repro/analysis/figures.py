"""Per-figure analyses (Figures 4–10).

Each function returns the data series behind one figure of the paper, in a
plain structure (labels + values) that the reporting module can render as a
text chart or CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.devices.profiles import CHROMIUM_PDF_PLUGINS
from repro.devices.screens import is_real_iphone_resolution
from repro.fingerprint.attributes import Attribute, parse_resolution
from repro.honeysite.storage import (
    SECONDS_PER_DAY,
    LazyRequestStore,
    RecordColumns,
    RequestStore,
)


# ---------------------------------------------------------------------------
# Figure 4 — probability of evading BotD per PDF plugin
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PluginEvasionPoint:
    """One bar of Figure 4."""

    plugin: str
    requests: int
    evasion_probability: float


def figure4_plugin_evasion(
    store: RequestStore, *, plugins: Sequence[str] = CHROMIUM_PDF_PLUGINS
) -> Tuple[PluginEvasionPoint, ...]:
    """P(evading BotD | plugin present) for each common PDF plugin."""

    points = []
    for plugin in plugins:
        subset = store.filter(lambda record, p=plugin: p in (record.attribute(Attribute.PLUGINS) or ()))
        points.append(
            PluginEvasionPoint(
                plugin=plugin,
                requests=len(subset),
                evasion_probability=subset.evasion_rate("BotD"),
            )
        )
    points.sort(key=lambda point: point.evasion_probability, reverse=True)
    return tuple(points)


# ---------------------------------------------------------------------------
# Figure 5 — CDF of CPU core counts, high vs low DataDome evasion cohorts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoreCountCdf:
    """One CDF curve of Figure 5."""

    label: str
    core_counts: Tuple[int, ...]
    cumulative_probability: Tuple[float, ...]

    def fraction_below(self, threshold: int) -> float:
        """Fraction of requests reporting fewer than *threshold* cores."""

        fraction = 0.0
        for cores, cumulative in zip(self.core_counts, self.cumulative_probability):
            if cores < threshold:
                fraction = cumulative
        return fraction


def _core_cdf(store: RequestStore, label: str) -> CoreCountCdf:
    values = [
        int(record.attribute(Attribute.HARDWARE_CONCURRENCY))
        for record in store
        if record.attribute(Attribute.HARDWARE_CONCURRENCY) is not None
    ]
    if not values:
        return CoreCountCdf(label=label, core_counts=(), cumulative_probability=())
    array = np.sort(np.array(values))
    unique, counts = np.unique(array, return_counts=True)
    cumulative = np.cumsum(counts) / array.size
    return CoreCountCdf(
        label=label,
        core_counts=tuple(int(value) for value in unique),
        cumulative_probability=tuple(float(value) for value in cumulative),
    )


def figure5_core_cdfs(
    store: RequestStore,
    high_evasion_services: Sequence[str],
    low_evasion_services: Sequence[str],
) -> Tuple[CoreCountCdf, CoreCountCdf]:
    """The two CDF curves of Figure 5 (high- and low-evasion cohorts)."""

    high = store.filter(lambda record: record.source in tuple(high_evasion_services))
    low = store.filter(lambda record: record.source in tuple(low_evasion_services))
    return (_core_cdf(high, "High evasion rate"), _core_cdf(low, "Low evasion rate"))


# ---------------------------------------------------------------------------
# Figure 6 — probability of evading DataDome per UA device type
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceEvasionPoint:
    """One bar of Figure 6."""

    device: str
    requests: int
    evasion_probability: float


def figure6_device_evasion(
    store: RequestStore, *, detector: str = "DataDome", top: int = 4, min_requests: int = 50
) -> Tuple[DeviceEvasionPoint, ...]:
    """The UA device families with the highest probability of evading
    *detector* (Figure 6 uses DataDome and the top 4)."""

    histogram = store.unique_values(Attribute.UA_DEVICE)
    points = []
    for device, count in histogram.items():
        if device is None or count < min_requests:
            continue
        subset = store.filter(
            lambda record, d=device: record.request.fingerprint.value_for_grouping(Attribute.UA_DEVICE) == d
        )
        points.append(
            DeviceEvasionPoint(
                device=str(device),
                requests=count,
                evasion_probability=subset.evasion_rate(detector),
            )
        )
    points.sort(key=lambda point: point.evasion_probability, reverse=True)
    return tuple(points[:top])


# ---------------------------------------------------------------------------
# Figure 7 — top iPhone screen resolutions by DataDome evasion probability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolutionEvasionPoint:
    """One bar of Figure 7."""

    resolution: str
    requests: int
    evasion_probability: float
    exists_on_real_iphone: bool


@dataclass(frozen=True)
class IphoneResolutionAnalysis:
    """Figure 7 plus the Section 6.1 unique-resolution counts."""

    unique_resolutions: int
    unique_resolutions_among_evading: int
    top_points: Tuple[ResolutionEvasionPoint, ...]

    @property
    def nonexistent_in_top(self) -> int:
        """How many of the top resolutions do not exist on real iPhones."""

        return sum(1 for point in self.top_points if not point.exists_on_real_iphone)


def figure7_iphone_resolutions(
    store: RequestStore, *, detector: str = "DataDome", top: int = 10, min_requests: int = 10
) -> IphoneResolutionAnalysis:
    """Resolution spread of requests claiming to be iPhones (Section 6.1)."""

    iphone_store = store.filter(
        lambda record: record.request.fingerprint.value_for_grouping(Attribute.UA_DEVICE) == "iPhone"
    )
    histogram = iphone_store.unique_values(Attribute.SCREEN_RESOLUTION)
    histogram.pop(None, None)
    evading_histogram = iphone_store.evading(detector).unique_values(Attribute.SCREEN_RESOLUTION)
    evading_histogram.pop(None, None)

    points = []
    for resolution, count in histogram.items():
        if count < min_requests:
            continue
        subset = iphone_store.filter(
            lambda record, r=resolution: record.request.fingerprint.value_for_grouping(
                Attribute.SCREEN_RESOLUTION
            )
            == r
        )
        points.append(
            ResolutionEvasionPoint(
                resolution=str(resolution),
                requests=count,
                evasion_probability=subset.evasion_rate(detector),
                exists_on_real_iphone=is_real_iphone_resolution(parse_resolution(resolution)),
            )
        )
    points.sort(key=lambda point: (point.evasion_probability, point.requests), reverse=True)
    return IphoneResolutionAnalysis(
        unique_resolutions=len(histogram),
        unique_resolutions_among_evading=len(evading_histogram),
        top_points=tuple(points[:top]),
    )


# ---------------------------------------------------------------------------
# Figure 8 / Section 6.2 — location inferred from timezone vs IP address
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeoMismatchSummary:
    """Per-service location match rates (Section 6.2) and the Figure 8 data."""

    service: str
    advertised_region: str
    requests: int
    ip_match_rate: float
    timezone_match_rate: float


def section62_geo_match(
    store: RequestStore,
    services_with_regions: Dict[str, str],
) -> Tuple[GeoMismatchSummary, ...]:
    """Match rates of the advertised region via IP vs via browser timezone."""

    from repro.geo.timezones import country_matches_region, timezone_matches_region

    summaries = []
    for service, region in services_with_regions.items():
        service_store = store.by_source(service)
        if len(service_store) == 0:
            continue
        ip_matches = 0
        timezone_matches = 0
        for record in service_store:
            country = record.attribute(Attribute.IP_COUNTRY)
            if country and country_matches_region(str(country), region):
                ip_matches += 1
            timezone = record.attribute(Attribute.TIMEZONE)
            if timezone:
                try:
                    if timezone_matches_region(str(timezone), region):
                        timezone_matches += 1
                except KeyError:
                    pass
        summaries.append(
            GeoMismatchSummary(
                service=service,
                advertised_region=region,
                requests=len(service_store),
                ip_match_rate=ip_matches / len(service_store),
                timezone_match_rate=timezone_matches / len(service_store),
            )
        )
    return tuple(summaries)


def figure8_location_histograms(store: RequestStore) -> Tuple[Dict[str, int], Dict[str, int]]:
    """The two Figure 8 heatmaps flattened to per-country request counts.

    Returns ``(by_timezone_country, by_ip_country)``.
    """

    from repro.geo.timezones import country_of_timezone

    by_timezone: Dict[str, int] = {}
    by_ip: Dict[str, int] = {}
    for record in store:
        timezone = record.attribute(Attribute.TIMEZONE)
        if timezone:
            country = country_of_timezone(str(timezone)) or "Unknown"
            by_timezone[country] = by_timezone.get(country, 0) + 1
        ip_country = record.attribute(Attribute.IP_COUNTRY)
        if ip_country:
            by_ip[str(ip_country)] = by_ip.get(str(ip_country), 0) + 1
    return by_timezone, by_ip


# ---------------------------------------------------------------------------
# Figure 9 — temporal distribution of traffic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DailySeries:
    """The four Figure 9 series."""

    days: Tuple[int, ...]
    requests: Tuple[int, ...]
    unique_ips: Tuple[int, ...]
    unique_cookies: Tuple[int, ...]
    unique_fingerprints: Tuple[int, ...]


def figure9_daily_series(store: RequestStore) -> DailySeries:
    """Per-day request / unique-IP / unique-cookie / unique-fingerprint counts.

    A columnar-backed store computes straight from its
    :class:`~repro.honeysite.storage.RecordColumns` arrays — no record
    object is materialised, and fingerprints hash once per *session*
    instead of once per request; the object path below is the reference
    oracle (``tests/test_analysis_integration.py`` pins equality).
    """

    if isinstance(store, LazyRequestStore):
        return _figure9_from_columns(store.columns)
    return _figure9_from_records(store)


def _figure9_from_records(store: RequestStore) -> DailySeries:
    """Object-path reference implementation of :func:`figure9_daily_series`."""

    series = store.daily_series()
    days = tuple(sorted(series))
    return DailySeries(
        days=days,
        requests=tuple(series[day]["requests"] for day in days),
        unique_ips=tuple(series[day]["unique_ips"] for day in days),
        unique_cookies=tuple(series[day]["unique_cookies"] for day in days),
        unique_fingerprints=tuple(series[day]["unique_fingerprints"] for day in days),
    )


def _canonical_fingerprint_rows(columns: RecordColumns) -> np.ndarray:
    """Per-row fingerprint codes, canonicalised by stable hash.

    One hash per *session*; sessions whose browser-side attributes hash
    identically collapse onto one code, exactly like the object path's
    set-of-hashes semantics.  (Cookie and address columns go through
    :meth:`RecordColumns.cookie_columns` / :meth:`~RecordColumns.ip_columns`
    instead — only the hash case needs a bespoke canonicalisation.)
    """

    canonical: Dict[str, int] = {}
    session_codes = np.fromiter(
        (
            canonical.setdefault(fingerprint.stable_hash(), position)
            for position, fingerprint in enumerate(columns.session_fingerprints)
        ),
        dtype=np.int64,
        count=columns.n_sessions,
    )
    return session_codes[columns.session_codes]


def _row_days(columns: RecordColumns) -> np.ndarray:
    return (columns.timestamps // SECONDS_PER_DAY).astype(np.int64)


def _figure9_from_columns(columns: RecordColumns) -> DailySeries:
    """Columnar implementation over per-row code arrays (object-free)."""

    if columns.n_rows == 0:
        return DailySeries(days=(), requests=(), unique_ips=(), unique_cookies=(),
                           unique_fingerprints=())
    unique_days, day_rank = np.unique(_row_days(columns), return_inverse=True)
    requests = np.bincount(day_rank, minlength=unique_days.size)

    def distinct_per_day(row_codes: np.ndarray, n_codes: int) -> np.ndarray:
        keys = np.unique(day_rank.astype(np.int64) * n_codes + row_codes)
        return np.bincount(keys // n_codes, minlength=unique_days.size)

    ip_rows, ip_values = columns.ip_columns()
    cookie_rows, cookie_values = columns.cookie_columns()
    fingerprint_rows = _canonical_fingerprint_rows(columns)
    return DailySeries(
        days=tuple(int(day) for day in unique_days),
        requests=tuple(int(count) for count in requests),
        unique_ips=tuple(
            int(count) for count in distinct_per_day(ip_rows, len(ip_values))
        ),
        unique_cookies=tuple(
            int(count) for count in distinct_per_day(cookie_rows, len(cookie_values))
        ),
        unique_fingerprints=tuple(
            int(count)
            for count in distinct_per_day(fingerprint_rows, columns.n_sessions)
        ),
    )


def new_fingerprints_over_time(store: RequestStore) -> Tuple[int, ...]:
    """Per-day count of never-before-seen fingerprints (Section 6.3).

    Like :func:`figure9_daily_series`, a columnar-backed store answers
    from its arrays (one hash per session, vectorized first-occurrence
    scan); the object path is the reference oracle.
    """

    if isinstance(store, LazyRequestStore):
        return _new_fingerprints_from_columns(store.columns)
    return _new_fingerprints_from_records(store)


def _new_fingerprints_from_records(store: RequestStore) -> Tuple[int, ...]:
    """Object-path reference implementation of :func:`new_fingerprints_over_time`."""

    seen = set()
    per_day: Dict[int, int] = {}
    for record in store.sorted_by_time():
        digest = record.request.fingerprint.stable_hash()
        if digest not in seen:
            seen.add(digest)
            per_day[record.day] = per_day.get(record.day, 0) + 1
    return tuple(per_day.get(day, 0) for day in sorted(set(record.day for record in store)))


def _new_fingerprints_from_columns(columns: RecordColumns) -> Tuple[int, ...]:
    """Columnar implementation over per-row code arrays (object-free)."""

    if columns.n_rows == 0:
        return ()
    days = _row_days(columns)
    order = np.argsort(columns.timestamps, kind="stable")
    fingerprint_rows = _canonical_fingerprint_rows(columns)[order]
    # First time-ordered occurrence of each distinct fingerprint, and the
    # day it landed on.
    _unique, first_positions = np.unique(fingerprint_rows, return_index=True)
    first_days = days[order][first_positions]
    unique_days = np.unique(days)
    per_day = np.bincount(
        np.searchsorted(unique_days, first_days), minlength=unique_days.size
    )
    return tuple(int(count) for count in per_day)


# ---------------------------------------------------------------------------
# Figure 10 — platform values reported under one cookie
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CookiePlatformSpread:
    """Figure 10: platform distribution of the busiest cookie."""

    cookie: str
    requests: int
    platform_percentages: Dict[str, float]

    @property
    def distinct_platforms(self) -> int:
        return len(self.platform_percentages)


def figure10_platform_spread(store: RequestStore) -> Optional[CookiePlatformSpread]:
    """Platform values reported by the device with the busiest cookie."""

    groups = store.group_by_cookie()
    if not groups:
        return None
    cookie, records = max(groups.items(), key=lambda item: len(item[1]))
    histogram: Dict[str, int] = {}
    for record in records:
        platform = record.attribute(Attribute.PLATFORM)
        if platform is None:
            continue
        histogram[str(platform)] = histogram.get(str(platform), 0) + 1
    total = sum(histogram.values())
    if total == 0:
        return None
    return CookiePlatformSpread(
        cookie=cookie,
        requests=len(records),
        platform_percentages={
            platform: 100.0 * count / total for platform, count in sorted(
                histogram.items(), key=lambda item: item[1], reverse=True
            )
        },
    )
