"""Sharded, parallel corpus engine.

The legacy :func:`repro.analysis.corpus.build_corpus` path generates every
bot service, the real-user share and each privacy technology serially in
one process, drawing all randomness from one sequentially consumed master
stream.  This module replaces that with a **sharded** design:

* every traffic source (each of the 20 bot services, the real-user share,
  each privacy technology) is one :class:`ShardSpec`;
* every shard derives its randomness from its own
  ``numpy.random.SeedSequence`` spawned from the master seed, so its output
  is a pure function of ``(seed, spec)`` — independent of worker count,
  executor kind and scheduling order;
* every shard generates into its own miniature
  :class:`~repro.honeysite.site.HoneySite` whose
  :class:`~repro.geo.ipaddr.IpAddressSpace` is partitioned (shard *i* of
  *n* allocates /16 blocks ``i, i+n, i+2n, ...``), so merged shards never
  collide on address space;
* the coordinator mints every source's URL token up front, fans shards out
  over a thread or process pool, and merges results **in shard order**,
  adopting each shard's URL mapping and prefix assignments into the final
  site.

Shard results travel **columnar**: a vectorized-generation worker returns
a :class:`~repro.honeysite.storage.RecordColumns` payload (per-row arrays
over session-deduplicated fingerprint/header/decision dictionaries) plus
the :class:`~repro.core.columnar.TablePayload` attribute codes, instead of
a pickled list of record objects.  The coordinator concatenates payloads,
renumbers request ids and wraps the result in a
:class:`~repro.honeysite.storage.LazyRequestStore` — record objects
materialise lazily, and only for consumers that genuinely iterate them.
The legacy generation engine still ships record lists.

Identical output for a given seed regardless of worker count is the
engine's core contract; ``tests/test_engine.py`` pins it.
"""

from __future__ import annotations

import concurrent.futures
import logging
import os
import pickle
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.obs import SpanRecord
from repro.analysis.corpus import Corpus, default_scale
from repro.bots.marketplace import build_marketplace
from repro.bots.service import BotServiceProfile
from repro.bots.traffic import BotTrafficGenerator
from repro.core.columnar import TableEmitter, TablePayload, assemble_table
from repro.geo.geolite import GeoDatabase
from repro.geo.ipaddr import IpAddressSpace, PrefixAssignment
from repro.honeysite.site import HoneySite, SessionRecorder
from repro.honeysite.storage import (
    LazyRequestStore,
    RecordColumns,
    RecordColumnsBuilder,
    RecordedRequest,
)
from repro.honeysite.urls import generate_url_token
from repro.users.privacy import PrivacyTechnology, PrivacyTrafficGenerator
from repro.users.realuser import REAL_USER_SOURCE, RealUserTrafficGenerator

#: Environment variable selecting the worker count (unset → serial legacy
#: path in :func:`repro.analysis.corpus.build_corpus`, or 1 inside the
#: engine itself).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable selecting the executor kind ("process" or "thread").
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment variable bounding per-shard retry attempts after a worker
#: failure (exception, killed process, timeout) before the shard falls
#: back to in-process serial execution.
RETRIES_ENV_VAR = "REPRO_SHARD_RETRIES"

#: Default per-shard retry budget when ``REPRO_SHARD_RETRIES`` is unset.
DEFAULT_SHARD_RETRIES = 2

#: Environment variable setting a per-shard-attempt timeout in seconds
#: (unset or 0 → no timeout).  A timed-out attempt counts as a failure:
#: the pool is abandoned (the stuck worker cannot be cancelled) and the
#: affected shards are retried on a fresh pool.
TIMEOUT_ENV_VAR = "REPRO_SHARD_TIMEOUT"

#: Exponential-backoff schedule between shard retry rounds: the sleep
#: before retry round *k* is ``BACKOFF_BASE * 2**k``, capped, and scaled
#: by a deterministic jitter in [0.5, 1.5) drawn from the retry seed —
#: reruns of the same configuration back off identically.
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_CAP_SECONDS = 2.0

#: Generation engines: ``"vectorized"`` (batched draws, session-cached
#: materialisation, direct columnar emission — the default) and
#: ``"legacy"`` (the object-at-a-time reference).  Both produce
#: byte-identical corpora for any seed, scale, worker count and executor;
#: ``tests/test_vectorized.py`` pins it.
GENERATIONS = ("vectorized", "legacy")

#: A bot service whose scaled volume exceeds this many requests is split
#: into sub-shards of roughly this size, so the largest service no longer
#: bounds parallel speedup.  Deliberately independent of the worker count:
#: the shard plan (and therefore the corpus) must be a pure function of
#: (seed, scale, configuration), or corpora would differ across
#: parallelism and the content-addressed cache would break.
SUBSHARD_TARGET_RECORDS = 2048

#: Hard ceiling on the total shard count of one plan.  Every shard
#: allocates its own interleaved slice of the partitioned address space;
#: a bot shard saturates the distinct (ASN, region) pool at roughly 77
#: cloud blocks regardless of its request budget.  The widened per-kind
#: octet segments (``geo.ipaddr.DEFAULT_KIND_OCTET_RANGES``: cloud holds
#: 31 × 256 blocks) support ~100 concurrent partitions (31 × 256 ÷ 77 ≈
#: 103), and the format-v4 bump (``CORPUS_FORMAT_VERSION``) legitimised
#: re-pinning every shard plan, so the ceiling now sits at 96: large-scale
#: plans split the biggest services three times finer, and the cheaper
#: pure-array transport keeps the extra merges almost free.  The plan (and
#: therefore the corpus) is still a pure function of (seed, scale,
#: configuration) — raising this again requires another format bump.
MAX_TOTAL_SHARDS = 96

#: Fan-out clamp for the **legacy** (record-object) shard transport: every
#: worker must have at least this many records of planned work, because
#: unpickling per-record objects in the coordinator costs about as much as
#: generating them — the PR-2 bench measured 0.41–0.91x at low scales.
MIN_RECORDS_PER_WORKER = 100_000

#: Fan-out clamp for the **columnar** shard transport (vectorized
#: generation).  Since format v4 a shard payload is pure numpy arrays over
#: scalar decode lists — zero pickled objects, measured at ~271 bytes per
#: record at the reference tiny config against ~353 for the v3 payload
#: (which still pickled one fingerprint object per session).  Transfer and
#: coordinator-side decode are both effectively memcpy now, so the floor
#: is set by executor startup alone: a forked worker costs ~0.2 s before
#: its first record, which the vectorized engine amortises over a few
#: thousand records.  Below this floor the clamp falls back toward serial
#: exactly as before.
MIN_RECORDS_PER_WORKER_COLUMNAR = 4_000

#: CI regression ceiling on measured columnar transfer cost, in pickled
#: payload bytes per planned record (``last_plan["payload_bytes"] /
#: last_plan["planned_records"]``).  The v4 encoding measures ~271 B/record
#: at small scales and falls as decode lists amortise; the committed v3
#: baseline was ~353.  The gate fails any change that silently reintroduces
#: per-session objects (or otherwise bloats the payload) into the shard
#: transport.
PAYLOAD_BYTES_PER_RECORD_CEILING = 320


#: The ``map_shards`` recovery-stat keys, in reporting order.  Each is
#: mirrored into an always-on registry counter (labelled by fan-out
#: pool) so ``repro.obs`` is the single cumulative source of truth;
#: ``CorpusEngine.last_plan["faults"]`` remains the per-build view.
_SHARD_STAT_KEYS = (
    "attempt_rounds",
    "failures",
    "retried",
    "serial_fallbacks",
    "pool_rebuilds",
)

_SHARD_STAT_COUNTERS = {
    key: obs.counter(
        f"repro_shard_{key}_total",
        f"Shard fan-out {key.replace('_', ' ')}, by worker pool.",
        always=True,
    )
    for key in _SHARD_STAT_KEYS
}

_SHARD_RUNS = obs.counter(
    "repro_shard_runs_total", "Shard payloads executed, by worker pool."
)

_PAYLOAD_BYTES = obs.counter(
    "repro_corpus_payload_bytes_total",
    "Columnar shard payload bytes, as measured inside the workers.",
    always=True,
)

_CACHE_LOOKUPS = obs.counter(
    "repro_corpus_cache_lookups_total",
    "Corpus cache lookups by status (hit, miss, uncached).",
    always=True,
)


def validate_generation(generation: str) -> str:
    if generation not in GENERATIONS:
        raise ValueError(f"generation must be one of {GENERATIONS}, got {generation!r}")
    return generation

#: Privacy technologies generated by default (Section 7.5's five).
PRIVACY_TECHNOLOGIES: Tuple[PrivacyTechnology, ...] = (
    PrivacyTechnology.SAFARI,
    PrivacyTechnology.BRAVE,
    PrivacyTechnology.TOR,
    PrivacyTechnology.UBLOCK_ORIGIN,
    PrivacyTechnology.ADBLOCK_PLUS,
)

_EXECUTORS = ("process", "thread")


def default_workers() -> Optional[int]:
    """Worker count requested through ``REPRO_WORKERS`` (``None`` if unset)."""

    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


def default_executor() -> str:
    """Executor kind requested through ``REPRO_EXECUTOR`` (default process)."""

    value = os.environ.get(EXECUTOR_ENV_VAR, "process").strip().lower()
    if value not in _EXECUTORS:
        raise ValueError(f"{EXECUTOR_ENV_VAR} must be one of {_EXECUTORS}, got {value!r}")
    return value


def default_shard_retries() -> int:
    """Retry budget requested through ``REPRO_SHARD_RETRIES`` (default 2)."""

    raw = os.environ.get(RETRIES_ENV_VAR)
    if not raw:
        return DEFAULT_SHARD_RETRIES
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}") from exc
    if value < 0:
        raise ValueError(f"{RETRIES_ENV_VAR} cannot be negative, got {value}")
    return value


def default_shard_timeout() -> Optional[float]:
    """Per-attempt shard timeout from ``REPRO_SHARD_TIMEOUT`` (``None`` if unset)."""

    raw = os.environ.get(TIMEOUT_ENV_VAR)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{TIMEOUT_ENV_VAR} must be a number, got {raw!r}") from exc
    if value < 0:
        raise ValueError(f"{TIMEOUT_ENV_VAR} cannot be negative, got {value}")
    return value or None


def retry_backoff_seconds(attempt: int, *, seed: int = 0, label: str = "shards") -> float:
    """The sleep before retry round *attempt* (0-based), jitter included.

    Exponential with a deterministic jitter in [0.5, 1.5) drawn from
    ``(seed, label, attempt)`` — a rerun of the same configuration backs
    off identically, while concurrent fan-outs with different labels
    decorrelate.
    """

    base = min(BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * (2 ** max(0, attempt)))
    jitter = np.random.default_rng(
        np.random.SeedSequence((seed, hash(label) & 0xFFFFFFFF, attempt))
    ).random()
    return base * (0.5 + jitter)


def _guarded_call(task):
    """Worker entry point: fire the ``shard_run`` fault point, then run.

    Module-level so process pools can pickle it.  The key carries the
    fan-out label, payload index and attempt number, so retried attempts
    draw fresh fault decisions and every fan-out (corpus generation,
    pair mining, classification shards) is injectable independently.
    """

    fn, payload, key, allow_kill = task
    faults.check("shard_run", key, allow_kill=allow_kill)
    return fn(payload)


def map_shards(
    fn,
    payloads,
    *,
    workers: int,
    executor: Optional[str] = None,
    retries: Optional[int] = None,
    retry_seed: int = 0,
    label: str = "shards",
    stats: Optional[Dict[str, int]] = None,
) -> list:
    """Map *fn* over *payloads* on the shard worker pool, preserving order.

    The generic fan-out primitive shared by the corpus engine, the columnar
    miner and the sharded classifier: ``workers <= 1`` (or a single
    payload) runs inline; otherwise a process or thread pool executes the
    payloads and results come back in input order.  *fn* must be a
    module-level callable and payloads picklable when the process executor
    is used.

    The pooled path is **fault tolerant**: a worker exception, a killed
    process (``BrokenProcessPool``) or a timed-out attempt
    (``REPRO_SHARD_TIMEOUT``) triggers up to *retries* bounded retry
    rounds (default ``REPRO_SHARD_RETRIES``) with exponential backoff and
    deterministic jitter from *retry_seed*; a broken pool is rebuilt
    between rounds.  A payload still failing after the budget falls back
    to **in-process serial execution** — every payload is a pure function
    of its spec, so results (and the merged corpus) are byte-identical to
    a fault-free run no matter which path executed it.  *stats*, when
    given, is filled with the recovery counters (``attempt_rounds``,
    ``failures``, ``retried``, ``serial_fallbacks``, ``pool_rebuilds``).
    """

    payloads = list(payloads)
    track = dict.fromkeys(_SHARD_STAT_KEYS, 0)

    def _finalize(result_list: list) -> list:
        if stats is not None:
            stats.update(track)
        _SHARD_RUNS.inc(len(payloads), pool=label)
        for key, value in track.items():
            if value:
                _SHARD_STAT_COUNTERS[key].inc(value, pool=label)
        return result_list

    if workers <= 1 or len(payloads) <= 1:
        return _finalize([fn(payload) for payload in payloads])
    if executor is None:
        executor = default_executor()
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if retries is None:
        retries = default_shard_retries()
    timeout = default_shard_timeout()
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    allow_kill = executor == "process"
    max_workers = min(workers, len(payloads))

    results: list = [None] * len(payloads)
    pending = list(range(len(payloads)))
    pool = pool_cls(max_workers=max_workers)
    try:
        for attempt in range(retries + 1):
            track["attempt_rounds"] += 1
            with obs.tracer().span(
                "shards.round", pool=label, round=attempt, pending=len(pending)
            ):
                futures = {
                    index: pool.submit(
                        _guarded_call,
                        (fn, payloads[index], f"{label}:{index}:{attempt}", allow_kill),
                    )
                    for index in pending
                }
                failed: List[int] = []
                broken = False
                for index in pending:
                    try:
                        results[index] = futures[index].result(timeout=timeout)
                    except (BrokenProcessPool, concurrent.futures.BrokenExecutor):
                        failed.append(index)
                        broken = True
                    except concurrent.futures.TimeoutError:
                        # The attempt cannot be cancelled mid-run; abandon the
                        # pool so the stuck worker never blocks a retry.
                        failed.append(index)
                        broken = True
                    except Exception:
                        failed.append(index)
            track["failures"] += len(failed)
            if not failed:
                pending = []
                break
            pending = failed
            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = pool_cls(max_workers=max_workers)
                track["pool_rebuilds"] += 1
            if attempt < retries:
                track["retried"] += len(failed)
                time.sleep(retry_backoff_seconds(attempt, seed=retry_seed, label=label))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    # Poisoned shards: the retry budget is spent, so run the stragglers
    # inline — trusted in-process execution, no fault point, no pool.
    if pending:
        with obs.tracer().span(
            "shards.serial_fallback", pool=label, pending=len(pending)
        ):
            for index in pending:
                results[index] = fn(payloads[index])
    track["serial_fallbacks"] += len(pending)
    return _finalize(results)


@dataclass(frozen=True)
class ShardSpec:
    """One independently seeded unit of corpus generation."""

    index: int
    total: int
    kind: str  # "bots" | "real_users" | "privacy"
    source: str
    url_path: str
    seed: np.random.SeedSequence
    scale: float = 1.0
    campaign_days: int = 90
    profile: Optional[BotServiceProfile] = None
    technology: Optional[PrivacyTechnology] = None
    num_requests: int = 0
    #: request volume this shard generates when it is one slice of a split
    #: service (``None`` → the profile's full scaled volume)
    request_budget: Optional[int] = None
    generation: str = "vectorized"
    #: measure the pickled payload size in the worker (set by the
    #: coordinator only when payloads will actually cross a process
    #: boundary — the stat then costs the pool, not the coordinator)
    measure_payload: bool = False


@dataclass
class ShardResult:
    """Everything one shard produced, ready to merge.

    Vectorized-generation shards fill :attr:`columns` (the compact
    columnar payload) and leave :attr:`records` empty; legacy-generation
    shards ship record objects.  :meth:`store` gives a uniform view.
    """

    index: int
    source: str
    kind: str
    recorded: int
    records: List[RecordedRequest] = field(default_factory=list)
    assignments: List[PrefixAssignment] = field(default_factory=list)
    #: columnar fingerprint codes emitted during vectorized generation
    table: Optional[TablePayload] = None
    #: columnar record payload (vectorized generation only)
    columns: Optional[RecordColumns] = None
    #: pickled size of (columns, table), measured in the worker when the
    #: spec requested it (``ShardSpec.measure_payload``)
    payload_bytes: Optional[int] = None
    #: telemetry spans recorded inside the worker (empty while telemetry
    #: is disabled); the coordinator adopts them into its tracer so one
    #: timeline covers every process
    spans: List[SpanRecord] = field(default_factory=list)

    def store(self):
        """The shard's records as a request store (shard-local ids 1..n).

        Materialises lazily for columnar shards; mainly a debugging and
        test convenience — the coordinator merges payloads directly.
        """

        from repro.honeysite.storage import RequestStore

        if self.columns is not None:
            return LazyRequestStore(self.columns.renumbered())
        return RequestStore(self.records)


def run_shard(spec: ShardSpec) -> ShardResult:
    """Generate one shard in isolation (the worker entry point).

    Builds a private honey site over a partitioned slice of the address
    space, adopts the pre-minted URL path and runs the matching traffic
    generator.  Module-level so :class:`concurrent.futures` process pools
    can pickle it.
    """

    # Spans are recorded by hand rather than through the worker's global
    # tracer: pool processes are reused across shards, so slicing this
    # shard's spans out of a shared tracer would race the thread executor.
    span_ts = time.time()
    span_started = time.perf_counter()

    # Derive the two child sequences statelessly (equivalent to
    # ``spec.seed.spawn(2)`` but without mutating the spec's SeedSequence,
    # so running a shard is a pure function of its spec).
    site_seed = np.random.SeedSequence(
        entropy=spec.seed.entropy, spawn_key=spec.seed.spawn_key + (0,)
    )
    generator_seed = np.random.SeedSequence(
        entropy=spec.seed.entropy, spawn_key=spec.seed.spawn_key + (1,)
    )
    space = IpAddressSpace(partition=(spec.index, spec.total))
    site = HoneySite(geo=GeoDatabase(space), rng=np.random.default_rng(site_seed))
    site.urls.adopt(spec.source, spec.url_path)
    vectorized = validate_generation(spec.generation) == "vectorized"
    emitter: Optional[TableEmitter] = None
    builder: Optional[RecordColumnsBuilder] = None
    recorder: Optional[SessionRecorder] = None
    if vectorized:
        # Columnar transport: the recorder sinks rows into a payload
        # builder instead of constructing record objects, and the emitter
        # collects the per-request attribute code rows alongside.
        emitter = TableEmitter()
        builder = RecordColumnsBuilder()
        recorder = SessionRecorder(site, sink=builder)

    if spec.kind == "bots":
        if spec.profile is None:
            raise ValueError("bot shard requires a profile")
        generator = BotTrafficGenerator(site, rng=generator_seed)
        if vectorized:
            recorded = generator.run_service_vectorized(
                spec.profile,
                scale=spec.scale,
                campaign_days=spec.campaign_days,
                total_requests=spec.request_budget,
                recorder=recorder,
                emitter=emitter,
            )
        else:
            recorded = generator.run_service(
                spec.profile,
                scale=spec.scale,
                campaign_days=spec.campaign_days,
                total_requests=spec.request_budget,
            )
    elif spec.kind == "real_users":
        generator = RealUserTrafficGenerator(site, rng=generator_seed)
        if vectorized:
            recorded = generator.run_vectorized(
                num_requests=spec.num_requests,
                source=spec.source,
                recorder=recorder,
                emitter=emitter,
            )
        else:
            recorded = generator.run(num_requests=spec.num_requests, source=spec.source)
    elif spec.kind == "privacy":
        if spec.technology is None:
            raise ValueError("privacy shard requires a technology")
        generator = PrivacyTrafficGenerator(site, rng=generator_seed)
        if vectorized:
            recorded = generator.run_technology_vectorized(
                spec.technology,
                num_requests=spec.num_requests,
                recorder=recorder,
                emitter=emitter,
            )
        else:
            recorded = generator.run_technology(spec.technology, num_requests=spec.num_requests)
    else:
        raise ValueError(f"unknown shard kind {spec.kind!r}")

    table = emitter.payload() if emitter is not None else None
    columns = builder.columns() if builder is not None else None
    payload_bytes: Optional[int] = None
    if spec.measure_payload and columns is not None:
        payload_bytes = len(pickle.dumps((columns, table), pickle.HIGHEST_PROTOCOL))
    spans: List[SpanRecord] = []
    if obs.telemetry_enabled():
        attrs: Dict[str, object] = {
            "index": spec.index,
            "source": spec.source,
            "kind": spec.kind,
            "recorded": recorded,
        }
        if payload_bytes is not None:
            attrs["payload_bytes"] = payload_bytes
        spans.append(
            SpanRecord(
                name="corpus.shard",
                ts=span_ts,
                duration=time.perf_counter() - span_started,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=attrs,
            )
        )
    return ShardResult(
        index=spec.index,
        source=spec.source,
        kind=spec.kind,
        recorded=recorded,
        records=list(site.store),
        assignments=space.assignments,
        table=table,
        columns=columns,
        payload_bytes=payload_bytes,
        spans=spans,
    )


class CorpusEngine:
    """Plans, executes and merges sharded corpus builds."""

    def __init__(
        self,
        *,
        seed: int = 7,
        scale: Optional[float] = None,
        include_real_users: bool = True,
        include_privacy: bool = False,
        real_user_requests: int = 2206,
        privacy_requests_each: int = 60,
        campaign_days: int = 90,
        profiles: Optional[Sequence[BotServiceProfile]] = None,
        technologies: Sequence[PrivacyTechnology] = PRIVACY_TECHNOLOGIES,
        generation: str = "vectorized",
        subshard_target: int = SUBSHARD_TARGET_RECORDS,
        min_records_per_worker: Optional[int] = None,
    ):
        self.seed = int(seed)
        self.scale = default_scale() if scale is None else float(scale)
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        self.include_real_users = include_real_users
        self.include_privacy = include_privacy
        self.real_user_requests = int(real_user_requests)
        self.privacy_requests_each = int(privacy_requests_each)
        self.campaign_days = int(campaign_days)
        self.profiles: Tuple[BotServiceProfile, ...] = tuple(
            profiles if profiles is not None else build_marketplace()
        )
        self.technologies: Tuple[PrivacyTechnology, ...] = tuple(technologies)
        self.generation = validate_generation(generation)
        self.subshard_target = int(subshard_target)
        if self.subshard_target < 1:
            raise ValueError("subshard_target must be positive")
        if min_records_per_worker is not None and int(min_records_per_worker) < 1:
            raise ValueError("min_records_per_worker must be positive")
        #: per-worker planned-records floor for the fan-out clamp; ``None``
        #: derives it from the generation engine's transfer cost
        #: (:data:`MIN_RECORDS_PER_WORKER_COLUMNAR` for the columnar
        #: transport, :data:`MIN_RECORDS_PER_WORKER` for record objects)
        self.min_records_per_worker = (
            None if min_records_per_worker is None else int(min_records_per_worker)
        )
        #: Execution summary of the most recent :meth:`build` call — the
        #: shard plan and the fan-out actually used (benchmarks record it).
        self.last_plan: Dict[str, object] = {}

    # -- planning -------------------------------------------------------------

    def _sources(self) -> List[Tuple[str, str, object]]:
        """Ordered (kind, source, payload) triples, one per shard."""

        sources: List[Tuple[str, str, object]] = [
            ("bots", profile.name, profile) for profile in self.profiles
        ]
        if self.include_real_users:
            sources.append(("real_users", REAL_USER_SOURCE, None))
        if self.include_privacy:
            for technology in self.technologies:
                sources.append(("privacy", f"privacy:{technology.value}", technology))
        return sources

    def _plan_parts(self, sources: Sequence[Tuple[str, str, object]]) -> Dict[str, int]:
        """Sub-shard count per bot service, under the global shard ceiling.

        Splits are granted one at a time to the service with the largest
        remaining per-shard slice (ties: first in source order) until every
        slice fits the sub-shard target or :data:`MAX_TOTAL_SHARDS` is
        reached.  Depends only on the configuration — never on the worker
        count — so the plan (and the corpus) stays a pure function of the
        seed and configuration.
        """

        volumes: List[Tuple[str, int]] = [
            (source, payload.scaled_requests(self.scale))
            for kind, source, payload in sources
            if kind == "bots"
        ]
        parts = {source: 1 for source, _volume in volumes}
        budget = MAX_TOTAL_SHARDS - len(sources)
        while budget > 0:
            best: Optional[str] = None
            best_slice = float(self.subshard_target)
            for source, volume in volumes:
                slice_size = volume / parts[source]
                if slice_size > best_slice:
                    best, best_slice = source, slice_size
            if best is None:
                break
            parts[best] += 1
            budget -= 1
        return parts

    @staticmethod
    def _subshard_budgets(volume: int, parts: int) -> List[Optional[int]]:
        """Balanced request budgets of one service's *parts* slices."""

        if parts <= 1:
            return [None]
        base, remainder = divmod(volume, parts)
        return [base + 1 if index < remainder else base for index in range(parts)]

    def plan(self) -> List[ShardSpec]:
        """Derive the deterministic shard list for this configuration.

        Every traffic source receives one spawned seed exactly as before;
        a bot service whose scaled volume exceeds ``subshard_target`` is
        additionally split into sub-shards (one slice of its volume each,
        subject to the global :data:`MAX_TOTAL_SHARDS` ceiling), whose
        seeds derive statelessly from the source seed.  Unsplit
        configurations therefore produce the exact plan — and corpus —
        previous revisions did.
        """

        sources = self._sources()
        master = np.random.SeedSequence(self.seed)
        url_seed, _site_seed, *source_seeds = master.spawn(2 + len(sources))
        url_rng = np.random.default_rng(url_seed)

        parts = self._plan_parts(sources)
        planned: List[Tuple[str, str, object, np.random.SeedSequence, str, Optional[int]]] = []
        taken_paths: set = set()
        for (kind, source, payload), source_seed in zip(sources, source_seeds):
            while True:
                path = "/" + generate_url_token(url_rng)
                if path not in taken_paths:
                    break
            taken_paths.add(path)
            if kind == "bots":
                budgets = self._subshard_budgets(
                    payload.scaled_requests(self.scale), parts.get(source, 1)
                )
            else:
                budgets = [None]
            if len(budgets) == 1:
                planned.append((kind, source, payload, source_seed, path, budgets[0]))
            else:
                for part, budget in enumerate(budgets):
                    # Stateless children of the source seed, one per slice;
                    # the (2 + part) offset keeps them clear of the (0,)/(1,)
                    # site/generator children run_shard derives.
                    sub_seed = np.random.SeedSequence(
                        entropy=source_seed.entropy,
                        spawn_key=source_seed.spawn_key + (2 + part,),
                    )
                    planned.append((kind, source, payload, sub_seed, path, budget))

        specs: List[ShardSpec] = []
        for index, (kind, source, payload, seed, path, budget) in enumerate(planned):
            specs.append(
                ShardSpec(
                    index=index,
                    total=len(planned),
                    kind=kind,
                    source=source,
                    url_path=path,
                    seed=seed,
                    scale=self.scale,
                    campaign_days=self.campaign_days,
                    profile=payload if kind == "bots" else None,
                    technology=payload if kind == "privacy" else None,
                    num_requests=(
                        self.real_user_requests
                        if kind == "real_users"
                        else self.privacy_requests_each
                        if kind == "privacy"
                        else 0
                    ),
                    request_budget=budget,
                    generation=self.generation,
                )
            )
        return specs

    # -- execution ------------------------------------------------------------

    def _execute(
        self, specs: Sequence[ShardSpec], workers: int, executor: str
    ) -> List[ShardResult]:
        # Submit the heaviest shards first so a big service never lands
        # last on an otherwise idle pool; results are re-ordered below.
        ordered = sorted(specs, key=_shard_weight, reverse=True)
        stats: Dict[str, int] = {}
        results = map_shards(
            run_shard,
            ordered,
            workers=workers,
            executor=executor,
            retry_seed=self.seed,
            label="corpus",
            stats=stats,
        )
        self.last_plan["faults"] = stats
        # Shard workers record their spans locally (possibly in another
        # process); merging them here puts every shard on one timeline.
        obs.tracer().adopt(
            span for result in results for span in result.spans
        )
        return sorted(results, key=lambda result: result.index)

    def records_per_worker_floor(self) -> int:
        """The clamp threshold in effect, derived from the transfer cost.

        The columnar shard transport made result transfer cheap, so
        vectorized generation amortises a worker over far fewer records
        than the record-object transport does; an explicit
        ``min_records_per_worker`` constructor value overrides both.
        """

        if self.min_records_per_worker is not None:
            return self.min_records_per_worker
        if self.generation == "vectorized":
            return MIN_RECORDS_PER_WORKER_COLUMNAR
        return MIN_RECORDS_PER_WORKER

    def effective_workers(self, requested: int, specs: Sequence[ShardSpec]) -> int:
        """Clamp *requested* workers so shard overhead cannot dominate.

        Every worker must have at least :meth:`records_per_worker_floor`
        records of planned work (and there is no point in more workers than
        shards).  Returns at least 1; a result of 1 runs inline without any
        executor.  This only changes wall-clock behaviour — corpus content
        is identical for every fan-out.
        """

        requested = max(1, int(requested))
        total_records = sum(_shard_weight(spec) for spec in specs)
        cap = max(1, total_records // self.records_per_worker_floor())
        return min(requested, cap, max(1, len(specs)))

    def build(self, *, workers: Optional[int] = None, executor: Optional[str] = None) -> Corpus:
        """Build the corpus, fanning shards out over *workers*.

        The merged corpus is byte-identical for any worker count, either
        executor kind and either generation engine; those knobs only change
        wall-clock time.  The fan-out actually used is clamped through
        :meth:`effective_workers` and recorded in :attr:`last_plan`.
        """

        if workers is None:
            workers = default_workers() or 1
        if executor is None:
            executor = default_executor()

        specs = self.plan()
        effective = self.effective_workers(workers, specs)
        subshard_sources = sorted({spec.source for spec in specs if spec.request_budget is not None})
        self.last_plan = {
            "generation": self.generation,
            "transport": "columnar" if self.generation == "vectorized" else "records",
            "shards": len(specs),
            "planned_records": int(sum(_shard_weight(spec) for spec in specs)),
            "requested_workers": int(workers),
            "effective_workers": int(effective),
            "min_records_per_worker": self.records_per_worker_floor(),
            "subshard_target": self.subshard_target,
            "subsharded_sources": subshard_sources,
            "executor": executor,
        }
        master = np.random.SeedSequence(self.seed)
        _url_seed, site_seed = master.spawn(2)
        site = HoneySite(rng=np.random.default_rng(site_seed))

        if self.generation == "vectorized":
            # Measure every columnar payload's pickled size inside the
            # worker, whatever the executor: a serial or thread build ships
            # nothing across a process boundary, but the size is still the
            # transport cost a process build *would* pay, and the scaling
            # bench needs it recorded for single-worker runs too.  Workers
            # measure their own payloads so the coordinator never
            # re-serialises what a process pool already shipped.
            specs = [replace(spec, measure_payload=True) for spec in specs]
        with obs.tracer().span(
            "corpus.generate",
            shards=len(specs),
            workers=effective,
            executor=executor,
            generation=self.generation,
        ):
            results = self._execute(specs, effective, executor)

        corpus = Corpus(
            site=site, scale=self.scale, seed=self.seed, bot_profiles=self.profiles
        )
        for spec in specs:
            site.urls.adopt(spec.source, spec.url_path)
        for result in results:
            for assignment in result.assignments:
                site.geo.space.adopt(assignment)
            if result.kind == "bots":
                corpus.service_volumes[result.source] = (
                    corpus.service_volumes.get(result.source, 0) + result.recorded
                )
            elif result.kind == "real_users":
                corpus.real_user_requests = result.recorded
            elif result.kind == "privacy":
                technology = PrivacyTechnology(result.source.split(":", 1)[1])
                corpus.privacy_requests[technology] = result.recorded

        with obs.tracer().span(
            "corpus.merge", transport=self.last_plan["transport"]
        ):
            if all(result.columns is not None for result in results):
                self._merge_columnar(corpus, results)
            else:
                self._merge_records(site, results)
        return corpus

    def _merge_records(self, site: HoneySite, results: Sequence[ShardResult]) -> None:
        """Object-transport merge (legacy generation engine).

        Renumbers request ids in merged order: ``WebRequest`` draws ids
        from a process-global counter, so shard-local ids depend on what
        else ran in the worker process.  Sequential renumbering restores
        the serial-path invariant (ids are 1..N in store order)
        independent of executor and worker count.  The coordinator owns
        every shard record exclusively — worker sites are discarded
        (inline/thread) or the records arrived as pickled copies (process
        pool) — so renumbering mutates in place instead of copying two
        frozen dataclasses per record.
        """

        next_request_id = 1
        for result in results:
            for record in result.records:
                record.request.__dict__["request_id"] = next_request_id
                site.store.add(record)
                next_request_id += 1

    def _merge_columnar(self, corpus: Corpus, results: Sequence[ShardResult]) -> None:
        """Columnar-transport merge: concatenate payloads, renumber ids,
        attach a lazy store, and assemble the per-subset fingerprint tables
        — all without materialising a single record object.
        """

        merged = RecordColumns.concat([result.columns for result in results])
        # ``concat`` returns freshly allocated row arrays, so assigning the
        # merged-order id sequence directly is safe (no aliasing with any
        # shard payload).
        merged.request_ids = np.arange(1, merged.n_rows + 1, dtype=np.int64)
        corpus.site.store = LazyRequestStore(merged)
        # Transfer volume as measured inside the workers.  Recorded for
        # every columnar build — serial and thread runs included — so the
        # scaling bench can track per-record transport cost; None only if
        # some shard skipped measurement.
        measured = [result.payload_bytes for result in results]
        self.last_plan["payload_bytes"] = (
            sum(measured) if all(size is not None for size in measured) else None
        )
        if self.last_plan["payload_bytes"] is not None:
            _PAYLOAD_BYTES.inc(self.last_plan["payload_bytes"])

        # Per-subset table assembly: a subset's rows are the merged rows of
        # its shards, in shard order (bots: every bot shard; privacy: one
        # shard per technology).  Only complete subsets assemble (every
        # shard must have emitted its attribute codes), so a table is
        # either exactly what extraction would produce or absent.
        offsets: Dict[int, int] = {}
        offset = 0
        for result in results:
            offsets[result.index] = offset
            offset += result.columns.n_rows
        subsets: Dict[str, List[ShardResult]] = {}
        for result in results:
            key = result.kind if result.kind in ("bots", "real_users") else result.source
            subsets.setdefault(key, []).append(result)
        for key, group in subsets.items():
            payloads = [result.table for result in group]
            if not payloads or any(payload is None for payload in payloads):
                continue
            rows = np.concatenate(
                [
                    np.arange(
                        offsets[result.index],
                        offsets[result.index] + result.columns.n_rows,
                        dtype=np.int64,
                    )
                    for result in group
                ]
            )
            if not rows.size:
                continue
            part = merged.take(rows)
            corpus.columnar_tables[key] = assemble_table(
                payloads,
                request_ids=part.request_ids,
                timestamps=part.timestamps,
                cookie_columns=part.cookie_columns(),
                ip_columns=part.ip_columns(),
            )


def _shard_weight(spec: ShardSpec) -> int:
    """Rough request volume of a shard, for longest-first scheduling."""

    if spec.request_budget is not None:
        return spec.request_budget
    if spec.kind == "bots" and spec.profile is not None:
        return spec.profile.scaled_requests(spec.scale)
    return spec.num_requests


def build_corpus_sharded(
    *,
    seed: int = 7,
    scale: Optional[float] = None,
    include_real_users: bool = True,
    include_privacy: bool = False,
    real_user_requests: int = 2206,
    privacy_requests_each: int = 60,
    campaign_days: int = 90,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    generation: str = "vectorized",
) -> Corpus:
    """Build a corpus with the sharded engine (functional facade)."""

    engine = CorpusEngine(
        seed=seed,
        scale=scale,
        include_real_users=include_real_users,
        include_privacy=include_privacy,
        real_user_requests=real_user_requests,
        privacy_requests_each=privacy_requests_each,
        campaign_days=campaign_days,
        generation=generation,
    )
    return engine.build(workers=workers, executor=executor)


def build_or_load_corpus(
    *,
    seed: int = 7,
    scale: Optional[float] = None,
    include_real_users: bool = True,
    include_privacy: bool = False,
    real_user_requests: int = 2206,
    privacy_requests_each: int = 60,
    campaign_days: int = 90,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    cache=None,
    generation: str = "vectorized",
) -> Tuple[Corpus, str]:
    """Build a sharded corpus, or reuse a cached one.

    *cache* is a cache root path or a
    :class:`~repro.analysis.cache.CorpusCache`; ``None`` reads
    ``REPRO_CORPUS_CACHE``, ``False`` disables caching outright.  Returns
    ``(corpus, status)`` with status one of ``"hit"``, ``"miss"`` (built
    and stored) or ``"uncached"`` (no cache configured).  The generation
    engine is absent from the cache key on purpose: both engines produce
    byte-identical corpora, so they share cache entries.
    """

    from repro.analysis.cache import CorpusCache, corpus_cache_key, default_cache_dir

    engine = CorpusEngine(
        seed=seed,
        scale=scale,
        include_real_users=include_real_users,
        include_privacy=include_privacy,
        real_user_requests=real_user_requests,
        privacy_requests_each=privacy_requests_each,
        campaign_days=campaign_days,
        generation=generation,
    )
    if cache is None:
        cache = default_cache_dir()
    if cache is False:
        cache = None
    if cache is not None and not isinstance(cache, CorpusCache):
        cache = CorpusCache(cache)
    if cache is None:
        _CACHE_LOOKUPS.inc(status="uncached")
        return engine.build(workers=workers, executor=executor), "uncached"

    key = corpus_cache_key(
        seed=engine.seed,
        scale=engine.scale,
        include_real_users=engine.include_real_users,
        include_privacy=engine.include_privacy,
        real_user_requests=engine.real_user_requests,
        privacy_requests_each=engine.privacy_requests_each,
        campaign_days=engine.campaign_days,
    )
    cached = cache.load(key)
    if cached is not None:
        _CACHE_LOOKUPS.inc(status="hit")
        return cached, "hit"
    _CACHE_LOOKUPS.inc(status="miss")
    corpus = engine.build(workers=workers, executor=executor)
    try:
        cache.store(key, corpus)
    except Exception as exc:
        # Caching is an optimisation: a failed archive write (full disk,
        # permissions, an injected ``cache_write`` fault) must not take
        # down the build that just succeeded.  The staged entry is cleaned
        # up by ``store`` itself, so the cache never holds a torn archive.
        logging.getLogger("repro.analysis").warning(
            "corpus cache store failed (%s); continuing uncached", exc
        )
    return corpus, "miss"
