"""Corpus construction.

One honey-site corpus backs every analysis, table and figure.  This module
builds it: all 20 bot services (Table 1 volumes), the real-user share
(Section 7.4) and, optionally, the privacy-technology experiment
(Section 7.5), all driven by a single seed so results are reproducible.

The full-scale corpus is 507,080 bot requests; benchmarks default to a
scaled-down corpus (controlled by the ``REPRO_SCALE`` environment
variable, default 0.05 ≈ 25k requests) so the whole suite runs in minutes
on a laptop.  The scale only changes sampling noise, not behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bots.marketplace import build_marketplace
from repro.bots.service import BotServiceProfile
from repro.bots.traffic import BotTrafficGenerator
from repro.honeysite.site import HoneySite
from repro.honeysite.storage import RequestStore
from repro.users.privacy import PrivacyTechnology, PrivacyTrafficGenerator
from repro.users.realuser import REAL_USER_SOURCE, RealUserTrafficGenerator

#: Environment variable overriding the default corpus scale.
SCALE_ENV_VAR = "REPRO_SCALE"

#: Default corpus scale used by benchmarks when the variable is unset.
DEFAULT_SCALE = 0.05


def default_scale() -> float:
    """The corpus scale requested through ``REPRO_SCALE`` (default 0.05)."""

    raw = os.environ.get(SCALE_ENV_VAR)
    if not raw:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{SCALE_ENV_VAR} must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {value}")
    return value


@dataclass
class Corpus:
    """Everything one measurement campaign produced."""

    site: HoneySite
    scale: float
    seed: int
    bot_profiles: Tuple[BotServiceProfile, ...]
    #: per-service recorded request counts
    service_volumes: Dict[str, int] = field(default_factory=dict)
    real_user_requests: int = 0
    privacy_requests: Dict[PrivacyTechnology, int] = field(default_factory=dict)
    #: pre-extracted columnar fingerprint tables keyed by store subset
    #: ("bots", "real_users"), emitted by the vectorized generation engine
    #: (or restored from the corpus cache's ``columnar.npz`` sidecar);
    #: identical to extracting the matching store, so the detection
    #: pipeline can skip extraction outright.  Empty when the corpus was
    #: built by the legacy engine or loaded from a sidecar-less archive.
    columnar_tables: Dict[str, object] = field(default_factory=dict)

    @property
    def store(self) -> RequestStore:
        """Every recorded request."""

        return self.site.store

    @property
    def bot_store(self) -> RequestStore:
        """Requests attributed to the 20 bot services.

        Routed through :meth:`~repro.honeysite.storage.RequestStore.by_sources`
        so a columnar-backed store answers from its source codes without
        materialising record objects.
        """

        bot_names = {profile.name for profile in self.bot_profiles}
        return self.site.store.by_sources(bot_names)

    @property
    def real_user_store(self) -> RequestStore:
        """Requests recorded at the real-user URL."""

        return self.site.store.by_source(REAL_USER_SOURCE)

    def privacy_store(self, technology: PrivacyTechnology) -> RequestStore:
        """Requests recorded for one privacy technology."""

        return self.site.store.by_source(f"privacy:{technology.value}")


def build_corpus(
    *,
    seed: int = 7,
    scale: Optional[float] = None,
    include_real_users: bool = True,
    include_privacy: bool = False,
    real_user_requests: int = 2206,
    privacy_requests_each: int = 60,
    campaign_days: int = 90,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    cache=None,
    generation: str = "vectorized",
) -> Corpus:
    """Build the full measurement corpus.

    Parameters
    ----------
    seed:
        Master seed; every generator derives its stream from it.
    scale:
        Fraction of the paper's request volumes to generate (``None`` reads
        ``REPRO_SCALE`` / defaults to 0.05; pass 1.0 for the full 507,080
        requests).
    include_real_users / include_privacy:
        Whether to also generate the Section 7.4 and 7.5 traffic.
    workers / executor / cache:
        Parallelism and caching knobs.  When *workers* is given (or the
        ``REPRO_WORKERS`` environment variable is set), or a cache is
        configured (*cache* argument or ``REPRO_CORPUS_CACHE``), generation
        is delegated to the sharded engine
        (:mod:`repro.analysis.engine`): per-source shards with spawned
        seeds, fanned out over a ``"process"`` or ``"thread"`` executor,
        byte-identical for any worker count.  Otherwise this runs the
        legacy single-stream serial path, which reproduces the historical
        corpora bit for bit.
    """

    from repro.analysis import engine as _engine
    from repro.analysis.cache import default_cache_dir

    if workers is None:
        workers = _engine.default_workers()
    # cache=False means "no caching", not "engage the engine": only an
    # actual cache (argument or environment) or a worker request switches
    # away from the legacy serial path.
    cache_requested = cache is not None and cache is not False
    if workers is not None or cache_requested or (cache is None and default_cache_dir() is not None):
        corpus, _status = _engine.build_or_load_corpus(
            seed=seed,
            scale=scale,
            include_real_users=include_real_users,
            include_privacy=include_privacy,
            real_user_requests=real_user_requests,
            privacy_requests_each=privacy_requests_each,
            campaign_days=campaign_days,
            workers=workers,
            executor=executor,
            cache=cache,
            generation=generation,
        )
        return corpus

    return build_corpus_serial(
        seed=seed,
        scale=scale,
        include_real_users=include_real_users,
        include_privacy=include_privacy,
        real_user_requests=real_user_requests,
        privacy_requests_each=privacy_requests_each,
        campaign_days=campaign_days,
    )


def build_corpus_serial(
    *,
    seed: int = 7,
    scale: Optional[float] = None,
    include_real_users: bool = True,
    include_privacy: bool = False,
    real_user_requests: int = 2206,
    privacy_requests_each: int = 60,
    campaign_days: int = 90,
) -> Corpus:
    """The legacy single-process, single-stream corpus build.

    Every generator's stream is drawn sequentially from one master ``rng``,
    exactly as the original reproduction did, so historical corpora stay
    bit-reproducible.  The scaling benchmark uses this as its serial
    baseline; new code should go through :func:`build_corpus`.
    """

    if scale is None:
        scale = default_scale()
    if scale <= 0:
        raise ValueError("scale must be positive")

    rng = np.random.default_rng(seed)
    site = HoneySite(rng=np.random.default_rng(rng.integers(0, 2 ** 32)))
    profiles = build_marketplace()
    corpus = Corpus(site=site, scale=scale, seed=seed, bot_profiles=profiles)

    bot_generator = BotTrafficGenerator(site, rng=np.random.default_rng(rng.integers(0, 2 ** 32)))
    corpus.service_volumes = bot_generator.run_marketplace(
        profiles, scale=scale, campaign_days=campaign_days
    )

    if include_real_users:
        user_generator = RealUserTrafficGenerator(
            site, rng=np.random.default_rng(rng.integers(0, 2 ** 32))
        )
        corpus.real_user_requests = user_generator.run(num_requests=real_user_requests)

    if include_privacy:
        privacy_generator = PrivacyTrafficGenerator(
            site, rng=np.random.default_rng(rng.integers(0, 2 ** 32))
        )
        corpus.privacy_requests = privacy_generator.run_all(
            num_requests_each=privacy_requests_each
        )

    return corpus
