"""Memory-mapped loading of uncompressed ``.npz`` archives.

``np.load(path, mmap_mode="r")`` silently ignores the mmap request for
``.npz`` files — every member array is read into RAM — which defeats the
point of persisting a corpus larger than memory.  An ``.npz`` written by
:func:`numpy.savez` is just a ZIP archive of *stored* (uncompressed)
``.npy`` members, so each member's array data occupies one contiguous
byte range of the archive file.  :func:`load_npz_mapped` locates that
range for every member and hands it to :class:`numpy.memmap`, so the
archive's code columns stream from disk on demand and the OS page cache —
not the Python heap — decides what stays resident.

Compressed members (``np.savez_compressed``, or archives re-written by a
tool that deflates) cannot be mapped; :class:`NotMappableError` tells the
caller to fall back to an in-RAM load.  Anything structurally wrong with
the archive raises ``zipfile.BadZipFile`` / ``ValueError`` exactly like
``np.load`` would, so cache-eviction paths treat both loaders the same.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Dict

import numpy as np
from numpy.lib import format as npy_format

#: Fixed size of a ZIP local file header (before the variable-length
#: file name and extra field), per APPNOTE.TXT section 4.3.7.
_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"


class NotMappableError(ValueError):
    """The archive exists and is well-formed but cannot be memory-mapped
    (compressed members); load it into RAM instead."""


def _member_data_offset(handle, info: zipfile.ZipInfo) -> int:
    """File offset of *info*'s raw data, past its local header.

    The central directory's ``header_offset`` points at the member's
    *local* header, whose name/extra fields may differ in length from the
    central copies — so the local lengths must be read from the file.
    """

    handle.seek(info.header_offset)
    header = handle.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_HEADER_SIGNATURE:
        raise zipfile.BadZipFile(f"bad local file header for {info.filename!r}")
    name_length = int.from_bytes(header[26:28], "little")
    extra_length = int.from_bytes(header[28:30], "little")
    return info.header_offset + _LOCAL_HEADER_SIZE + name_length + extra_length


def load_npz_mapped(path) -> Dict[str, np.ndarray]:
    """Load every array of an uncompressed ``.npz`` as a read-only memmap.

    Returns ``{name: array}`` with the ``.npy`` suffixes stripped, like
    indexing an :class:`numpy.lib.npyio.NpzFile`.  Zero-dimensional and
    empty members are read eagerly (they are metadata-sized; ``np.memmap``
    rejects zero-length maps).  Raises :class:`NotMappableError` when any
    member is compressed, and never accepts pickled (object-dtype)
    members.
    """

    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            if not name.endswith(".npy"):
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                raise NotMappableError(
                    f"npz member {name!r} in {path} is compressed; "
                    "memory-mapping needs an uncompressed archive"
                )
            with archive.open(info) as member:
                version = npy_format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = npy_format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = npy_format.read_array_header_2_0(member)
                else:
                    raise ValueError(f"unsupported .npy version {version} in {name!r}")
                if dtype.hasobject:
                    raise ValueError(f"npz member {name!r} requires pickled objects")
                header_size = member.tell()
            key = name[: -len(".npy")]
            if 0 in shape:
                arrays[key] = np.empty(shape, dtype=dtype, order="F" if fortran else "C")
            elif shape == ():
                with archive.open(info) as member:
                    arrays[key] = npy_format.read_array(member, allow_pickle=False)
            else:
                with open(path, "rb") as handle:
                    data_offset = _member_data_offset(handle, info)
                arrays[key] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=data_offset + header_size,
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return arrays
