"""Attribute-importance analysis (Section 5.2, Table 2, Appendix C).

Trains one classifier per anti-bot service to distinguish requests the
service detected from requests that evaded it, reports the accuracies the
paper quotes, and ranks the fingerprint attributes that drive evasion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import LazyRequestStore, RecordColumns, RequestStore
from repro.ml.encoding import FingerprintEncoder
from repro.ml.explain import FeatureImportance, gain_importance, permutation_importance, top_features
from repro.ml.forest import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.metrics import accuracy_score, train_test_split


@dataclass
class EvasionClassifierResult:
    """Outcome of training one evasion classifier (one column of Table 2)."""

    detector: str
    train_accuracy: float
    test_accuracy: float
    importances: List[FeatureImportance]
    permutation: List[FeatureImportance]
    feature_names: List[str]

    def top_attributes(self, count: int = 5) -> List[str]:
        """The Table 2 column: most important attributes for evading the service."""

        return top_features(self.importances, count)


def train_evasion_classifier(
    store: RequestStore,
    detector: str,
    *,
    model: str = "forest",
    test_fraction: float = 0.1,
    max_samples: int = 60_000,
    seed: int = 0,
    encoder: Optional[FingerprintEncoder] = None,
) -> EvasionClassifierResult:
    """Train a detected-vs-evaded classifier for *detector* (Section 5.2.1).

    Parameters
    ----------
    model:
        ``"forest"`` (random forest, the paper's choice) or ``"boosting"``
        (gradient boosting, XGBoost-style).
    max_samples:
        Upper bound on the number of requests used (stratified subsample),
        keeping training time reasonable on the full-scale corpus.
    """

    if len(store) < 20:
        raise ValueError("need at least 20 requests to train a classifier")
    rng = np.random.default_rng(seed)
    if isinstance(store, LazyRequestStore):
        fingerprints, labels = _training_rows_from_columns(
            store.columns, detector, max_samples, rng
        )
    else:
        fingerprints, labels = _training_rows_from_records(
            store, detector, max_samples, rng
        )

    encoder = encoder if encoder is not None else FingerprintEncoder()
    features = encoder.fit_transform(fingerprints)
    train_x, test_x, train_y, test_y = train_test_split(
        features, labels, test_fraction=test_fraction, rng=rng
    )

    if model == "forest":
        classifier = RandomForestClassifier(n_estimators=15, max_depth=10, random_state=seed)
    elif model == "boosting":
        classifier = GradientBoostingClassifier(n_estimators=40, max_depth=5, random_state=seed)
    else:
        raise ValueError("model must be 'forest' or 'boosting'")
    classifier.fit(train_x, train_y)

    feature_names = encoder.feature_names
    return EvasionClassifierResult(
        detector=detector,
        train_accuracy=accuracy_score(train_y, classifier.predict(train_x)),
        test_accuracy=accuracy_score(test_y, classifier.predict(test_x)),
        importances=gain_importance(classifier, feature_names),
        permutation=permutation_importance(
            classifier, test_x, test_y, feature_names, rng=np.random.default_rng(seed)
        ),
        feature_names=feature_names,
    )


def _training_rows_from_records(
    store: RequestStore, detector: str, max_samples: int, rng
) -> Tuple[List[Fingerprint], np.ndarray]:
    """Object-path reference: subsample records, read fingerprint + label."""

    records = list(store)
    if len(records) > max_samples:
        indices = rng.choice(len(records), size=max_samples, replace=False)
        records = [records[int(index)] for index in indices]
    fingerprints = [record.request.fingerprint for record in records]
    labels = np.array(
        [1 if record.evaded(detector) else 0 for record in records], dtype=float
    )
    return fingerprints, labels


def _training_rows_from_columns(
    columns: RecordColumns, detector: str, max_samples: int, rng
) -> Tuple[List[Fingerprint], np.ndarray]:
    """Columnar path: identical subsample draw (same rng consumption),
    fingerprints gathered per *session* and labels from the evasion
    column — no record object is built."""

    n_rows = columns.n_rows
    if n_rows > max_samples:
        chosen = rng.choice(n_rows, size=max_samples, replace=False)
        chosen = chosen.astype(np.int64)
    else:
        chosen = np.arange(n_rows, dtype=np.int64)
    session_fingerprints = columns.session_fingerprints
    fingerprints = [
        session_fingerprints[code]
        for code in np.asarray(columns.session_codes)[chosen].tolist()
    ]
    labels = columns.evaded_rows(detector)[chosen].astype(float)
    return fingerprints, labels


def table2(
    store: RequestStore, *, top_k: int = 5, max_samples: int = 40_000, seed: int = 0
) -> Dict[str, List[str]]:
    """Table 2: the top-k attributes helping evade DataDome and BotD."""

    result = {}
    for detector in ("DataDome", "BotD"):
        outcome = train_evasion_classifier(
            store, detector, max_samples=max_samples, seed=seed
        )
        result[detector] = outcome.top_attributes(top_k)
    return result


@dataclass(frozen=True)
class CombinationRuleResult:
    """Appendix C: the DataDome-evading attribute combination."""

    matching_requests: int
    matching_datadome_evasion: float
    overall_datadome_evasion: float


def appendix_c_combination(store: RequestStore) -> CombinationRuleResult:
    """Evaluate the Appendix C combination rule on the corpus.

    The paper's decision-tree analysis found that requests with a screen
    frame below 20, no Chrome PDF Viewer plugin, more than 256 MB of
    memory, fewer than 14 cores and a monospace width above 131.5 were able
    to evade DataDome.
    """

    if isinstance(store, LazyRequestStore):
        return _appendix_c_from_columns(store)

    def matches(record) -> bool:
        frame = record.attribute(Attribute.SCREEN_FRAME)
        plugins = record.attribute(Attribute.PLUGINS) or ()
        memory = record.attribute(Attribute.DEVICE_MEMORY)
        cores = record.attribute(Attribute.HARDWARE_CONCURRENCY)
        monospace = record.attribute(Attribute.MONOSPACE_WIDTH)
        return (
            frame is not None
            and frame < 20
            and "Chrome PDF Viewer" not in plugins
            and memory is not None
            and memory > 0.25
            and cores is not None
            and cores < 14
            and monospace is not None
            and monospace > 131.5
        )

    matching = store.filter(matches)
    return CombinationRuleResult(
        matching_requests=len(matching),
        matching_datadome_evasion=matching.evasion_rate("DataDome"),
        overall_datadome_evasion=store.evasion_rate("DataDome"),
    )


def _appendix_c_from_columns(store: LazyRequestStore) -> CombinationRuleResult:
    """Columnar implementation of :func:`appendix_c_combination`: each
    conjunct is one per-distinct-value predicate gathered to a row mask."""

    columns = store.columns
    matches = np.ones(columns.n_rows, dtype=bool)
    for attribute, predicate in (
        (Attribute.SCREEN_FRAME, lambda value: value is not None and value < 20),
        (Attribute.PLUGINS, lambda value: "Chrome PDF Viewer" not in (value or ())),
        (Attribute.DEVICE_MEMORY, lambda value: value is not None and value > 0.25),
        (Attribute.HARDWARE_CONCURRENCY, lambda value: value is not None and value < 14),
        (Attribute.MONOSPACE_WIDTH, lambda value: value is not None and value > 131.5),
    ):
        rows, values = columns.attribute_rows(attribute)
        flags = np.fromiter(
            (bool(predicate(value)) for value in values),
            dtype=bool,
            count=len(values),
        )
        valid = rows >= 0
        row_flags = np.zeros(columns.n_rows, dtype=bool)
        row_flags[valid] = flags[rows[valid]]
        if predicate(None):
            row_flags[~valid] = True
        matches &= row_flags
    matching = int(np.count_nonzero(matches))
    matching_evaded = int(np.count_nonzero(matches & columns.evaded_rows("DataDome")))
    return CombinationRuleResult(
        matching_requests=matching,
        matching_datadome_evasion=(matching_evaded / matching) if matching else 0.0,
        overall_datadome_evasion=store.evasion_rate("DataDome"),
    )
