"""Privacy-technology evaluation (Section 7.5 and Appendix G)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.detector import FPInconsistent
from repro.honeysite.storage import RequestStore
from repro.users.privacy import PrivacyTechnology


@dataclass(frozen=True)
class PrivacyTechnologyResult:
    """How one privacy technology fares against the detectors and the rules."""

    technology: PrivacyTechnology
    requests: int
    datadome_detection_rate: float
    botd_detection_rate: float
    fp_inconsistent_rate: float
    fp_spatial_rate: float
    fp_temporal_rate: float


def evaluate_privacy_technologies(
    stores: Dict[PrivacyTechnology, RequestStore],
    detector: FPInconsistent,
    *,
    engine: str = "columnar",
    workers: int = 1,
    executor=None,
) -> Tuple[PrivacyTechnologyResult, ...]:
    """Run the fitted FP-Inconsistent detector over each technology's traffic.

    The paper's findings: Safari, uBlock Origin and AdBlock Plus trigger
    nothing; Brave triggers only temporal inconsistencies (it retains
    cookies while randomising attributes); Tor triggers spatial location
    inconsistencies on every request.  *engine* / *workers* / *executor*
    select the detection engine per store, as in
    :meth:`FPInconsistent.classify_store`.
    """

    results = []
    for technology, store in stores.items():
        if len(store) == 0:
            continue
        verdicts = detector.classify_store(
            store, engine=engine, workers=workers, executor=executor
        )
        total = len(store)
        spatial = temporal = combined = 0
        for verdict in verdicts.values():
            if verdict.spatially_inconsistent:
                spatial += 1
            if verdict.temporally_inconsistent:
                temporal += 1
            if verdict.is_inconsistent:
                combined += 1
        results.append(
            PrivacyTechnologyResult(
                technology=technology,
                requests=total,
                datadome_detection_rate=store.detection_rate("DataDome"),
                botd_detection_rate=store.detection_rate("BotD"),
                fp_inconsistent_rate=combined / total,
                fp_spatial_rate=spatial / total,
                fp_temporal_rate=temporal / total,
            )
        )
    return tuple(results)
