"""Privacy-technology evaluation (Section 7.5 and Appendix G)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent
from repro.honeysite.storage import RequestStore
from repro.users.privacy import PrivacyTechnology


@dataclass(frozen=True)
class PrivacyTechnologyResult:
    """How one privacy technology fares against the detectors and the rules."""

    technology: PrivacyTechnology
    requests: int
    datadome_detection_rate: float
    botd_detection_rate: float
    fp_inconsistent_rate: float
    fp_spatial_rate: float
    fp_temporal_rate: float


def corpus_privacy_tables(corpus) -> Dict[PrivacyTechnology, ColumnarTable]:
    """Pre-extracted privacy-technology tables a corpus carries.

    The vectorized corpus engine emits one ``privacy:<technology>`` table
    per generated technology (and the corpus cache persists them inside
    the columnar archive); feeding them to
    :func:`evaluate_privacy_technologies` skips per-store extraction.
    """

    tables: Dict[PrivacyTechnology, ColumnarTable] = {}
    for technology in PrivacyTechnology:
        table = corpus.columnar_tables.get(f"privacy:{technology.value}")
        if table is not None:
            tables[technology] = table
    return tables


def evaluate_privacy_technologies(
    stores: Dict[PrivacyTechnology, RequestStore],
    detector: FPInconsistent,
    *,
    engine: str = "columnar",
    workers: int = 1,
    executor=None,
    tables: Optional[Dict[PrivacyTechnology, ColumnarTable]] = None,
) -> Tuple[PrivacyTechnologyResult, ...]:
    """Run the fitted FP-Inconsistent detector over each technology's traffic.

    The paper's findings: Safari, uBlock Origin and AdBlock Plus trigger
    nothing; Brave triggers only temporal inconsistencies (it retains
    cookies while randomising attributes); Tor triggers spatial location
    inconsistencies on every request.  *engine* / *workers* / *executor*
    select the detection engine per store, as in
    :meth:`FPInconsistent.classify_store`.

    *tables* optionally maps technologies to pre-extracted
    :class:`~repro.core.columnar.ColumnarTable` instances (see
    :func:`corpus_privacy_tables`); a table is used only when it verifiably
    corresponds to its store and carries every attribute the detector
    reads, so results never depend on where it came from.
    """

    results = []
    for technology, store in stores.items():
        if len(store) == 0:
            continue
        table = None if tables is None else tables.get(technology)
        if (
            engine == "columnar"
            and table is not None
            and detector.accepts_table(table, store)
        ):
            verdicts = detector.classify_table(table, workers=workers, executor=executor)
        else:
            verdicts = detector.classify_store(
                store, engine=engine, workers=workers, executor=executor
            )
        total = len(store)
        spatial = temporal = combined = 0
        for verdict in verdicts.values():
            if verdict.spatially_inconsistent:
                spatial += 1
            if verdict.temporally_inconsistent:
                temporal += 1
            if verdict.is_inconsistent:
                combined += 1
        results.append(
            PrivacyTechnologyResult(
                technology=technology,
                requests=total,
                datadome_detection_rate=store.detection_rate("DataDome"),
                botd_detection_rate=store.detection_rate("BotD"),
                fp_inconsistent_rate=combined / total,
                fp_spatial_rate=spatial / total,
                fp_temporal_rate=temporal / total,
            )
        )
    return tuple(results)
