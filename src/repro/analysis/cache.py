"""Content-addressed on-disk corpus cache.

Benchmarks and CI used to regenerate the whole corpus from scratch every
session.  This module persists a built :class:`~repro.analysis.corpus.Corpus`
under a key derived from everything that determines its content — master
seed, scale, inclusion flags, request budgets, campaign length and the
on-disk format version — so an unchanged configuration is a cache hit and
any change (different seed, different scale, bumped format) is a rebuild.

Layout, one directory per key under the cache root.  A corpus built by
the columnar shard transport (the vectorized default) persists as **one**
columnar archive — record columns and every pre-extracted fingerprint
table in a single file::

    <root>/<key>/meta.json              corpus metadata + URL map + geo assignments
    <root>/<key>/store_columnar.npz     record columns + embedded fingerprint tables

A legacy-generation corpus (object store, no emitted tables) keeps the
version-2 layout, which also remains fully readable for old entries::

    <root>/<key>/meta.json
    <root>/<key>/store.jsonl.gz         the request store (versioned gzip JSONL)
    <root>/<key>/columnar_<subset>.npz  extracted ColumnarTable sidecars (optional)

Loading a columnar archive attaches a
:class:`~repro.honeysite.storage.LazyRequestStore`.  Since format v4 the
archive is pure code arrays over scalar decode lists (no serialised
objects) and is written uncompressed, so a warm hit memory-maps the
columns read-only (``REPRO_CORPUS_MMAP``, default on) instead of reading
them into RAM — and skips columnar extraction entirely (the embedded
tables are exactly what extraction would produce).  Version-2 (JSONL) and
version-3 (object-meta ``.npz``) archives stay readable.
In the legacy layout a missing, corrupt or incompatible sidecar silently
degrades to re-extraction; the corpus entry itself still hits.

Writes go through a temporary directory renamed into place, so a crashed
build never leaves a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro import faults, obs
from repro.analysis.corpus import Corpus
from repro.analysis.npzmap import NotMappableError, load_npz_mapped
from repro.bots.marketplace import build_marketplace
from repro.core.columnar import ColumnarTable
from repro.geo.geolite import GeoDatabase
from repro.geo.ipaddr import GeoRegion, IpAddressSpace, PrefixAssignment
from repro.honeysite.site import HoneySite
from repro.honeysite.storage import (
    CORPUS_FORMAT_VERSION,
    LazyRequestStore,
    RecordColumns,
    RequestStore,
    StoreFormatError,
)
from repro.users.privacy import PrivacyTechnology

#: Environment variable pointing at the cache root directory.  Unset means
#: caching is disabled.
CACHE_ENV_VAR = "REPRO_CORPUS_CACHE"

#: Environment variable toggling memory-mapped archive loading (default
#: on).  Set to ``0``/``false``/``no``/``off`` to force cached columnar
#: archives fully into RAM — the loaded corpus is byte-identical either
#: way; mapping only changes *when* column bytes leave the disk.
MMAP_ENV_VAR = "REPRO_CORPUS_MMAP"

#: Environment variable toggling deflate compression of the columnar
#: archive (default off).  Format v4 saves uncompressed so the archive is
#: memory-mappable; opt back into compression to trade mappability (the
#: loader falls back to an in-RAM load) for disk space.
COMPRESS_ENV_VAR = "REPRO_CORPUS_COMPRESS"

_FALSY = frozenset(("0", "false", "no", "off"))


#: Always-on so warm-path behaviour (mmap vs in-RAM) is queryable even
#: in untraced runs; lookups (hit/miss/uncached) are counted by the
#: engine's ``build_or_load_corpus``.
_CACHE_LOADS = obs.counter(
    "repro_corpus_cache_loads_total",
    "Columnar store archive loads by mode (mmap, ram).",
    always=True,
)


def default_cache_dir() -> Optional[Path]:
    """Cache root requested through ``REPRO_CORPUS_CACHE`` (``None`` if unset)."""

    raw = os.environ.get(CACHE_ENV_VAR)
    if not raw:
        return None
    return Path(raw).expanduser()


def mmap_enabled() -> bool:
    """Whether cached columnar archives should load memory-mapped."""

    return os.environ.get(MMAP_ENV_VAR, "1").strip().lower() not in _FALSY


def compress_enabled() -> bool:
    """Whether the columnar archive should be written deflate-compressed."""

    return os.environ.get(COMPRESS_ENV_VAR, "0").strip().lower() not in _FALSY


def corpus_cache_key(
    *,
    seed: int,
    scale: float,
    include_real_users: bool,
    include_privacy: bool,
    real_user_requests: int,
    privacy_requests_each: int,
    campaign_days: int,
    format_version: int = CORPUS_FORMAT_VERSION,
) -> str:
    """Content-address for one corpus configuration.

    Worker count and executor kind are deliberately absent: the sharded
    engine produces identical corpora for any parallelism, so they must
    share one cache entry.
    """

    payload = json.dumps(
        {
            "format_version": int(format_version),
            "seed": int(seed),
            "scale": float(scale),
            "include_real_users": bool(include_real_users),
            "include_privacy": bool(include_privacy),
            "real_user_requests": int(real_user_requests),
            "privacy_requests_each": int(privacy_requests_each),
            "campaign_days": int(campaign_days),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


#: Store subsets whose extracted tables are persisted alongside the JSONL
#: in the legacy (version-2) archive layout.
SIDECAR_SUBSETS = ("bots", "real_users")

#: Filename of the unified columnar archive (record columns + tables).
COLUMNAR_STORE_FILENAME = "store_columnar.npz"


def _sidecar_path(directory: Path, subset: str) -> Path:
    return directory / f"columnar_{subset}.npz"


def _columnar_store_path(directory: Path) -> Path:
    return directory / COLUMNAR_STORE_FILENAME


def _save_columnar_store(store: LazyRequestStore, tables: Dict[str, ColumnarTable], path: Path) -> None:
    """Persist record columns and every fingerprint table as one archive.

    Saved uncompressed by default: a stored (non-deflated) ``.npz`` keeps
    every array in one contiguous byte range of the file, which is what
    lets :func:`repro.analysis.npzmap.load_npz_mapped` hand the columns to
    ``np.memmap`` on a warm hit.  ``REPRO_CORPUS_COMPRESS`` opts back into
    deflate at the cost of mappability.

    The write is crash-safe: bytes land in a same-directory temporary
    file, are fsynced, and only then replace *path* atomically — a process
    killed mid-write leaves either the previous archive or no archive,
    never a truncated one.  The ``cache_write`` fault point fires between
    fsync and rename so the tamper test can model exactly that crash.
    """

    arrays, store_meta = store.columns.to_payload()
    tables_meta = []
    for position, (subset, table) in enumerate(sorted(tables.items())):
        prefix = f"t{position}_"
        table_arrays, table_meta = table.to_arrays(prefix)
        arrays.update(table_arrays)
        tables_meta.append({"subset": subset, "prefix": prefix, "meta": table_meta})
    meta = {"version": CORPUS_FORMAT_VERSION, "store": store_meta, "tables": tables_meta}
    arrays = {"meta": np.array(json.dumps(meta)), **arrays}
    savez = np.savez_compressed if compress_enabled() else np.savez
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        faults.check("cache_write", path.name, path=tmp)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_corpus(corpus: Corpus, directory) -> Path:
    """Write *corpus* (store + metadata + fingerprint tables) into *directory*.

    A columnar-backed store persists as one ``store_columnar.npz`` archive;
    an object store keeps the JSONL + sidecar layout.  Either way, files of
    the *other* layout left behind by a previous save into the same
    directory are removed — a stale store must never be loadable against a
    different corpus.
    """

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    columnar = isinstance(corpus.store, LazyRequestStore)
    if columnar:
        _save_columnar_store(
            corpus.store, corpus.columnar_tables, _columnar_store_path(directory)
        )
        stale = [directory / "store.jsonl.gz"]
        stale += [path for path in directory.glob("columnar_*.npz")]
    else:
        corpus.store.save_jsonl(directory / "store.jsonl.gz")
        for subset in SIDECAR_SUBSETS:
            table = corpus.columnar_tables.get(subset)
            path = _sidecar_path(directory, subset)
            if table is not None:
                table.save_npz(path)
            elif path.exists():
                path.unlink()
        stale = [_columnar_store_path(directory)]
    for path in stale:
        if path.exists():
            path.unlink()
    meta = {
        "format_version": CORPUS_FORMAT_VERSION,
        "seed": corpus.seed,
        "scale": corpus.scale,
        "service_volumes": dict(corpus.service_volumes),
        "real_user_requests": corpus.real_user_requests,
        "privacy_requests": {
            technology.value: count for technology, count in corpus.privacy_requests.items()
        },
        "sources": {
            source: corpus.site.urls.path_of(source) for source in corpus.site.urls.sources()
        },
        "assignments": [
            {
                "first_octet": assignment.first_octet,
                "second_octet": assignment.second_octet,
                "asn": assignment.asn,
                "country": assignment.region.country,
                "region": assignment.region.region,
                "timezone": assignment.region.timezone,
            }
            for assignment in corpus.site.geo.space.assignments
        ],
    }
    with (directory / "meta.json").open("w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1, sort_keys=True)
    return directory


def _decode_columnar(data, path: Path):
    """Decode a loaded archive mapping into ``(store, tables)``."""

    meta = json.loads(str(data["meta"][()]))
    version = int(meta.get("version", 0))
    if version > CORPUS_FORMAT_VERSION:
        raise StoreFormatError(
            f"columnar store {path} has format version {version}; "
            f"this build reads up to {CORPUS_FORMAT_VERSION}"
        )
    columns = RecordColumns.from_payload(data, meta["store"])
    tables: Dict[str, ColumnarTable] = {}
    for entry in meta.get("tables", ()):
        tables[str(entry["subset"])] = ColumnarTable.from_arrays(
            data,
            entry["meta"],
            prefix=str(entry["prefix"]),
            label=f"columnar store {path}",
        )
    return LazyRequestStore(columns), tables


def _load_columnar_store(path: Path):
    """Load a :func:`_save_columnar_store` archive.

    Returns ``(LazyRequestStore, {subset: ColumnarTable})``.  With mmap
    enabled (the default) the member arrays of an uncompressed archive are
    handed to ``np.memmap`` read-only — ``from_payload``/``from_arrays``
    adopt them zero-copy, so code columns stream from disk as they are
    touched and a corpus larger than RAM replays shard-by-shard.  A
    compressed archive falls back to an in-RAM ``np.load`` (whose
    ``mmap_mode="r"`` request is a no-op for ``.npz``) with identical
    results.

    Any failure — truncated file, ragged or out-of-range columns, a newer
    format — maps to :class:`StoreFormatError`, so the cache treats the
    entry as a miss and rebuilds instead of serving a silently wrong
    corpus.
    """

    try:
        if mmap_enabled():
            try:
                store = _decode_columnar(load_npz_mapped(path), path)
                _CACHE_LOADS.inc(mode="mmap")
                return store
            except NotMappableError:
                pass  # compressed archive: fall through to the in-RAM load
        with np.load(path, mmap_mode="r", allow_pickle=False) as data:
            store = _decode_columnar(data, path)
        _CACHE_LOADS.inc(mode="ram")
        return store
    except StoreFormatError:
        raise
    except Exception as exc:
        raise StoreFormatError(f"columnar store {path} is unreadable: {exc}") from exc


def _subset_store(corpus: Corpus, subset: str) -> Optional[RequestStore]:
    """The store subset a persisted table claims to describe."""

    if subset == "bots":
        return corpus.bot_store
    if subset == "real_users":
        return corpus.real_user_store
    if subset.startswith("privacy:"):
        try:
            return corpus.privacy_store(PrivacyTechnology(subset.split(":", 1)[1]))
        except ValueError:
            return None
    return None


def _attach_tables(corpus: Corpus, tables: Dict[str, ColumnarTable]) -> None:
    """Attach archive-embedded tables, verifying each against its subset.

    Store and tables come from one archive, so a mismatch (row count or
    request ids) means the archive is internally corrupt — raise, so the
    cache evicts and rebuilds.  Unknown subset labels are skipped: they
    cannot harm, and the version gate already rejects newer formats.
    """

    for subset, table in tables.items():
        store = _subset_store(corpus, subset)
        if store is None:
            continue
        if not table.matches_store(store):
            raise StoreFormatError(
                f"embedded columnar table {subset!r} does not match its store subset"
            )
        corpus.columnar_tables[subset] = table


def load_corpus(directory) -> Corpus:
    """Reconstruct a corpus saved by :func:`save_corpus`.

    Rebuilds the honey site around the persisted store: the URL registry
    carries the original source → path map and the geo database re-adopts
    every /16 assignment, so downstream analyses (IP intelligence, Table 6
    locations, DataDome re-evaluation) behave exactly as on the freshly
    built corpus.  Columnar archives restore a lazy store; version-2
    archives (JSONL + optional sidecars) load exactly as before.
    """

    directory = Path(directory)
    with (directory / "meta.json").open("r", encoding="utf-8") as handle:
        meta = json.load(handle)
    version = int(meta.get("format_version", 0))
    if version > CORPUS_FORMAT_VERSION:
        raise StoreFormatError(
            f"corpus archive {directory} has format version {version}; "
            f"this build reads up to {CORPUS_FORMAT_VERSION}"
        )

    space = IpAddressSpace()
    for entry in meta.get("assignments", ()):
        space.adopt(
            PrefixAssignment(
                first_octet=int(entry["first_octet"]),
                second_octet=int(entry["second_octet"]),
                asn=int(entry["asn"]),
                region=GeoRegion(
                    country=str(entry["country"]),
                    region=str(entry["region"]),
                    timezone=str(entry["timezone"]),
                ),
            )
        )
    site = HoneySite(geo=GeoDatabase(space), rng=np.random.default_rng(0))
    for source, path in meta.get("sources", {}).items():
        site.urls.adopt(source, path)
    columnar_path = _columnar_store_path(directory)
    tables: Optional[Dict[str, ColumnarTable]] = None
    if columnar_path.is_file():
        site.store, tables = _load_columnar_store(columnar_path)
    else:
        site.store.extend(RequestStore.load_jsonl(directory / "store.jsonl.gz"))

    corpus = Corpus(
        site=site,
        scale=float(meta["scale"]),
        seed=int(meta["seed"]),
        bot_profiles=build_marketplace(),
        service_volumes={
            str(name): int(count) for name, count in meta.get("service_volumes", {}).items()
        },
        real_user_requests=int(meta.get("real_user_requests", 0)),
        privacy_requests={
            PrivacyTechnology(name): int(count)
            for name, count in meta.get("privacy_requests", {}).items()
        },
    )
    if tables is not None:
        _attach_tables(corpus, tables)
    else:
        _load_sidecars(corpus, directory)
    return corpus


def _load_sidecars(corpus: Corpus, directory: Path) -> None:
    """Attach any valid ``columnar_*.npz`` sidecars to *corpus*.

    Sidecars are strictly optional: archives written before they existed,
    legacy-generation builds and corrupt/truncated files all degrade to an
    absent table (the pipeline re-extracts).  A loaded table must agree
    with its store subset's request ids *and timestamps* or it is
    discarded — request ids are renumbered 1..N and therefore collide
    across same-configuration corpora of different seeds, while the
    timestamp stream is seed-dependent, so the pair binds a sidecar to the
    corpus content it was extracted from.
    """

    for subset in SIDECAR_SUBSETS:
        path = _sidecar_path(directory, subset)
        if not path.is_file():
            continue
        try:
            table = ColumnarTable.load_npz(path)
        except Exception:
            continue
        store = corpus.bot_store if subset == "bots" else corpus.real_user_store
        if not table.matches_store(store):
            continue
        expected_timestamps = np.fromiter(
            (record.timestamp for record in store), dtype=np.float64, count=len(store)
        )
        if not np.array_equal(table.timestamps, expected_timestamps):
            continue
        corpus.columnar_tables[subset] = table


class CorpusCache:
    """Directory of content-addressed corpus archives."""

    def __init__(self, root):
        self.root = Path(root).expanduser()

    def path_for(self, key: str) -> Path:
        return self.root / key

    def has(self, key: str) -> bool:
        entry = self.path_for(key)
        if not (entry / "meta.json").is_file():
            return False
        return (
            _columnar_store_path(entry).is_file() or (entry / "store.jsonl.gz").is_file()
        )

    def load(self, key: str) -> Optional[Corpus]:
        """Load the corpus stored under *key*, or ``None`` on miss.

        A corrupt or format-incompatible entry counts as a miss and is
        evicted so the caller rebuilds it.
        """

        if not self.has(key):
            return None
        try:
            return load_corpus(self.path_for(key))
        except (StoreFormatError, KeyError, ValueError, json.JSONDecodeError, OSError):
            self.evict(key)
            return None

    def store(self, key: str, corpus: Corpus) -> Path:
        """Persist *corpus* under *key* (atomically) and return its path."""

        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        staging = Path(tempfile.mkdtemp(prefix=f".{key}.", dir=self.root))
        try:
            save_corpus(corpus, staging)
            if final.exists():
                shutil.rmtree(final)
            staging.rename(final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final

    def evict(self, key: str) -> None:
        """Remove the entry stored under *key* (no-op when absent)."""

        entry = self.path_for(key)
        if entry.exists():
            shutil.rmtree(entry)

    def keys(self) -> Dict[str, Path]:
        """Mapping of present cache keys to their directories.

        Dot-prefixed entries are in-flight (or orphaned) staging
        directories from :meth:`store`, never published keys; skip them.
        """

        if not self.root.is_dir():
            return {}
        return {
            entry.name: entry
            for entry in sorted(self.root.iterdir())
            if not entry.name.startswith(".") and (entry / "meta.json").is_file()
        }
