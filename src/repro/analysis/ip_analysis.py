"""IP address and ASN block-list analysis (Section 5.1).

Columnar-backed stores are answered from their first-occurrence IP code
column: the block-list lookup runs once per *distinct* address and the
evasion counts come from boolean gathers — zero record objects.  The
record-iterating path is the retained reference oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geo.asn import AsnBlocklist, IpBlocklist
from repro.geo.geolite import GeoDatabase, build_ip_blocklist
from repro.honeysite.storage import LazyRequestStore, RequestStore


def _blocked_analysis(store: LazyRequestStore, is_blocked):
    """(total, blocked, blocked DataDome evaded, blocked BotD evaded) row
    counts with *is_blocked* evaluated once per distinct address."""

    columns = store.columns
    ip_rows, ip_values = columns.ip_columns()
    blocked_values = np.fromiter(
        (bool(is_blocked(address)) for address in ip_values),
        dtype=bool,
        count=len(ip_values),
    )
    blocked = blocked_values[ip_rows] if ip_rows.size else np.zeros(0, dtype=bool)
    n_blocked = int(np.count_nonzero(blocked))
    datadome = int(np.count_nonzero(blocked & columns.evaded_rows("DataDome")))
    botd = int(np.count_nonzero(blocked & columns.evaded_rows("BotD")))
    return columns.n_rows, n_blocked, datadome, botd


@dataclass(frozen=True)
class AsnBlocklistAnalysis:
    """How much bot traffic comes from flagged ASNs, and whether flagged
    traffic still evades the anti-bot services."""

    total_requests: int
    flagged_requests: int
    flagged_fraction: float
    flagged_datadome_evasion: float
    flagged_botd_evasion: float


def analyze_asn_blocklist(
    store: RequestStore,
    geo: GeoDatabase,
    *,
    blocklist: Optional[AsnBlocklist] = None,
) -> AsnBlocklistAnalysis:
    """Reproduce the ASN part of Section 5.1.

    The paper found 82.54% of requests originated from flagged ASNs, among
    which 52.93% evaded DataDome and 43.17% evaded BotD.
    """

    blocklist = blocklist if blocklist is not None else AsnBlocklist()
    if isinstance(store, LazyRequestStore):
        total, flagged, datadome, botd = _blocked_analysis(
            store, lambda address: blocklist.is_blocked(geo.asn_of(address))
        )
        return AsnBlocklistAnalysis(
            total_requests=total,
            flagged_requests=flagged,
            flagged_fraction=flagged / total if total else 0.0,
            flagged_datadome_evasion=(datadome / flagged) if flagged else 0.0,
            flagged_botd_evasion=(botd / flagged) if flagged else 0.0,
        )
    flagged = store.filter(
        lambda record: blocklist.is_blocked(geo.asn_of(record.request.ip_address))
    )
    total = len(store)
    return AsnBlocklistAnalysis(
        total_requests=total,
        flagged_requests=len(flagged),
        flagged_fraction=len(flagged) / total if total else 0.0,
        flagged_datadome_evasion=flagged.evasion_rate("DataDome"),
        flagged_botd_evasion=flagged.evasion_rate("BotD"),
    )


@dataclass(frozen=True)
class IpBlocklistAnalysis:
    """Coverage of an IP-level block list and evasion among covered requests."""

    total_requests: int
    covered_requests: int
    coverage: float
    covered_datadome_evasion: float
    covered_botd_evasion: float


def analyze_ip_blocklist(
    store: RequestStore,
    *,
    blocklist: Optional[IpBlocklist] = None,
    coverage: float = 0.1586,
    seed: int = 0,
) -> IpBlocklistAnalysis:
    """Reproduce the minFraud part of Section 5.1.

    The real minFraud list is proprietary; by default a synthetic list
    covering the paper's measured 15.86% of distinct bot addresses is
    sampled, and the evasion rates among covered requests are computed from
    the corpus (the paper reports 48.1% DataDome / 68.85% BotD evasion).
    """

    if blocklist is None:
        if isinstance(store, LazyRequestStore):
            # The distinct-address set off the IP code column; the builder
            # sorts it, so the sampled list is identical to the object
            # path's set-comprehension draw.
            addresses = set(store.columns.ip_columns()[1])
        else:
            addresses = {record.request.ip_address for record in store}
        blocklist = build_ip_blocklist(addresses, np.random.default_rng(seed), coverage)
    if isinstance(store, LazyRequestStore):
        total, covered, datadome, botd = _blocked_analysis(
            store, blocklist.is_blocked
        )
        return IpBlocklistAnalysis(
            total_requests=total,
            covered_requests=covered,
            coverage=covered / total if total else 0.0,
            covered_datadome_evasion=(datadome / covered) if covered else 0.0,
            covered_botd_evasion=(botd / covered) if covered else 0.0,
        )
    covered = store.filter(lambda record: blocklist.is_blocked(record.request.ip_address))
    total = len(store)
    return IpBlocklistAnalysis(
        total_requests=total,
        covered_requests=len(covered),
        coverage=len(covered) / total if total else 0.0,
        covered_datadome_evasion=covered.evasion_rate("DataDome"),
        covered_botd_evasion=covered.evasion_rate("BotD"),
    )
