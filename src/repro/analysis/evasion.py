"""Evasion-rate analyses (Table 1, Sections 5.3.1–5.3.3).

Like the figure analyses, every function answers a columnar-backed store
(:class:`~repro.honeysite.storage.LazyRequestStore`) from its code arrays
without materialising a record object; the object-at-a-time path is the
retained reference oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.honeysite.storage import LazyRequestStore, RequestStore


@dataclass(frozen=True)
class ServiceEvasionRow:
    """One row of Table 1."""

    service: str
    num_requests: int
    datadome_evasion_rate: float
    botd_evasion_rate: float


def table1_rows(store: RequestStore, *, services: Optional[Sequence[str]] = None) -> Tuple[ServiceEvasionRow, ...]:
    """Per-service request volumes and evasion rates (Table 1).

    Rows are ordered by descending request count, like the paper.
    """

    if isinstance(store, LazyRequestStore):
        totals, datadome_evaded, botd_evaded = _table1_counts_from_columns(store)
    else:
        totals, datadome_evaded, botd_evaded = _table1_counts_from_records(store)
    if services is None:
        services = store.sources()
    rows = []
    for service in services:
        num_requests = totals.get(service, 0)
        if num_requests == 0:
            continue
        rows.append(
            ServiceEvasionRow(
                service=service,
                num_requests=num_requests,
                datadome_evasion_rate=datadome_evaded.get(service, 0) / num_requests,
                botd_evasion_rate=botd_evaded.get(service, 0) / num_requests,
            )
        )
    rows.sort(key=lambda row: row.num_requests, reverse=True)
    return tuple(rows)


def _table1_counts_from_records(
    store: RequestStore,
) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, int]]:
    """Object-path reference: one pass over the store instead of one
    filtered re-scan per service — identical integer counts, so the rates
    are bit-identical too."""

    totals: Dict[str, int] = {}
    datadome_evaded: Dict[str, int] = {}
    botd_evaded: Dict[str, int] = {}
    for record in store:
        source = record.source
        totals[source] = totals.get(source, 0) + 1
        if record.datadome.evaded:
            datadome_evaded[source] = datadome_evaded.get(source, 0) + 1
        if record.botd.evaded:
            botd_evaded[source] = botd_evaded.get(source, 0) + 1
    return totals, datadome_evaded, botd_evaded


def _table1_counts_from_columns(
    store: LazyRequestStore,
) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, int]]:
    """Columnar implementation: three bincounts over the source-code column."""

    columns = store.columns
    codes = columns.source_codes
    names = columns.sources
    counts = np.bincount(codes, minlength=len(names))
    datadome = np.bincount(
        codes[columns.evaded_rows("DataDome")], minlength=len(names)
    )
    botd = np.bincount(codes[columns.evaded_rows("BotD")], minlength=len(names))
    totals = {name: int(counts[code]) for code, name in enumerate(names) if counts[code]}
    datadome_evaded = {
        name: int(datadome[code]) for code, name in enumerate(names) if datadome[code]
    }
    botd_evaded = {
        name: int(botd[code]) for code, name in enumerate(names) if botd[code]
    }
    return totals, datadome_evaded, botd_evaded


def overall_detection_rates(store: RequestStore) -> Dict[str, float]:
    """Overall DataDome / BotD detection rates (the 55.44% / 47.07% numbers)."""

    return {
        "DataDome": store.detection_rate("DataDome"),
        "BotD": store.detection_rate("BotD"),
    }


def top_and_bottom_services(
    rows: Sequence[ServiceEvasionRow], detector: str, count: int = 3
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Service names with the highest / lowest evasion rate against *detector*.

    Reproduces the cohort selection of Sections 5.3.1 and 5.3.2 (e.g. S15,
    S18, S19 as the top BotD evaders).
    """

    if detector == "DataDome":
        def key(row):
            return row.datadome_evasion_rate
    elif detector == "BotD":
        def key(row):
            return row.botd_evasion_rate
    else:
        raise KeyError(f"unknown detector {detector!r}")
    ordered = sorted(rows, key=key)
    bottom = tuple(row.service for row in ordered[:count])
    top = tuple(row.service for row in ordered[-count:][::-1])
    return top, bottom


@dataclass(frozen=True)
class CohortComparison:
    """Attribute statistics for a high- vs low-evasion cohort (Section 5.3)."""

    detector: str
    top_services: Tuple[str, ...]
    bottom_services: Tuple[str, ...]
    top_requests: int
    bottom_requests: int
    top_evasion_rate: float
    bottom_evasion_rate: float
    #: fraction of cohort requests exposing at least one plugin
    top_with_plugins: float
    bottom_with_plugins: float
    #: fraction of cohort requests claiming touch support
    top_with_touch: float
    bottom_with_touch: float
    #: fraction of cohort requests reporting fewer than 8 CPU cores
    top_low_cores: float
    bottom_low_cores: float


def _attribute_fraction(store: RequestStore, attribute: Attribute, value_predicate) -> float:
    """Fraction of requests whose *attribute* value satisfies the predicate.

    A columnar-backed store evaluates the predicate once per distinct
    decoded value (plus once for ``None``, covering rows missing the
    attribute) and counts rows with a gather — integer counts, so the
    fraction is bit-identical to the record-iterating reference path.
    """

    if len(store) == 0:
        return 0.0
    if isinstance(store, LazyRequestStore):
        rows, values = store.columns.attribute_rows(attribute)
        flags = np.fromiter(
            (bool(value_predicate(value)) for value in values),
            dtype=bool,
            count=len(values),
        )
        valid = rows >= 0
        matches = int(np.count_nonzero(flags[rows[valid]]))
        if value_predicate(None):
            matches += int(np.count_nonzero(~valid))
        return matches / len(store)
    return (
        sum(1 for record in store if value_predicate(record.attribute(attribute)))
        / len(store)
    )


def _has_plugins_value(value) -> bool:
    return bool(value)


def _no_plugins_value(value) -> bool:
    return not value


def _has_touch_value(value) -> bool:
    return str(value) not in ("", "None")


def _low_cores_value(value) -> bool:
    return value is not None and int(value) < 8


def cohort_comparison(store: RequestStore, detector: str, *, count: int = 3) -> CohortComparison:
    """Compare the top/bottom evasion cohorts against *detector* (Section 5.3)."""

    rows = table1_rows(store)
    top, bottom = top_and_bottom_services(rows, detector, count=count)
    # by_sources keeps a columnar store columnar; for an object store it is
    # the same membership filter as before.
    top_store = store.by_sources(top)
    bottom_store = store.by_sources(bottom)
    return CohortComparison(
        detector=detector,
        top_services=top,
        bottom_services=bottom,
        top_requests=len(top_store),
        bottom_requests=len(bottom_store),
        top_evasion_rate=top_store.evasion_rate(detector),
        bottom_evasion_rate=bottom_store.evasion_rate(detector),
        top_with_plugins=_attribute_fraction(top_store, Attribute.PLUGINS, _has_plugins_value),
        bottom_with_plugins=_attribute_fraction(bottom_store, Attribute.PLUGINS, _has_plugins_value),
        top_with_touch=_attribute_fraction(top_store, Attribute.TOUCH_SUPPORT, _has_touch_value),
        bottom_with_touch=_attribute_fraction(bottom_store, Attribute.TOUCH_SUPPORT, _has_touch_value),
        top_low_cores=_attribute_fraction(top_store, Attribute.HARDWARE_CONCURRENCY, _low_cores_value),
        bottom_low_cores=_attribute_fraction(bottom_store, Attribute.HARDWARE_CONCURRENCY, _low_cores_value),
    )


@dataclass(frozen=True)
class DualEvaderSummary:
    """Section 5.3.3: services with >80% evasion against both detectors."""

    services: Tuple[str, ...]
    num_requests: int
    datadome_evasion_rate: float
    botd_evasion_rate: float
    low_cores_fraction: float
    no_plugins_fraction: float
    touch_support_fraction: float


def dual_evader_summary(store: RequestStore, *, threshold: float = 0.8) -> DualEvaderSummary:
    """Characterise the services evading both DataDome and BotD."""

    rows = table1_rows(store)
    services = tuple(
        row.service
        for row in rows
        if row.datadome_evasion_rate > threshold and row.botd_evasion_rate > threshold
    )
    cohort = store.by_sources(services)
    return DualEvaderSummary(
        services=services,
        num_requests=len(cohort),
        datadome_evasion_rate=cohort.evasion_rate("DataDome"),
        botd_evasion_rate=cohort.evasion_rate("BotD"),
        low_cores_fraction=_attribute_fraction(cohort, Attribute.HARDWARE_CONCURRENCY, _low_cores_value),
        no_plugins_fraction=_attribute_fraction(cohort, Attribute.PLUGINS, _no_plugins_value),
        touch_support_fraction=_attribute_fraction(cohort, Attribute.TOUCH_SUPPORT, _has_touch_value),
    )
