"""Evasion-rate analyses (Table 1, Sections 5.3.1–5.3.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.fingerprint.attributes import Attribute
from repro.honeysite.storage import RequestStore


@dataclass(frozen=True)
class ServiceEvasionRow:
    """One row of Table 1."""

    service: str
    num_requests: int
    datadome_evasion_rate: float
    botd_evasion_rate: float


def table1_rows(store: RequestStore, *, services: Optional[Sequence[str]] = None) -> Tuple[ServiceEvasionRow, ...]:
    """Per-service request volumes and evasion rates (Table 1).

    Rows are ordered by descending request count, like the paper.
    """

    # One pass over the store instead of one filtered re-scan per service:
    # identical integer counts, so the rates are bit-identical too.
    totals: Dict[str, int] = {}
    datadome_evaded: Dict[str, int] = {}
    botd_evaded: Dict[str, int] = {}
    for record in store:
        source = record.source
        totals[source] = totals.get(source, 0) + 1
        if record.datadome.evaded:
            datadome_evaded[source] = datadome_evaded.get(source, 0) + 1
        if record.botd.evaded:
            botd_evaded[source] = botd_evaded.get(source, 0) + 1
    if services is None:
        services = store.sources()
    rows = []
    for service in services:
        num_requests = totals.get(service, 0)
        if num_requests == 0:
            continue
        rows.append(
            ServiceEvasionRow(
                service=service,
                num_requests=num_requests,
                datadome_evasion_rate=datadome_evaded.get(service, 0) / num_requests,
                botd_evasion_rate=botd_evaded.get(service, 0) / num_requests,
            )
        )
    rows.sort(key=lambda row: row.num_requests, reverse=True)
    return tuple(rows)


def overall_detection_rates(store: RequestStore) -> Dict[str, float]:
    """Overall DataDome / BotD detection rates (the 55.44% / 47.07% numbers)."""

    return {
        "DataDome": store.detection_rate("DataDome"),
        "BotD": store.detection_rate("BotD"),
    }


def top_and_bottom_services(
    rows: Sequence[ServiceEvasionRow], detector: str, count: int = 3
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Service names with the highest / lowest evasion rate against *detector*.

    Reproduces the cohort selection of Sections 5.3.1 and 5.3.2 (e.g. S15,
    S18, S19 as the top BotD evaders).
    """

    if detector == "DataDome":
        def key(row):
            return row.datadome_evasion_rate
    elif detector == "BotD":
        def key(row):
            return row.botd_evasion_rate
    else:
        raise KeyError(f"unknown detector {detector!r}")
    ordered = sorted(rows, key=key)
    bottom = tuple(row.service for row in ordered[:count])
    top = tuple(row.service for row in ordered[-count:][::-1])
    return top, bottom


@dataclass(frozen=True)
class CohortComparison:
    """Attribute statistics for a high- vs low-evasion cohort (Section 5.3)."""

    detector: str
    top_services: Tuple[str, ...]
    bottom_services: Tuple[str, ...]
    top_requests: int
    bottom_requests: int
    top_evasion_rate: float
    bottom_evasion_rate: float
    #: fraction of cohort requests exposing at least one plugin
    top_with_plugins: float
    bottom_with_plugins: float
    #: fraction of cohort requests claiming touch support
    top_with_touch: float
    bottom_with_touch: float
    #: fraction of cohort requests reporting fewer than 8 CPU cores
    top_low_cores: float
    bottom_low_cores: float


def _fraction(store: RequestStore, predicate) -> float:
    if len(store) == 0:
        return 0.0
    return sum(1 for record in store if predicate(record)) / len(store)


def _has_plugins(record) -> bool:
    return bool(record.attribute(Attribute.PLUGINS))


def _has_touch(record) -> bool:
    return str(record.attribute(Attribute.TOUCH_SUPPORT)) not in ("", "None", "None")


def _low_cores(record) -> bool:
    cores = record.attribute(Attribute.HARDWARE_CONCURRENCY)
    return cores is not None and int(cores) < 8


def cohort_comparison(store: RequestStore, detector: str, *, count: int = 3) -> CohortComparison:
    """Compare the top/bottom evasion cohorts against *detector* (Section 5.3)."""

    rows = table1_rows(store)
    top, bottom = top_and_bottom_services(rows, detector, count=count)
    top_store = store.filter(lambda record: record.source in top)
    bottom_store = store.filter(lambda record: record.source in bottom)
    return CohortComparison(
        detector=detector,
        top_services=top,
        bottom_services=bottom,
        top_requests=len(top_store),
        bottom_requests=len(bottom_store),
        top_evasion_rate=top_store.evasion_rate(detector),
        bottom_evasion_rate=bottom_store.evasion_rate(detector),
        top_with_plugins=_fraction(top_store, _has_plugins),
        bottom_with_plugins=_fraction(bottom_store, _has_plugins),
        top_with_touch=_fraction(top_store, _has_touch),
        bottom_with_touch=_fraction(bottom_store, _has_touch),
        top_low_cores=_fraction(top_store, _low_cores),
        bottom_low_cores=_fraction(bottom_store, _low_cores),
    )


@dataclass(frozen=True)
class DualEvaderSummary:
    """Section 5.3.3: services with >80% evasion against both detectors."""

    services: Tuple[str, ...]
    num_requests: int
    datadome_evasion_rate: float
    botd_evasion_rate: float
    low_cores_fraction: float
    no_plugins_fraction: float
    touch_support_fraction: float


def dual_evader_summary(store: RequestStore, *, threshold: float = 0.8) -> DualEvaderSummary:
    """Characterise the services evading both DataDome and BotD."""

    rows = table1_rows(store)
    services = tuple(
        row.service
        for row in rows
        if row.datadome_evasion_rate > threshold and row.botd_evasion_rate > threshold
    )
    cohort = store.filter(lambda record: record.source in services)
    return DualEvaderSummary(
        services=services,
        num_requests=len(cohort),
        datadome_evasion_rate=cohort.evasion_rate("DataDome"),
        botd_evasion_rate=cohort.evasion_rate("BotD"),
        low_cores_fraction=_fraction(cohort, _low_cores),
        no_plugins_fraction=_fraction(cohort, lambda record: not _has_plugins(record)),
        touch_support_fraction=_fraction(cohort, _has_touch),
    )
