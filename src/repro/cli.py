"""The ``repro`` command line interface.

Six subcommands cover the reproduction workflow end to end::

    repro corpus    build (or load from cache) a measurement corpus
    repro pipeline  build a corpus and run the FP-Inconsistent evaluation
    repro report    regenerate every paper table and figure from a corpus
    repro stream    replay a corpus through the online streaming detector
    repro serve     replay a corpus through the parallel detection gateway
    repro bench     measure serial vs. sharded corpus-build throughput

Installed as a console script by ``setup.py``; also runnable without
installing via ``PYTHONPATH=src python -m repro ...``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro import obs
from repro.analysis.cache import CACHE_ENV_VAR
from repro.analysis.corpus import Corpus, build_corpus_serial, default_scale
from repro.analysis.engine import (
    EXECUTOR_ENV_VAR,
    GENERATIONS,
    WORKERS_ENV_VAR,
    CorpusEngine,
    build_or_load_corpus,
    default_executor,
    default_workers,
)


def _add_execution_knobs(parser: argparse.ArgumentParser, *, lists: bool = False) -> None:
    """The seed/scale/workers/executor knob set every subcommand shares.

    ``corpus``/``pipeline``/``stream`` take one scale and one worker count;
    ``bench`` (*lists*) sweeps comma-separated value lists instead.  One
    definition keeps defaults, env-variable fallbacks and help text
    identical everywhere.
    """

    group = parser.add_argument_group("execution")
    group.add_argument("--seed", type=int, default=7, help="master seed (default 7)")
    if lists:
        group.add_argument(
            "--scales",
            type=_parse_float_list,
            default=[0.01, 0.05],
            help="comma-separated corpus scales (default 0.01,0.05)",
        )
        group.add_argument(
            "--workers-list",
            type=_parse_int_list,
            default=[1, 4],
            help="comma-separated worker counts (default 1,4)",
        )
    else:
        group.add_argument(
            "--scale",
            type=float,
            default=None,
            help="fraction of the paper's volumes (default: REPRO_SCALE or 0.05; 1.0 = 507,080 requests)",
        )
        group.add_argument(
            "--workers",
            type=int,
            default=None,
            help=f"shard worker count (default: {WORKERS_ENV_VAR} or 1)",
        )
    group.add_argument(
        "--executor",
        choices=("process", "thread"),
        default=None,
        help=f"pool kind for workers > 1 (default: {EXECUTOR_ENV_VAR} or process)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--trace``/``--metrics-out`` exporter knobs every subcommand shares.

    Either flag enables telemetry for the whole run — including
    process-pool shard workers, which inherit ``REPRO_TELEMETRY``
    through the environment and ship their spans back to the
    coordinator's tracer.
    """

    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the run's spans as Chrome trace-event JSON to PATH "
        "(open in chrome://tracing or Perfetto); implies REPRO_TELEMETRY=1",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics in Prometheus text format to PATH; "
        "implies REPRO_TELEMETRY=1",
    )


def _write_telemetry_artifacts(args: argparse.Namespace) -> None:
    """Export the trace/metrics files a run asked for (after dispatch)."""

    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.write_chrome_trace(trace_path)
        print(f"telemetry: wrote trace {trace_path}", file=sys.stderr)
    metrics_path = getattr(args, "metrics_out", None)
    if metrics_path:
        obs.write_prometheus(metrics_path)
        print(f"telemetry: wrote metrics {metrics_path}", file=sys.stderr)


def _attach_telemetry(document: dict) -> None:
    """Embed the metrics snapshot in a ``--json`` document when enabled."""

    if obs.telemetry_enabled():
        document["telemetry"] = obs.metrics_snapshot()


_ABSENT = object()


def _validate_execution_knobs(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject bad execution knobs up front with a usage error.

    Covers the command-line flags and the environment fallbacks they
    default to (``REPRO_WORKERS`` / ``REPRO_EXECUTOR`` / ``REPRO_SCALE``),
    so a typo'd knob fails before minutes of corpus generation start.
    Knobs a subcommand does not define are skipped, so one validator
    serves the single-value and list-sweep (``bench``) forms alike.
    """

    if getattr(args, "seed", _ABSENT) is not _ABSENT and args.seed < 0:
        parser.error(f"--seed must be non-negative, got {args.seed}")
    workers = getattr(args, "workers", _ABSENT)
    if workers is not _ABSENT and workers is not None and workers < 1:
        parser.error(f"--workers must be >= 1, got {workers}")
    scale = getattr(args, "scale", _ABSENT)
    if scale is not _ABSENT and scale is not None and scale <= 0:
        parser.error(f"--scale must be positive, got {scale}")
    try:
        if workers is None:
            default_workers()
        if getattr(args, "executor", _ABSENT) is None:
            default_executor()
        if scale is None:
            default_scale()
    except ValueError as exc:
        parser.error(str(exc))


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    _add_execution_knobs(parser)
    _add_telemetry_arguments(parser)
    group = parser.add_argument_group("corpus")
    group.add_argument(
        "--generation",
        choices=GENERATIONS,
        default="vectorized",
        help="generation engine: vectorized batch sampling (default) or the "
        "object-at-a-time legacy reference; corpora are byte-identical",
    )
    group.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help=f"corpus cache directory (default: {CACHE_ENV_VAR}; see also --no-cache)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the corpus cache even when configured",
    )
    group.add_argument(
        "--no-real-users",
        action="store_true",
        help="skip the Section 7.4 real-user traffic",
    )
    group.add_argument(
        "--include-privacy",
        action="store_true",
        help="also generate the Section 7.5 privacy-technology traffic",
    )
    group.add_argument(
        "--real-user-requests", type=int, default=2206, help="real-user volume (default 2206)"
    )
    group.add_argument(
        "--privacy-requests", type=int, default=60, help="requests per privacy technology (default 60)"
    )
    group.add_argument(
        "--campaign-days", type=int, default=90, help="campaign length in days (default 90)"
    )


def _add_checkpoint_arguments(group) -> None:
    """The checkpoint/restore knobs shared by ``stream`` and ``serve``."""

    group.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot the full online state (vocabulary, temporal state, "
        "filter list, cursor, verdicts) crash-safely into DIR at periodic "
        "batch boundaries",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="BATCHES",
        help="batches between snapshots (default 16; needs --checkpoint-dir)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="restore the snapshot in --checkpoint-dir and continue the "
        "replay from its cursor; the combined run is byte-identical to an "
        "uninterrupted one",
    )
    group.add_argument(
        "--max-batches",
        type=int,
        default=None,
        metavar="N",
        help="stop after scoring N batches this run (deterministic stand-in "
        "for a mid-replay kill; pair with --checkpoint-dir, then --resume)",
    )


def _checkpointer_from_args(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """Validate the checkpoint knobs and build the checkpointer (or None)."""

    from repro.stream import StreamCheckpointer

    if args.checkpoint_every < 1:
        parser.error(f"--checkpoint-every must be >= 1, got {args.checkpoint_every}")
    if args.max_batches is not None and args.max_batches < 0:
        parser.error(f"--max-batches cannot be negative, got {args.max_batches}")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume needs --checkpoint-dir (there is nothing to restore)")
    if args.verify_batch and args.max_batches is not None:
        parser.error(
            "--verify-batch compares a full replay against the batch pipeline; "
            "drop --max-batches (a truncated replay cannot match)"
        )
    if args.checkpoint_dir is None:
        return None
    return StreamCheckpointer(args.checkpoint_dir, every_batches=args.checkpoint_every)


def _validate_corpus_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Validate the shared execution knobs plus the corpus-only flags."""

    _validate_execution_knobs(parser, args)
    if args.real_user_requests < 0:
        parser.error(f"--real-user-requests cannot be negative, got {args.real_user_requests}")
    if args.privacy_requests < 0:
        parser.error(f"--privacy-requests cannot be negative, got {args.privacy_requests}")
    if args.campaign_days < 1:
        parser.error(f"--campaign-days must be >= 1, got {args.campaign_days}")


def _build_from_args(args: argparse.Namespace) -> Corpus:
    if args.no_cache:
        cache = False
    elif args.cache:
        cache = args.cache
    else:
        cache = None  # build_or_load_corpus falls back to REPRO_CORPUS_CACHE
    started = time.perf_counter()
    corpus, status = build_or_load_corpus(
        seed=args.seed,
        scale=args.scale,
        include_real_users=not args.no_real_users,
        include_privacy=args.include_privacy,
        real_user_requests=args.real_user_requests,
        privacy_requests_each=args.privacy_requests,
        campaign_days=args.campaign_days,
        workers=args.workers,
        executor=args.executor,
        cache=cache,
        generation=args.generation,
    )
    elapsed = time.perf_counter() - started
    label = {"hit": "cache hit", "miss": "cache miss (stored)", "uncached": "uncached build"}[status]
    print(f"corpus: {label} in {elapsed:.2f}s — {len(corpus.store)} records", file=sys.stderr)
    return corpus


def _cmd_corpus(args: argparse.Namespace) -> int:
    _validate_corpus_args(args.parser, args)
    corpus = _build_from_args(args)
    summary = {
        "seed": corpus.seed,
        "scale": corpus.scale,
        "records": len(corpus.store),
        "bot_requests": sum(corpus.service_volumes.values()),
        "real_user_requests": corpus.real_user_requests,
        "privacy_requests": {
            str(technology): count for technology, count in corpus.privacy_requests.items()
        },
        "unique_ips": corpus.store.unique_ips(),
        "unique_cookies": corpus.store.unique_cookies(),
        "sources": len(corpus.service_volumes)
        + (1 if corpus.real_user_requests else 0)
        + len(corpus.privacy_requests),
    }
    if args.out:
        corpus.store.save_jsonl(args.out)
        summary["saved_to"] = str(args.out)
    _attach_telemetry(summary)
    json.dump(summary, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.core.pipeline import FPInconsistentPipeline

    _validate_corpus_args(args.parser, args)
    corpus = _build_from_args(args)
    started = time.perf_counter()
    pipeline = FPInconsistentPipeline(
        engine=args.engine, workers=args.workers, executor=args.executor
    )
    result = pipeline.run(
        corpus.bot_store,
        real_user_store=corpus.real_user_store if not args.no_real_users else None,
        check_generalization=args.generalization,
        bot_table=corpus.columnar_tables.get("bots"),
        real_user_table=corpus.columnar_tables.get("real_users"),
    )
    elapsed = time.perf_counter() - started
    print(
        f"pipeline: evaluated in {elapsed:.2f}s ({args.engine} engine, "
        f"{args.workers or default_workers() or 1} worker(s))",
        file=sys.stderr,
    )
    if result.table_sources.get("bots") == "reused":
        print(
            "pipeline: columnar extraction skipped (pre-extracted tables reused)",
            file=sys.stderr,
        )

    summary = {
        "engine": args.engine,
        "rules": len(result.filter_list),
        "table_sources": dict(result.table_sources),
        "evasion_reduction": {
            name: round(value, 4) for name, value in result.evasion_reductions.items()
        },
        "real_user_tnr": None
        if result.real_user_tnr is None
        else round(result.real_user_tnr, 4),
    }
    if result.generalization is not None:
        summary["generalization"] = {
            name: round(entry.test_detection_rate, 4)
            for name, entry in result.generalization.items()
        }
    if args.json:
        document = dict(summary)
        document["seconds"] = round(elapsed, 3)
        document["filter_list"] = [rule.to_dict() for rule in result.filter_list]
        document["table3"] = [
            {
                "service": row.service,
                "num_requests": row.num_requests,
                "datadome_baseline": round(row.datadome_baseline, 4),
                "datadome_improved": round(row.datadome_improved, 4),
                "botd_baseline": round(row.botd_baseline, 4),
                "botd_improved": round(row.botd_improved, 4),
            }
            for row in result.table3
        ]
        document["table4"] = {
            name: {
                "baseline": round(rates.baseline, 4),
                "with_spatial": round(rates.with_spatial, 4),
                "with_temporal": round(rates.with_temporal, 4),
                "with_combined": round(rates.with_combined, 4),
            }
            for name, rates in result.table4.items()
        }
        _attach_telemetry(document)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        summary["saved_to"] = str(args.json)
        print(f"pipeline: wrote {args.json}", file=sys.stderr)
    json.dump(summary, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.cache import corpus_cache_key
    from repro.analysis.report import generate_report, report_section_keys

    parser = args.parser
    _validate_corpus_args(parser, args)
    if args.ml_samples < 20:
        parser.error(f"--ml-samples must be >= 20, got {args.ml_samples}")
    sections = None
    if args.sections:
        sections = [part.strip() for part in args.sections.split(",") if part.strip()]
        unknown = sorted(set(sections) - set(report_section_keys()))
        if unknown:
            parser.error(
                f"unknown report section(s): {', '.join(unknown)}; "
                f"known: {', '.join(report_section_keys())}"
            )

    corpus = _build_from_args(args)
    cache_key = corpus_cache_key(
        seed=args.seed,
        scale=args.scale if args.scale is not None else default_scale(),
        include_real_users=not args.no_real_users,
        include_privacy=args.include_privacy,
        real_user_requests=args.real_user_requests,
        privacy_requests_each=args.privacy_requests,
        campaign_days=args.campaign_days,
    )
    report = generate_report(
        corpus,
        engine=args.engine,
        ml_samples=args.ml_samples,
        sections=sections,
        cache_key=cache_key,
    )
    print(report.render())
    print(
        f"report: {len(report.sections)} section(s) in {report.total_seconds:.2f}s "
        f"({args.engine} engine, {report.materialized_records} record object(s) "
        "materialised)",
        file=sys.stderr,
    )
    for section in report.sections:
        print(
            f"report:   {section.key}: {section.seconds:.3f}s [{section.digest}]",
            file=sys.stderr,
        )
    if args.json:
        document = report.to_document()
        _attach_telemetry(document)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True, default=str)
            handle.write("\n")
        print(f"report: wrote {args.json}", file=sys.stderr)
    if args.check_materialization and report.materialized_records:
        print(
            f"report: FAIL — {report.materialized_records} record object(s) "
            f"materialised on the {args.engine} engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _mine_initial_filter_list(args: argparse.Namespace, corpus: Corpus, label: str):
    """Mine the initial filter list exactly as the batch pipeline would.

    Shared by ``stream`` and ``serve``: resolves the corpus's
    pre-extracted bot table when it is acceptable, fits the detector
    under a telemetry span, and prints the one-line mining report.
    Returns ``(detector, table, table_source)``.
    """

    from repro.core.detector import FPInconsistent

    workers = args.workers or default_workers() or 1
    detector = FPInconsistent()
    with obs.tracer().span(f"{label}.mine_filter_list", workers=workers) as span:
        table, table_source = detector.resolve_table(
            corpus.bot_store, corpus.columnar_tables.get("bots")
        )
        detector.fit_table(table, workers=workers, executor=args.executor)
        span.set(rules=len(detector.filter_list), table=table_source)
    print(
        f"{label}: filter list mined in {span.duration:.2f}s "
        f"({len(detector.filter_list)} rules, table {table_source})",
        file=sys.stderr,
    )
    return detector, table, table_source


def _print_latency_quantiles(result, label: str) -> dict:
    """Report per-batch latency quantiles on stderr; return them in ms."""

    quantiles = result.latency_quantiles_ms()
    print(
        f"{label}: batch latency "
        + " ".join(
            f"{name[:name.index('_')]}={value:.2f}ms"
            for name, value in sorted(quantiles.items())
        ),
        file=sys.stderr,
    )
    return quantiles


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        DEFAULT_BATCH_SIZE,
        FilterListRefresher,
        ReplayDriver,
        verdicts_digest,
    )

    parser = args.parser
    _validate_corpus_args(parser, args)
    batch_size = DEFAULT_BATCH_SIZE if args.batch_size is None else args.batch_size
    if batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {batch_size}")
    if args.refresh_every < 0:
        parser.error(f"--refresh-every cannot be negative, got {args.refresh_every}")
    if args.window < 1:
        parser.error(f"--window must be >= 1, got {args.window}")
    if args.verify_batch and args.refresh_every:
        parser.error(
            "--verify-batch compares against the batch pipeline, which has no "
            "refresh; drop --refresh-every (the oracle needs a frozen filter list)"
        )
    checkpointer = _checkpointer_from_args(parser, args)

    corpus = _build_from_args(args)
    workers = args.workers or default_workers() or 1
    bot_store = corpus.bot_store
    detector, table, table_source = _mine_initial_filter_list(args, corpus, "stream")

    refresher = None
    if args.refresh_every:
        refresher = FilterListRefresher(
            detector.miner,
            interval_batches=args.refresh_every,
            window_rows=args.window,
            workers=workers,
            executor=args.executor,
        )
    driver = ReplayDriver(detector, batch_size=batch_size, refresher=refresher)
    result = driver.replay(
        bot_store,
        checkpointer=checkpointer,
        resume=args.resume,
        max_batches=args.max_batches,
    )
    print(
        f"stream: replayed {result.rows} rows in {result.seconds:.2f}s "
        f"({result.rows_per_second:.0f} rows/s, {result.batches} batch(es) of "
        f"{batch_size}, {len(result.refreshes)} refresh(es))",
        file=sys.stderr,
    )
    quantiles = _print_latency_quantiles(result, "stream")
    if checkpointer is not None:
        resumed = (
            "fresh start"
            if result.resumed_from_batch is None
            else f"resumed from batch {result.resumed_from_batch}"
        )
        print(
            f"stream: {resumed}, {result.checkpoints_saved} checkpoint(s) saved, "
            f"{result.checkpoint_failures} failed",
            file=sys.stderr,
        )

    # One serialisation pass covers both the oracle check and the JSON
    # document (at full scale the verdict set is large).
    digest = (
        verdicts_digest(result.verdicts) if args.verify_batch or args.json else None
    )
    if args.verify_batch:
        batch_verdicts = detector.classify_table(table, workers=1)
        if digest != verdicts_digest(batch_verdicts):
            print(
                "stream: FAIL — streaming verdicts diverge from the batch pipeline",
                file=sys.stderr,
            )
            return 1
        print("stream: verdicts byte-identical to batch pipeline", file=sys.stderr)

    summary = {
        "rows": result.rows,
        "batches": result.batches,
        "batch_size": batch_size,
        "rules": len(detector.filter_list),
        "rows_per_second": round(result.rows_per_second, 1),
        **{name: round(value, 3) for name, value in quantiles.items()},
        "refreshes": result.refreshes,
        "verdicts": result.counts(),
        "table_source": table_source,
    }
    if checkpointer is not None:
        summary["checkpoints"] = {
            "saved": result.checkpoints_saved,
            "failures": result.checkpoint_failures,
            "resumed_from_batch": result.resumed_from_batch,
        }
    if args.json:
        document = dict(summary)
        document["seconds"] = round(result.seconds, 3)
        document["batch_seconds"] = [round(value, 6) for value in result.batch_seconds]
        document["verdicts_digest"] = digest
        _attach_telemetry(document)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        summary["saved_to"] = str(args.json)
        print(f"stream: wrote {args.json}", file=sys.stderr)
    json.dump(summary, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DetectionGateway, DeviceRouter, GatewayReplayDriver
    from repro.stream import DEFAULT_BATCH_SIZE, FilterListRefresher, verdicts_digest

    parser = args.parser
    _validate_corpus_args(parser, args)
    batch_size = DEFAULT_BATCH_SIZE if args.batch_size is None else args.batch_size
    if batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {batch_size}")
    if args.serve_workers < 1:
        parser.error(f"--serve-workers must be >= 1, got {args.serve_workers}")
    if args.refresh_days < 0:
        parser.error(f"--refresh-days cannot be negative, got {args.refresh_days}")
    if args.window < 1:
        parser.error(f"--window must be >= 1, got {args.window}")
    if args.verify_batch and args.refresh_days:
        parser.error(
            "--verify-batch compares against the batch pipeline, which has no "
            "refresh; drop --refresh-days (the oracle needs a frozen filter list)"
        )
    if args.refresh_sync and not args.refresh_days:
        parser.error("--refresh-sync needs --refresh-days (there is nothing to schedule)")
    checkpointer = _checkpointer_from_args(parser, args)

    corpus = _build_from_args(args)
    workers = args.workers or default_workers() or 1
    bot_store = corpus.bot_store
    detector, table, table_source = _mine_initial_filter_list(args, corpus, "serve")

    refresher = None
    if args.refresh_days:
        refresher = FilterListRefresher(
            detector.miner,
            interval_days=args.refresh_days,
            window_rows=args.window,
            workers=workers,
            executor=args.executor,
        )
    # Replays know the whole corpus up front, so the router pre-pins the
    # device partition the sharded batch classifier would use — routing
    # is then a pure lookup and no state migration ever happens.
    router = DeviceRouter.from_table(table, args.serve_workers)
    with DetectionGateway(
        detector,
        router=router,
        refresher=refresher,
        refresh_mode="sync" if args.refresh_sync else "background",
    ) as gateway:
        result = GatewayReplayDriver(gateway, batch_size=batch_size).replay(
            bot_store,
            checkpointer=checkpointer,
            resume=args.resume,
            max_batches=args.max_batches,
        )
    print(
        f"serve: replayed {result.rows} rows in {result.seconds:.2f}s "
        f"({result.rows_per_second:.0f} rows/s, {result.workers} worker(s), "
        f"{result.batches} batch(es) of {batch_size}, "
        f"{result.migrations} migration(s), {len(result.refreshes)} refresh(es))",
        file=sys.stderr,
    )
    quantiles = _print_latency_quantiles(result, "serve")
    health = result.health or {}
    if health.get("total_worker_failures") or health.get("refresh_failures"):
        print(
            f"serve: recovered from {health.get('total_worker_failures', 0)} worker "
            f"failure(s) ({health.get('worker_rebuilds', 0)} rebuild(s), "
            f"{len(health.get('dead_letters', []))} dead-lettered group(s)) and "
            f"{health.get('refresh_failures', 0)} refresh failure(s)",
            file=sys.stderr,
        )
    if checkpointer is not None:
        resumed = (
            "fresh start"
            if result.resumed_from_batch is None
            else f"resumed from batch {result.resumed_from_batch}"
        )
        print(
            f"serve: {resumed}, {result.checkpoints_saved} checkpoint(s) saved, "
            f"{result.checkpoint_failures} failed",
            file=sys.stderr,
        )

    digest = (
        verdicts_digest(result.verdicts) if args.verify_batch or args.json else None
    )
    if args.verify_batch:
        batch_verdicts = detector.classify_table(table, workers=1)
        if digest != verdicts_digest(batch_verdicts):
            print(
                "serve: FAIL — gateway verdicts diverge from the batch pipeline",
                file=sys.stderr,
            )
            return 1
        print("serve: verdicts byte-identical to batch pipeline", file=sys.stderr)

    summary = {
        "rows": result.rows,
        "batches": result.batches,
        "batch_size": batch_size,
        "serve_workers": result.workers,
        "worker_rows": result.worker_rows,
        "migrations": result.migrations,
        "rules": len(detector.filter_list),
        "rows_per_second": round(result.rows_per_second, 1),
        **{name: round(value, 3) for name, value in quantiles.items()},
        "refreshes": result.refreshes,
        "verdicts": result.counts(),
        "table_source": table_source,
        "health": result.health,
    }
    if checkpointer is not None:
        summary["checkpoints"] = {
            "saved": result.checkpoints_saved,
            "failures": result.checkpoint_failures,
            "resumed_from_batch": result.resumed_from_batch,
        }
    if args.json:
        document = dict(summary)
        document["seconds"] = round(result.seconds, 3)
        document["batch_seconds"] = [round(value, 6) for value in result.batch_seconds]
        document["verdicts_digest"] = digest
        _attach_telemetry(document)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        summary["saved_to"] = str(args.json)
        print(f"serve: wrote {args.json}", file=sys.stderr)
    json.dump(summary, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


def _parse_float_list(raw: str) -> List[float]:
    values = [float(part) for part in raw.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of numbers")
    if any(value <= 0 for value in values):
        raise argparse.ArgumentTypeError(f"scales must be positive, got {raw!r}")
    return values


def _parse_int_list(raw: str) -> List[int]:
    values = [int(part) for part in raw.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected a comma-separated list of integers")
    if any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(f"worker counts must be >= 1, got {raw!r}")
    return values


def run_scaling_benchmark(
    *,
    scales: List[float],
    worker_counts: List[int],
    seed: int = 7,
    executor: Optional[str] = None,
    generations: Sequence[str] = ("vectorized", "legacy"),
) -> dict:
    """Measure serial-vs-engine corpus build throughput.

    For every scale, times the legacy serial path
    (:func:`~repro.analysis.corpus.build_corpus_serial`) as the baseline,
    then the sharded engine per generation engine and worker count,
    recording requests/second, the speedup over serial, the execution plan
    the engine actually chose (sub-sharded services, effective workers
    after the min-records-per-worker clamp, shard payload bytes for the
    columnar transport) and the cost of materialising record objects out
    of a columnar-backed store (``materialize_seconds`` — the price the
    lazy store defers, and what consumers that stay columnar never pay).
    Returns the result document written to ``BENCH_corpus_scaling.json``.
    """

    document = {
        "benchmark": "corpus_scaling",
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "executor": executor or default_executor(),
        "scales": [],
    }
    for scale in scales:
        started = time.perf_counter()
        serial = build_corpus_serial(seed=seed, scale=scale, include_real_users=True)
        serial_seconds = time.perf_counter() - started
        entry = {
            "scale": scale,
            "records": len(serial.store),
            "serial_seconds": round(serial_seconds, 3),
            "serial_rps": round(len(serial.store) / serial_seconds, 1),
            "engine": [],
        }
        # Drop finished corpora before every engine run: a process-pool
        # fork inherits the coordinator's whole heap, so leftover corpora
        # would bill earlier runs' memory to the run being timed.
        del serial
        gc.collect()
        for generation in generations:
            for workers in worker_counts:
                engine = CorpusEngine(
                    seed=seed, scale=scale, include_real_users=True, generation=generation
                )
                started = time.perf_counter()
                corpus = engine.build(workers=workers, executor=executor)
                seconds = time.perf_counter() - started
                started = time.perf_counter()
                corpus.store.records  # force object materialisation
                materialize_seconds = time.perf_counter() - started
                n_records = len(corpus.store)
                del corpus
                gc.collect()
                entry["engine"].append(
                    {
                        "generation": generation,
                        "workers": workers,
                        "seconds": round(seconds, 3),
                        "rps": round(n_records / seconds, 1),
                        "speedup_vs_serial": round(serial_seconds / seconds, 2),
                        "payload_bytes": engine.last_plan.get("payload_bytes"),
                        "materialize_seconds": round(materialize_seconds, 3),
                        "plan": engine.last_plan,
                    }
                )
        document["scales"].append(entry)
        print(
            f"scale {scale}: serial {serial_seconds:.2f}s; "
            + "; ".join(
                f"{run['generation'][:3]}/{run['workers']}w "
                f"(eff {run['plan']['effective_workers']}) "
                f"{run['seconds']:.2f}s ({run['speedup_vs_serial']}x)"
                for run in entry["engine"]
            ),
            file=sys.stderr,
        )
    return document


def _cmd_bench(args: argparse.Namespace) -> int:
    _validate_execution_knobs(args.parser, args)
    document = run_scaling_benchmark(
        scales=args.scales,
        worker_counts=args.workers_list,
        seed=args.seed,
        executor=args.executor,
    )
    _attach_telemetry(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"bench: wrote {args.output}", file=sys.stderr)

    if args.check_speedup is not None:
        # Gate on the vectorized engine only: legacy-generation runs are
        # recorded for comparison but must not satisfy the speedup check.
        best = max(
            run["speedup_vs_serial"]
            for entry in document["scales"]
            for run in entry["engine"]
            if run["generation"] == "vectorized"
        )
        if best < args.check_speedup:
            print(
                f"bench: FAIL — best speedup {best}x is below the "
                f"required {args.check_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"bench: best speedup {best}x >= {args.check_speedup}x", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit: corpus generation, evaluation pipeline, benchmarks.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus_parser = subparsers.add_parser(
        "corpus", help="build (or load from cache) a measurement corpus"
    )
    _add_corpus_arguments(corpus_parser)
    corpus_parser.add_argument(
        "--out", default=None, metavar="PATH", help="also save the store as JSONL (.gz supported)"
    )
    corpus_parser.set_defaults(func=_cmd_corpus, parser=corpus_parser)

    pipeline_parser = subparsers.add_parser(
        "pipeline", help="build a corpus and run the FP-Inconsistent evaluation"
    )
    _add_corpus_arguments(pipeline_parser)
    pipeline_parser.add_argument(
        "--generalization",
        action="store_true",
        help="also run the Section 7.3 80/20 train/test check",
    )
    pipeline_parser.add_argument(
        "--engine",
        choices=("columnar", "legacy"),
        default="columnar",
        help="detection engine: vectorized columnar (default) or the "
        "object-at-a-time legacy reference; results are identical",
    )
    pipeline_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full result document (filter list, Tables 3/4) as JSON",
    )
    pipeline_parser.set_defaults(func=_cmd_pipeline, parser=pipeline_parser)

    report_parser = subparsers.add_parser(
        "report", help="regenerate every paper table and figure from a corpus"
    )
    _add_corpus_arguments(report_parser)
    report_group = report_parser.add_argument_group("report")
    report_group.add_argument(
        "--engine",
        choices=("columnar", "object"),
        default="columnar",
        help="analysis engine: zero-materialisation columnar (default) or the "
        "record-at-a-time object reference; output is value-identical",
    )
    report_group.add_argument(
        "--sections",
        default=None,
        metavar="KEYS",
        help="comma-separated subset of report sections (default: all)",
    )
    report_group.add_argument(
        "--ml-samples",
        type=int,
        default=4000,
        metavar="N",
        help="training-sample cap for the Table 2 classifiers (default 4000)",
    )
    report_group.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full report document (per-section seconds, "
        "digests, data, materialised-record counter, corpus cache key) as JSON",
    )
    report_group.add_argument(
        "--check-materialization",
        action="store_true",
        help="exit non-zero if any record object was materialised "
        "(guards the columnar path's zero-materialisation invariant)",
    )
    report_parser.set_defaults(func=_cmd_report, parser=report_parser)

    stream_parser = subparsers.add_parser(
        "stream", help="replay a corpus through the online streaming detector"
    )
    _add_corpus_arguments(stream_parser)
    stream_group = stream_parser.add_argument_group("stream")
    stream_group.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="micro-batch size of the replay (default 1024)",
    )
    stream_group.add_argument(
        "--refresh-every",
        type=int,
        default=0,
        metavar="BATCHES",
        help="re-mine the filter list every N batches and hot-swap it "
        "(default 0 = frozen list)",
    )
    stream_group.add_argument(
        "--window",
        type=int,
        default=25_000,
        metavar="ROWS",
        help="sliding window of ingested rows the refresher mines over (default 25000)",
    )
    stream_group.add_argument(
        "--verify-batch",
        action="store_true",
        help="also run the batch classification and assert the streaming "
        "verdicts are byte-identical (requires a frozen list)",
    )
    stream_group.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full replay document (latencies, refreshes, digest) as JSON",
    )
    _add_checkpoint_arguments(stream_group)
    stream_parser.set_defaults(func=_cmd_stream, parser=stream_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="replay a corpus through the parallel detection gateway"
    )
    _add_corpus_arguments(serve_parser)
    serve_group = serve_parser.add_argument_group("serve")
    serve_group.add_argument(
        "--serve-workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel scoring workers behind the gateway (default 1); "
        "verdicts are byte-identical for every worker count",
    )
    serve_group.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="micro-batch size of the replay (default 1024)",
    )
    serve_group.add_argument(
        "--refresh-days",
        type=float,
        default=0,
        metavar="DAYS",
        help="re-mine the filter list every N days of stream time, on a "
        "background worker off the scoring path (default 0 = frozen list)",
    )
    serve_group.add_argument(
        "--window",
        type=int,
        default=25_000,
        metavar="ROWS",
        help="sliding window of ingested rows the refresher mines over (default 25000)",
    )
    serve_group.add_argument(
        "--refresh-sync",
        action="store_true",
        help="mine refreshes inline at the due batch boundary instead of on "
        "the background worker (the `repro stream` cadence)",
    )
    serve_group.add_argument(
        "--verify-batch",
        action="store_true",
        help="also run the batch classification and assert the gateway "
        "verdicts are byte-identical (requires a frozen list)",
    )
    serve_group.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full replay document (latencies, migrations, digest) as JSON",
    )
    _add_checkpoint_arguments(serve_group)
    serve_parser.set_defaults(func=_cmd_serve, parser=serve_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="measure serial vs. sharded corpus-build throughput"
    )
    _add_execution_knobs(bench_parser, lists=True)
    _add_telemetry_arguments(bench_parser)
    bench_parser.add_argument(
        "--output", default="BENCH_corpus_scaling.json", help="result file (JSON)"
    )
    bench_parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless some engine run is at least X times faster than serial",
    )
    bench_parser.set_defaults(func=_cmd_bench, parser=bench_parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        # Before dispatch, through the environment: process-pool shard
        # workers inherit the setting and ship their spans back.
        obs.enable_telemetry()
    try:
        code = args.func(args)
    except (ValueError, OSError) as exc:
        # Bad configuration (scale/seed/env values) or unwritable paths:
        # report like a CLI, not with a traceback.  Set REPRO_DEBUG=1 to
        # re-raise so genuine internal errors keep their stack.
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    _write_telemetry_artifacts(args)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
