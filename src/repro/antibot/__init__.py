"""Anti-bot detector models (DataDome-like and BotD-like)."""

from repro.antibot.base import BotDetector, Decision
from repro.antibot.botd import BOTD_THRESHOLD, BotDModel
from repro.antibot.datadome import DATADOME_THRESHOLD, DataDomeModel
from repro.antibot.signals import API_ACCESS, apis_read_by

__all__ = [
    "API_ACCESS",
    "BOTD_THRESHOLD",
    "BotDModel",
    "BotDetector",
    "DATADOME_THRESHOLD",
    "DataDomeModel",
    "Decision",
    "apis_read_by",
]
