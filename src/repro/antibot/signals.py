"""Shared detection signals and the Table 5 API inventory.

The signal helpers answer simple questions about a request ("is the
User-Agent an automation UA?", "does the fingerprint expose any plugin?")
and are shared by both detector models.  ``API_ACCESS`` reproduces Table 5:
which browser APIs each service's client-side script reads.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.network.request import WebRequest

#: Automation markers that appear in User-Agents of unmodified automation
#: stacks (headless browsers, HTTP libraries, scripted clients).
AUTOMATION_UA_MARKERS: Tuple[str, ...] = (
    "HeadlessChrome",
    "PhantomJS",
    "Electron",
    "python-requests",
    "curl/",
    "wget/",
    "Selenium",
    "Playwright",
    "Puppeteer",
)


def has_webdriver_flag(fingerprint: Fingerprint) -> bool:
    """``navigator.webdriver`` is ``True`` — the canonical automation tell."""

    return bool(fingerprint.get(Attribute.WEBDRIVER, False))


def has_automation_user_agent(request: WebRequest) -> bool:
    """The User-Agent contains a known automation marker."""

    user_agent = request.user_agent or ""
    return any(marker in user_agent for marker in AUTOMATION_UA_MARKERS)


def plugin_count(fingerprint: Fingerprint) -> int:
    """Number of navigator plugins exposed by the fingerprint."""

    plugins = fingerprint.get(Attribute.PLUGINS) or ()
    return len(plugins)


def has_any_plugin(fingerprint: Fingerprint) -> bool:
    """Whether at least one navigator plugin is exposed (Figure 4 signal)."""

    return plugin_count(fingerprint) > 0


def reports_touch_support(fingerprint: Fingerprint) -> bool:
    """Whether the fingerprint claims touch-event support."""

    touch = fingerprint.get(Attribute.TOUCH_SUPPORT)
    if touch is None:
        return False
    return str(touch) not in ("", "None")


def hardware_concurrency(fingerprint: Fingerprint) -> Optional[int]:
    """The reported number of logical CPU cores, when present."""

    value = fingerprint.get(Attribute.HARDWARE_CONCURRENCY)
    return int(value) if value is not None else None


def forced_colors_active(fingerprint: Fingerprint) -> bool:
    """Whether the forced-colors accessibility mode is reported active."""

    return bool(fingerprint.get(Attribute.FORCED_COLORS, False))


def screen_frame(fingerprint: Fingerprint) -> Optional[int]:
    """The reported screen-frame size, when present."""

    value = fingerprint.get(Attribute.SCREEN_FRAME)
    return int(value) if value is not None else None


def missing_languages(fingerprint: Fingerprint) -> bool:
    """No browser languages reported — common in stripped automation."""

    languages = fingerprint.get(Attribute.LANGUAGES)
    return not languages


#: Table 5 — browser APIs read by each service's client-side script.
API_ACCESS: Dict[str, Dict[str, bool]] = {
    "window.screen.colorDepth": {"DataDome": True, "BotD": False},
    "HTMLCanvasElement.getContext": {"DataDome": True, "BotD": False},
    "window.navigator.webdriver": {"DataDome": True, "BotD": True},
    "window.navigator.vendor": {"DataDome": True, "BotD": True},
    "window.navigator.userAgent": {"DataDome": True, "BotD": True},
    "window.navigator.serviceWorker": {"DataDome": True, "BotD": False},
    "window.navigator.productSub": {"DataDome": True, "BotD": True},
    "window.navigator.plugins": {"DataDome": True, "BotD": True},
    "window.navigator.platform": {"DataDome": True, "BotD": True},
    "window.navigator.permissions": {"DataDome": True, "BotD": True},
    "window.navigator.oscpu": {"DataDome": True, "BotD": False},
    "window.navigator.mimeTypes": {"DataDome": True, "BotD": False},
    "window.navigator.mediaDevices": {"DataDome": True, "BotD": False},
    "window.navigator.maxTouchPoints": {"DataDome": True, "BotD": False},
    "window.navigator.languages": {"DataDome": True, "BotD": True},
    "window.navigator.language": {"DataDome": True, "BotD": True},
    "window.navigator.hardwareConcurrency": {"DataDome": True, "BotD": False},
    "window.navigator.buildID": {"DataDome": True, "BotD": False},
    "window.navigator.appVersion": {"DataDome": True, "BotD": True},
    "window.navigator.__proto__": {"DataDome": False, "BotD": True},
    "window.sessionStorage": {"DataDome": True, "BotD": False},
    "window.localStorage": {"DataDome": True, "BotD": False},
    "window.document.cookie": {"DataDome": True, "BotD": False},
    "MouseEvent.type": {"DataDome": True, "BotD": False},
    "MouseEvent.timeStamp": {"DataDome": True, "BotD": False},
    "MouseEvent.clientY": {"DataDome": True, "BotD": False},
    "MouseEvent.clientX": {"DataDome": True, "BotD": False},
    "addEventListener: mouseup": {"DataDome": True, "BotD": False},
    "addEventListener: mousemove": {"DataDome": True, "BotD": False},
    "addEventListener: mousedown": {"DataDome": True, "BotD": False},
    "addEventListener: asyncChallengeFinished": {"DataDome": True, "BotD": False},
    "addEventListener: pagehide": {"DataDome": True, "BotD": False},
    "Performance.now": {"DataDome": False, "BotD": True},
}


def apis_read_by(detector_name: str) -> Tuple[str, ...]:
    """The APIs read by *detector_name* ("DataDome" or "BotD")."""

    return tuple(api for api, readers in API_ACCESS.items() if readers.get(detector_name))
