"""DataDome-like detector model.

DataDome combines client-side fingerprinting with server-side IP
intelligence (the honey site also calls a server-side API per request).
The model below is a deterministic scoring function over the signals the
paper found DataDome to be sensitive to:

* explicit automation tells (``navigator.webdriver``, automation UAs),
* requests from datacenter / hosting address space running on server-grade
  CPU counts — the combination typical of headless farms, and
* accessibility / rendering values that (per Section 5.3.2) "always result
  in detection" (active forced-colors mode, large screen frames on
  plugin-less browsers).

Its blind spot, reproduced from Figure 5 and Appendix C, is a low reported
``hardwareConcurrency``: requests claiming fewer than 8 cores look like
consumer devices and pass even from flagged address space.
"""

from __future__ import annotations

from typing import List

from repro.antibot.base import BotDetector, Decision
from repro.antibot.signals import (
    forced_colors_active,
    has_any_plugin,
    has_automation_user_agent,
    has_webdriver_flag,
    hardware_concurrency,
    missing_languages,
    reports_touch_support,
    screen_frame,
)
from repro.geo.asn import TOR_EXIT_ASNS
from repro.network.request import WebRequest

#: Score at or above which DataDome reports a bot.
DATADOME_THRESHOLD = 0.8

#: Reported core counts at or above this look like server hardware.
SERVER_CORE_COUNT = 8
#: Reported core counts at or above this are almost certainly server VMs.
LARGE_CORE_COUNT = 14


class DataDomeModel(BotDetector):
    """Deterministic single-request model of the DataDome service."""

    name = "DataDome"

    def evaluate(self, request: WebRequest) -> Decision:
        fingerprint = request.fingerprint
        signals: List[str] = []
        score = 0.0

        if has_webdriver_flag(fingerprint):
            signals.append("webdriver_flag")
            score += 1.0
        if has_automation_user_agent(request):
            signals.append("automation_user_agent")
            score += 1.0
        if forced_colors_active(fingerprint):
            signals.append("forced_colors_active")
            score += 0.8
        if missing_languages(fingerprint):
            signals.append("no_languages")
            score += 0.4

        record = self._geo.lookup(request.ip_address) if self._geo is not None else None
        from_datacenter = bool(record and record.is_datacenter)
        if from_datacenter:
            signals.append("datacenter_address_space")
            score += 0.55
        if record is not None and record.asn in TOR_EXIT_ASNS:
            signals.append("anonymity_network_exit")
            score += 0.35

        cores = hardware_concurrency(fingerprint)
        if cores is not None and cores >= SERVER_CORE_COUNT:
            if from_datacenter:
                signals.append("server_core_count")
                score += 0.35
            if cores >= LARGE_CORE_COUNT:
                signals.append("very_large_core_count")
                score += 0.2

        frame = screen_frame(fingerprint)
        if (
            frame is not None
            and frame >= 20
            and from_datacenter
            and not has_any_plugin(fingerprint)
            and not reports_touch_support(fingerprint)
        ):
            signals.append("bare_browser_with_window_chrome")
            score += 0.15

        return Decision(
            detector=self.name,
            is_bot=score >= DATADOME_THRESHOLD,
            score=score,
            signals=tuple(signals),
        )
