"""Detector interface shared by the DataDome and BotD models."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.geo.geolite import GeoDatabase
from repro.network.request import WebRequest


@dataclass(frozen=True)
class Decision:
    """Outcome of one anti-bot evaluation of one request.

    Attributes
    ----------
    detector:
        Name of the detector that produced the decision.
    is_bot:
        ``True`` when the detector classified the request as bot traffic.
    score:
        The detector's internal suspicion score (0 = certainly human).
    signals:
        Names of the signals that fired, in firing order.  Useful for
        debugging the simulators; commercial services do not expose this.
    """

    detector: str
    is_bot: bool
    score: float
    signals: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def evaded(self) -> bool:
        """Convenience alias: the request evaded when it was not flagged."""

        return not self.is_bot


class BotDetector(abc.ABC):
    """Interface of an anti-bot service evaluated on single requests.

    Both simulators are deterministic functions of the request content and
    the IP-intelligence lookup, mirroring how the paper treats the real
    services as black boxes that return a per-request decision.
    """

    #: Human-readable detector name, set by subclasses.
    name: str = "detector"

    def __init__(self, geo: Optional[GeoDatabase] = None):
        self._geo = geo

    @property
    def geo(self) -> Optional[GeoDatabase]:
        return self._geo

    @abc.abstractmethod
    def evaluate(self, request: WebRequest) -> Decision:
        """Evaluate *request* and return a :class:`Decision`."""

    def is_bot(self, request: WebRequest) -> bool:
        """Shorthand for ``evaluate(request).is_bot``."""

        return self.evaluate(request).is_bot
