"""BotD-like detector model.

BotD is a client-side bot detection library: it inspects automation
artefacts exposed through browser APIs but (per the paper's measurements)
does not use IP intelligence or cross-request state.  The measurement
analysis in Section 5.3.1 and 5.3.3 found two blind spots that this model
reproduces exactly:

* a fingerprint exposing **any navigator plugin** is treated as a real
  browser (Figure 4 — "the presence of any PDF plugin nearly guarantees
  evasion"), and
* a fingerprint reporting **touch support** is treated as a real mobile
  browser.

Requests that expose neither (the default for headless/server browsers)
are classified as bots, as are requests with explicit automation tells.
"""

from __future__ import annotations

from typing import List

from repro.antibot.base import BotDetector, Decision
from repro.antibot.signals import (
    has_any_plugin,
    has_automation_user_agent,
    has_webdriver_flag,
    missing_languages,
    reports_touch_support,
)
from repro.network.request import WebRequest

#: Score at or above which BotD reports a bot.
BOTD_THRESHOLD = 1.0


class BotDModel(BotDetector):
    """Deterministic single-request model of the BotD service."""

    name = "BotD"

    def evaluate(self, request: WebRequest) -> Decision:
        fingerprint = request.fingerprint
        signals: List[str] = []
        score = 0.0

        if has_webdriver_flag(fingerprint):
            signals.append("webdriver_flag")
            score += 1.0
        if has_automation_user_agent(request):
            signals.append("automation_user_agent")
            score += 1.0
        if missing_languages(fingerprint):
            signals.append("no_languages")
            score += 0.5

        # Blind-spot structure from the paper: a browser that exposes
        # plugins or touch support is accepted as human unless an explicit
        # automation tell fired above.
        exposes_plugins = has_any_plugin(fingerprint)
        exposes_touch = reports_touch_support(fingerprint)
        if not exposes_plugins and not exposes_touch:
            signals.append("no_plugins_no_touch")
            score += 1.0

        return Decision(
            detector=self.name,
            is_bot=score >= BOTD_THRESHOLD,
            score=score,
            signals=tuple(signals),
        )
