"""The combined FP-Inconsistent detector.

Wraps a mined spatial :class:`FilterList` and a
:class:`TemporalInconsistencyDetector` behind one object that can

* be fitted on a corpus of bot-labelled requests (rule mining),
* classify individual fingerprints / whole request stores, and
* report *why* a request was considered inconsistent.

This is the artefact an anti-bot service would deploy (Section 8.3): the
filter list runs client- or server-side per request, the temporal tracker
runs server-side keyed on the first-party cookie and source address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.columnar import ColumnarTable, partition_rows_by_device
from repro.core.rules import FilterList, InconsistencyRule
from repro.core.spatial import SpatialInconsistencyMiner
from repro.core.temporal import TemporalFlag, TemporalInconsistencyDetector
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import RequestStore

#: Detection engine selectors: ``"columnar"`` (vectorized, default) and
#: ``"legacy"`` (the object-at-a-time reference).  Both produce identical
#: filter lists and verdicts; ``tests/test_columnar.py`` pins it.
ENGINES = ("columnar", "legacy")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


@dataclass(frozen=True)
class InconsistencyVerdict:
    """Classification of one request by FP-Inconsistent."""

    request_id: int
    spatial_rule: Optional[InconsistencyRule]
    temporal_flags: Tuple[TemporalFlag, ...] = ()

    @property
    def spatially_inconsistent(self) -> bool:
        return self.spatial_rule is not None

    @property
    def temporally_inconsistent(self) -> bool:
        return bool(self.temporal_flags)

    @property
    def is_inconsistent(self) -> bool:
        """Combined decision (spatial OR temporal)."""

        return self.spatially_inconsistent or self.temporally_inconsistent


class FPInconsistent:
    """Data-driven inconsistency detector (the paper's core contribution)."""

    def __init__(
        self,
        *,
        filter_list: Optional[FilterList] = None,
        temporal: Optional[TemporalInconsistencyDetector] = None,
        miner: Optional[SpatialInconsistencyMiner] = None,
        location_predicate: bool = True,
    ):
        self._miner = miner if miner is not None else SpatialInconsistencyMiner()
        self._filter_list = filter_list if filter_list is not None else FilterList()
        self._temporal = temporal if temporal is not None else TemporalInconsistencyDetector()
        #: When enabled, the Location rules generalise beyond the exact
        #: value pairs mined from the corpus: any (IP country, browser
        #: timezone) combination whose UTC offsets cannot overlap is a
        #: spatial inconsistency (this is what flags Tor traffic, §7.5).
        self._location_predicate = location_predicate

    # -- accessors ------------------------------------------------------------

    @property
    def filter_list(self) -> FilterList:
        return self._filter_list

    @filter_list.setter
    def filter_list(self, filter_list: FilterList) -> None:
        """Hot-swap the deployed rule set.

        The streaming subsystem's refresher re-mines periodically and
        swaps the list between batches; matching is stateless (the list is
        recompiled against every batch), so a swap takes effect exactly at
        the next batch boundary.
        """

        if not isinstance(filter_list, FilterList):
            raise TypeError(f"expected a FilterList, got {type(filter_list).__name__}")
        self._filter_list = filter_list

    @property
    def temporal_detector(self) -> TemporalInconsistencyDetector:
        return self._temporal

    @property
    def miner(self) -> SpatialInconsistencyMiner:
        return self._miner

    @property
    def location_predicate(self) -> bool:
        """Whether the generalised Location check backs filter-list misses."""

        return self._location_predicate

    def isolated_clone(self) -> "FPInconsistent":
        """A detector sharing this one's read-only parts with fresh temporal state.

        The filter list, miner and knowledge base are only ever read during
        classification, so they are shared by reference; the temporal
        detector is configuration *plus* per-device state, so the clone
        gets an empty copy.  Every concurrent consumer — classification
        shards, the streaming :class:`~repro.stream.OnlineClassifier`, the
        serving gateway's workers — classifies through one of these so
        that the fitted detector a caller hands in is never mutated and no
        temporal state leaks between streams.
        """

        return FPInconsistent(
            filter_list=self._filter_list,
            temporal=self._temporal.clone(),
            miner=self._miner,
            location_predicate=self._location_predicate,
        )

    # -- fitting -----------------------------------------------------------------

    def fit(
        self,
        store: RequestStore,
        *,
        engine: str = "columnar",
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> "FPInconsistent":
        """Mine the spatial filter list from a bot-labelled request store.

        ``engine="columnar"`` extracts the store into a
        :class:`~repro.core.columnar.ColumnarTable` and mines vectorized
        (optionally sharded over *workers*); ``engine="legacy"`` runs the
        object-at-a-time reference.  Both produce the same filter list.
        """

        validate_engine(engine)
        if engine == "legacy":
            self._filter_list = self._miner.mine_store(store)
        else:
            table = self.extract_table(store)
            self.fit_table(table, workers=workers, executor=executor)
        return self

    def fit_table(
        self,
        table: ColumnarTable,
        *,
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> "FPInconsistent":
        """Mine the spatial filter list from an already-extracted table."""

        self._filter_list = self._miner.mine_table(table, workers=workers, executor=executor)
        return self

    def table_attributes(self) -> Tuple[Attribute, ...]:
        """The attribute set this detector's tables must carry.

        The default attribute set covers every mineable pair and the
        temporally tracked attributes; attributes referenced by an
        externally loaded filter list are appended so its rules stay
        matchable.
        """

        extra = [rule.attribute_a for rule in self._filter_list] + [
            rule.attribute_b for rule in self._filter_list
        ]
        extra += list(self._temporal.tracked_attributes)
        from repro.core.columnar import default_table_attributes

        ordered: Dict[Attribute, None] = {
            attribute: None for attribute in default_table_attributes()
        }
        for attribute in extra:
            ordered.setdefault(attribute, None)
        return tuple(ordered)

    def accepts_table(self, table: ColumnarTable, store: Optional[RequestStore] = None) -> bool:
        """Whether a pre-extracted *table* can stand in for extracting *store*.

        True when the table carries request metadata and every attribute
        this detector reads — extra columns are harmless (every consumer
        addresses columns by attribute, never by position) — and, when
        *store* is given, when the table's rows actually correspond to it
        (row count and request ids), so a table from a different corpus is
        rejected instead of silently classifying the wrong rows.
        """

        if table.request_ids is None or table.cookie_codes is None or table.ip_codes is None:
            return False
        if not all(table.has_attribute(attribute) for attribute in self.table_attributes()):
            return False
        if store is not None and not table.matches_store(store):
            return False
        return True

    def extract_table(self, store: RequestStore) -> ColumnarTable:
        """Extract *store* into the columnar layout this detector needs."""

        return ColumnarTable.from_store(store, attributes=self.table_attributes())

    def resolve_table(
        self, store: RequestStore, candidate: Optional[ColumnarTable] = None
    ) -> Tuple[ColumnarTable, str]:
        """The table to use for *store*: *candidate* when acceptable, else
        a fresh extraction.

        Returns ``(table, source)`` with source ``"reused"`` or
        ``"extracted"`` — the one reuse-or-extract decision shared by the
        batch pipeline, the stream CLI and the benchmarks, so the
        acceptance rules live in exactly one place
        (:meth:`accepts_table`).
        """

        if candidate is not None and self.accepts_table(candidate, store):
            return candidate, "reused"
        return self.extract_table(store), "extracted"

    # -- single-fingerprint API ------------------------------------------------------

    def check_fingerprint(self, fingerprint: Fingerprint) -> Optional[InconsistencyRule]:
        """Spatial check of a single fingerprint (no temporal state)."""

        match = self._filter_list.first_match(fingerprint)
        if match is not None:
            return match
        if self._location_predicate:
            return self._check_location(fingerprint)
        return None

    def _check_location(self, fingerprint: Fingerprint) -> Optional[InconsistencyRule]:
        """Generalised Location-category check backed by the knowledge base."""

        country = fingerprint.value_for_grouping(Attribute.IP_COUNTRY)
        timezone = fingerprint.value_for_grouping(Attribute.TIMEZONE)
        return self._location_rule(country, timezone)

    def _location_rule(
        self, country: object, timezone: object
    ) -> Optional[InconsistencyRule]:
        if country is None or timezone is None:
            return None
        verdict = self._miner.knowledge.is_pair_consistent(
            Attribute.IP_COUNTRY, country, Attribute.TIMEZONE, timezone
        )
        if verdict is False:
            return InconsistencyRule(
                category=AttributeCategory.LOCATION,
                attribute_a=Attribute.IP_COUNTRY,
                value_a=country,
                attribute_b=Attribute.TIMEZONE,
                value_b=timezone,
                support=0,
            )
        return None

    # -- store classification ----------------------------------------------------------

    def classify_store(
        self,
        store: RequestStore,
        *,
        use_spatial: bool = True,
        use_temporal: bool = True,
        engine: str = "columnar",
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> Dict[int, InconsistencyVerdict]:
        """Classify every request in *store*.

        Temporal state is evaluated in timestamp order over the given store
        only (it does not leak across calls).  Returns a verdict per
        ``request_id``.  ``engine="columnar"`` (default) extracts the store
        once and classifies vectorized, optionally sharded over *workers*;
        ``engine="legacy"`` is the per-request reference path.  Verdicts
        are identical either way.
        """

        validate_engine(engine)
        if engine == "columnar":
            table = self.extract_table(store)
            return self.classify_table(
                table,
                use_spatial=use_spatial,
                use_temporal=use_temporal,
                workers=workers,
                executor=executor,
            )

        temporal_flags: Dict[int, List[TemporalFlag]] = {}
        if use_temporal:
            temporal_flags = self._temporal.evaluate_store(store)

        verdicts: Dict[int, InconsistencyVerdict] = {}
        for record in store:
            spatial_rule = None
            if use_spatial:
                spatial_rule = self.check_fingerprint(record.request.fingerprint)
            verdicts[record.request.request_id] = InconsistencyVerdict(
                request_id=record.request.request_id,
                spatial_rule=spatial_rule,
                temporal_flags=tuple(temporal_flags.get(record.request.request_id, ())),
            )
        return verdicts

    def classify_table(
        self,
        table: ColumnarTable,
        *,
        use_spatial: bool = True,
        use_temporal: bool = True,
        workers: int = 1,
        executor: Optional[str] = None,
        temporal_state=None,
    ) -> Dict[int, InconsistencyVerdict]:
        """Classify every row of a columnar table (vectorized engine).

        The filter list is compiled to the table's value codes and matched
        with one vectorized lookup per attribute pair; the Location
        predicate is evaluated once per distinct (country, timezone)
        combination.  With ``workers > 1`` rows shard over the worker pool
        in device-closed groups (every cookie's and every source address's
        rows stay on one shard), so temporal flags — whose state is keyed
        on those identifiers — are identical to a single-shard evaluation.

        *temporal_state* switches temporal detection from the
        self-contained batch evaluation (state reset, whole table replayed)
        to the **incremental** streaming mode: the given
        :class:`~repro.core.temporal.TemporalStreamState` is updated in
        place and carried across calls, so the streaming subsystem scores
        one micro-batch per call without re-reading history.  Incremental
        calls are single-shard by contract (the stream is one arrival
        order; ``workers`` must stay 1).
        """

        if table.request_ids is None:
            raise ValueError(
                "classify_table requires a table built with "
                "ColumnarTable.from_store (request metadata is missing)"
            )
        workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if temporal_state is not None and workers > 1:
            raise ValueError(
                "incremental temporal state is inherently ordered; "
                "classify_table(temporal_state=...) requires workers=1"
            )
        if workers > 1 and table.n_rows > 1:
            return self._classify_table_sharded(
                table,
                use_spatial=use_spatial,
                use_temporal=use_temporal,
                workers=workers,
                executor=executor,
            )

        temporal_flags: Dict[int, List[TemporalFlag]] = {}
        if use_temporal:
            if temporal_state is not None:
                temporal_flags = self._temporal.observe_table(table, temporal_state)
            else:
                temporal_flags = self._temporal.evaluate_table(table)

        spatial_rules: List[Optional[InconsistencyRule]] = [None] * table.n_rows
        if use_spatial:
            spatial_rules = self._filter_list.compile(table).first_match_rows()
            if self._location_predicate:
                self._apply_location_predicate(table, spatial_rules)

        verdicts: Dict[int, InconsistencyVerdict] = {}
        for row in range(table.n_rows):
            request_id = int(table.request_ids[row])
            verdicts[request_id] = InconsistencyVerdict(
                request_id=request_id,
                spatial_rule=spatial_rules[row],
                temporal_flags=tuple(temporal_flags.get(request_id, ())),
            )
        return verdicts

    def _apply_location_predicate(
        self, table: ColumnarTable, spatial_rules: List[Optional[InconsistencyRule]]
    ) -> None:
        """Fill filter-list misses with the generalised Location check.

        The knowledge base is consulted once per distinct (IP country,
        timezone) code pair rather than once per request; the synthesized
        rules are value-identical to the reference path's.
        """

        for attribute in (Attribute.IP_COUNTRY, Attribute.TIMEZONE):
            table.require_attribute(attribute, "Location predicate attribute")
        country_codes = table.codes_of(Attribute.IP_COUNTRY)
        timezone_codes = table.codes_of(Attribute.TIMEZONE)
        country_values = table.values_of(Attribute.IP_COUNTRY)
        timezone_values = table.values_of(Attribute.TIMEZONE)
        combo_rules: Dict[Tuple[int, int], Optional[InconsistencyRule]] = {}
        for row, rule in enumerate(spatial_rules):
            if rule is not None:
                continue
            country_code = country_codes[row]
            timezone_code = timezone_codes[row]
            if country_code < 0 or timezone_code < 0:
                continue
            combo = (int(country_code), int(timezone_code))
            if combo not in combo_rules:
                combo_rules[combo] = self._location_rule(
                    country_values[combo[0]], timezone_values[combo[1]]
                )
            spatial_rules[row] = combo_rules[combo]

    def _classify_table_sharded(
        self,
        table: ColumnarTable,
        *,
        use_spatial: bool,
        use_temporal: bool,
        workers: int,
        executor: Optional[str],
    ) -> Dict[int, InconsistencyVerdict]:
        from repro.analysis.engine import map_shards

        partitions = partition_rows_by_device(table, workers)
        shards = [
            _ClassificationShard(
                detector=self,
                table=table.take(rows),
                use_spatial=use_spatial,
                use_temporal=use_temporal,
            )
            for rows in partitions
        ]
        merged: Dict[int, InconsistencyVerdict] = {}
        for verdicts in map_shards(
            _classify_shard, shards, workers=workers, executor=executor, label="classify"
        ):
            merged.update(verdicts)
        # Re-emit in table row order so the verdict dict is ordered exactly
        # like a single-shard classification.
        return {int(request_id): merged[int(request_id)] for request_id in table.request_ids}

    def inconsistent_fraction(
        self,
        store: RequestStore,
        *,
        use_spatial: bool = True,
        use_temporal: bool = True,
    ) -> float:
        """Fraction of requests in *store* classified as inconsistent."""

        if len(store) == 0:
            return 0.0
        verdicts = self.classify_store(
            store, use_spatial=use_spatial, use_temporal=use_temporal
        )
        return sum(1 for verdict in verdicts.values() if verdict.is_inconsistent) / len(store)


@dataclass(frozen=True)
class _ClassificationShard:
    """One worker's device-closed slice of a classification (picklable)."""

    detector: FPInconsistent
    table: ColumnarTable
    use_spatial: bool
    use_temporal: bool


def _classify_shard(shard: _ClassificationShard) -> Dict[int, InconsistencyVerdict]:
    """Worker entry point: classify one shard single-threaded.

    The temporal detector is stateful (per-device value sets), so each
    shard classifies through a fresh clone: with a thread executor every
    shard would otherwise mutate the one shared ``_seen`` table.  The
    filter list, miner and knowledge base are only read.
    """

    isolated = shard.detector.isolated_clone()
    return isolated.classify_table(
        shard.table,
        use_spatial=shard.use_spatial,
        use_temporal=shard.use_temporal,
        workers=1,
    )
