"""The combined FP-Inconsistent detector.

Wraps a mined spatial :class:`FilterList` and a
:class:`TemporalInconsistencyDetector` behind one object that can

* be fitted on a corpus of bot-labelled requests (rule mining),
* classify individual fingerprints / whole request stores, and
* report *why* a request was considered inconsistent.

This is the artefact an anti-bot service would deploy (Section 8.3): the
filter list runs client- or server-side per request, the temporal tracker
runs server-side keyed on the first-party cookie and source address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rules import FilterList, InconsistencyRule
from repro.core.spatial import SpatialInconsistencyMiner
from repro.core.temporal import TemporalFlag, TemporalInconsistencyDetector
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import RequestStore


@dataclass(frozen=True)
class InconsistencyVerdict:
    """Classification of one request by FP-Inconsistent."""

    request_id: int
    spatial_rule: Optional[InconsistencyRule]
    temporal_flags: Tuple[TemporalFlag, ...] = ()

    @property
    def spatially_inconsistent(self) -> bool:
        return self.spatial_rule is not None

    @property
    def temporally_inconsistent(self) -> bool:
        return bool(self.temporal_flags)

    @property
    def is_inconsistent(self) -> bool:
        """Combined decision (spatial OR temporal)."""

        return self.spatially_inconsistent or self.temporally_inconsistent


class FPInconsistent:
    """Data-driven inconsistency detector (the paper's core contribution)."""

    def __init__(
        self,
        *,
        filter_list: Optional[FilterList] = None,
        temporal: Optional[TemporalInconsistencyDetector] = None,
        miner: Optional[SpatialInconsistencyMiner] = None,
        location_predicate: bool = True,
    ):
        self._miner = miner if miner is not None else SpatialInconsistencyMiner()
        self._filter_list = filter_list if filter_list is not None else FilterList()
        self._temporal = temporal if temporal is not None else TemporalInconsistencyDetector()
        #: When enabled, the Location rules generalise beyond the exact
        #: value pairs mined from the corpus: any (IP country, browser
        #: timezone) combination whose UTC offsets cannot overlap is a
        #: spatial inconsistency (this is what flags Tor traffic, §7.5).
        self._location_predicate = location_predicate

    # -- accessors ------------------------------------------------------------

    @property
    def filter_list(self) -> FilterList:
        return self._filter_list

    @property
    def temporal_detector(self) -> TemporalInconsistencyDetector:
        return self._temporal

    @property
    def miner(self) -> SpatialInconsistencyMiner:
        return self._miner

    # -- fitting -----------------------------------------------------------------

    def fit(self, store: RequestStore) -> "FPInconsistent":
        """Mine the spatial filter list from a bot-labelled request store."""

        self._filter_list = self._miner.mine_store(store)
        return self

    # -- single-fingerprint API ------------------------------------------------------

    def check_fingerprint(self, fingerprint: Fingerprint) -> Optional[InconsistencyRule]:
        """Spatial check of a single fingerprint (no temporal state)."""

        match = self._filter_list.first_match(fingerprint)
        if match is not None:
            return match
        if self._location_predicate:
            return self._check_location(fingerprint)
        return None

    def _check_location(self, fingerprint: Fingerprint) -> Optional[InconsistencyRule]:
        """Generalised Location-category check backed by the knowledge base."""

        from repro.fingerprint.attributes import Attribute
        from repro.fingerprint.categories import AttributeCategory

        country = fingerprint.value_for_grouping(Attribute.IP_COUNTRY)
        timezone = fingerprint.value_for_grouping(Attribute.TIMEZONE)
        if country is None or timezone is None:
            return None
        verdict = self._miner.knowledge.is_pair_consistent(
            Attribute.IP_COUNTRY, country, Attribute.TIMEZONE, timezone
        )
        if verdict is False:
            return InconsistencyRule(
                category=AttributeCategory.LOCATION,
                attribute_a=Attribute.IP_COUNTRY,
                value_a=country,
                attribute_b=Attribute.TIMEZONE,
                value_b=timezone,
                support=0,
            )
        return None

    # -- store classification ----------------------------------------------------------

    def classify_store(
        self,
        store: RequestStore,
        *,
        use_spatial: bool = True,
        use_temporal: bool = True,
    ) -> Dict[int, InconsistencyVerdict]:
        """Classify every request in *store*.

        Temporal state is evaluated in timestamp order over the given store
        only (it does not leak across calls).  Returns a verdict per
        ``request_id``.
        """

        temporal_flags: Dict[int, List[TemporalFlag]] = {}
        if use_temporal:
            temporal_flags = self._temporal.evaluate_store(store)

        verdicts: Dict[int, InconsistencyVerdict] = {}
        for record in store:
            spatial_rule = None
            if use_spatial:
                spatial_rule = self.check_fingerprint(record.request.fingerprint)
            verdicts[record.request.request_id] = InconsistencyVerdict(
                request_id=record.request.request_id,
                spatial_rule=spatial_rule,
                temporal_flags=tuple(temporal_flags.get(record.request.request_id, ())),
            )
        return verdicts

    def inconsistent_fraction(
        self,
        store: RequestStore,
        *,
        use_spatial: bool = True,
        use_temporal: bool = True,
    ) -> float:
        """Fraction of requests in *store* classified as inconsistent."""

        if len(store) == 0:
            return 0.0
        verdicts = self.classify_store(
            store, use_spatial=use_spatial, use_temporal=use_temporal
        )
        return sum(1 for verdict in verdicts.values() if verdict.is_inconsistent) / len(store)
