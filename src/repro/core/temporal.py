"""Temporal inconsistency detection (Section 7.2).

A temporal inconsistency is a change, across requests from the same device,
of an attribute that cannot change for a real device.  Devices are
identified two ways, exactly as in the paper:

* the honey site's first-party **cookie** — immutable hardware/software
  attributes (platform, CPU core count, device memory, …) must not vary
  across requests carrying the same cookie;
* the **IP address** — the set of browser timezones reported from one
  address must not keep growing (a household has one, maybe two zones).

The detector is streaming: requests are processed in timestamp order and a
request is flagged when it *increases* the number of distinct values of a
tracked attribute for its device key, mirroring the paper's "if an incoming
request increases the number of unique attribute values associated with
previous identifiers, we consider that request to be temporally
inconsistent".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import RequestStore

#: Immutable attributes tracked per cookie by default (Section 7.2 names
#: hardware concurrency, device memory and the platform example of §6.3).
DEFAULT_COOKIE_ATTRIBUTES: Tuple[Attribute, ...] = (
    Attribute.PLATFORM,
    Attribute.HARDWARE_CONCURRENCY,
    Attribute.DEVICE_MEMORY,
    Attribute.MAX_TOUCH_POINTS,
    Attribute.COLOR_DEPTH,
)

#: Attributes tracked per IP address by default.
DEFAULT_IP_ATTRIBUTES: Tuple[Attribute, ...] = (Attribute.TIMEZONE,)

#: How many distinct values are tolerated per (device, attribute) before a
#: further new value is considered inconsistent.  1 means "any change is
#: inconsistent" (the paper's rule for cookie-keyed attributes); the IP key
#: tolerates 2 zones (e.g. a laptop commuting between home and office).
DEFAULT_COOKIE_TOLERANCE = 1
DEFAULT_IP_TOLERANCE = 2


@dataclass(frozen=True)
class TemporalFlag:
    """Why one request was considered temporally inconsistent."""

    key_kind: str          # "cookie" or "ip"
    key: str
    attribute: Attribute
    previous_values: Tuple[object, ...]
    new_value: object

    def describe(self) -> str:
        return (
            f"{self.key_kind}={self.key!r}: {self.attribute.value} changed to "
            f"{self.new_value!r} after {list(self.previous_values)!r}"
        )


class TemporalInconsistencyDetector:
    """Streaming detector of temporal inconsistencies."""

    def __init__(
        self,
        *,
        cookie_attributes: Sequence[Attribute] = DEFAULT_COOKIE_ATTRIBUTES,
        ip_attributes: Sequence[Attribute] = DEFAULT_IP_ATTRIBUTES,
        cookie_tolerance: int = DEFAULT_COOKIE_TOLERANCE,
        ip_tolerance: int = DEFAULT_IP_TOLERANCE,
    ):
        if cookie_tolerance < 1 or ip_tolerance < 1:
            raise ValueError("tolerances must be at least 1")
        self._cookie_attributes = tuple(cookie_attributes)
        self._ip_attributes = tuple(ip_attributes)
        self._cookie_tolerance = cookie_tolerance
        self._ip_tolerance = ip_tolerance
        #: (key_kind, key, attribute) -> set of observed values
        self._seen: Dict[Tuple[str, str, Attribute], Set[object]] = {}

    def reset(self) -> None:
        """Forget all per-device state."""

        self._seen.clear()

    # -- streaming API -----------------------------------------------------------

    def _observe_one(
        self,
        key_kind: str,
        key: str,
        attribute: Attribute,
        value: object,
        tolerance: int,
    ) -> Optional[TemporalFlag]:
        if value is None or not key:
            return None
        seen = self._seen.setdefault((key_kind, key, attribute), set())
        if value in seen:
            return None
        flag: Optional[TemporalFlag] = None
        if len(seen) >= tolerance:
            flag = TemporalFlag(
                key_kind=key_kind,
                key=key,
                attribute=attribute,
                previous_values=tuple(seen),
                new_value=value,
            )
        seen.add(value)
        return flag

    def observe(
        self,
        fingerprint: Fingerprint,
        *,
        cookie: Optional[str],
        ip_address: Optional[str],
    ) -> List[TemporalFlag]:
        """Process one request; returns the flags it raised (possibly empty).

        The observation is recorded regardless of whether it was flagged,
        so a later request re-using an already-flagged value is *not*
        flagged again (only increases are flagged).
        """

        flags: List[TemporalFlag] = []
        if cookie:
            for attribute in self._cookie_attributes:
                flag = self._observe_one(
                    "cookie",
                    cookie,
                    attribute,
                    fingerprint.value_for_grouping(attribute),
                    self._cookie_tolerance,
                )
                if flag is not None:
                    flags.append(flag)
        if ip_address:
            for attribute in self._ip_attributes:
                flag = self._observe_one(
                    "ip",
                    ip_address,
                    attribute,
                    fingerprint.value_for_grouping(attribute),
                    self._ip_tolerance,
                )
                if flag is not None:
                    flags.append(flag)
        return flags

    # -- batch API ------------------------------------------------------------------

    def evaluate_store(self, store: RequestStore) -> Dict[int, List[TemporalFlag]]:
        """Evaluate a whole store in timestamp order.

        Returns a mapping from ``request_id`` to the flags raised by that
        request (requests that raised none are omitted).  Detector state is
        reset first so the evaluation is self-contained.
        """

        self.reset()
        flagged: Dict[int, List[TemporalFlag]] = {}
        for record in store.sorted_by_time():
            flags = self.observe(
                record.request.fingerprint,
                cookie=record.cookie,
                ip_address=record.request.ip_address,
            )
            if flags:
                flagged[record.request.request_id] = flags
        return flagged

    def flagged_request_ids(self, store: RequestStore) -> Set[int]:
        """The request ids flagged when evaluating *store*."""

        return set(self.evaluate_store(store))
