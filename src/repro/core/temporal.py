"""Temporal inconsistency detection (Section 7.2).

A temporal inconsistency is a change, across requests from the same device,
of an attribute that cannot change for a real device.  Devices are
identified two ways, exactly as in the paper:

* the honey site's first-party **cookie** — immutable hardware/software
  attributes (platform, CPU core count, device memory, …) must not vary
  across requests carrying the same cookie;
* the **IP address** — the set of browser timezones reported from one
  address must not keep growing (a household has one, maybe two zones).

The detector is streaming: requests are processed in timestamp order and a
request is flagged when it *increases* the number of distinct values of a
tracked attribute for its device key, mirroring the paper's "if an incoming
request increases the number of unique attribute values associated with
previous identifiers, we consider that request to be temporally
inconsistent".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.honeysite.storage import RequestStore

#: Immutable attributes tracked per cookie by default (Section 7.2 names
#: hardware concurrency, device memory and the platform example of §6.3).
DEFAULT_COOKIE_ATTRIBUTES: Tuple[Attribute, ...] = (
    Attribute.PLATFORM,
    Attribute.HARDWARE_CONCURRENCY,
    Attribute.DEVICE_MEMORY,
    Attribute.MAX_TOUCH_POINTS,
    Attribute.COLOR_DEPTH,
)

#: Attributes tracked per IP address by default.
DEFAULT_IP_ATTRIBUTES: Tuple[Attribute, ...] = (Attribute.TIMEZONE,)

#: How many distinct values are tolerated per (device, attribute) before a
#: further new value is considered inconsistent.  1 means "any change is
#: inconsistent" (the paper's rule for cookie-keyed attributes); the IP key
#: tolerates 2 zones (e.g. a laptop commuting between home and office).
DEFAULT_COOKIE_TOLERANCE = 1
DEFAULT_IP_TOLERANCE = 2


class TemporalStreamState:
    """Per-device seen-state carried across micro-batches.

    The streaming subsystem (:mod:`repro.stream`) scores traffic batch by
    batch; temporal detection is the one stateful part, so its state lives
    in an explicit object handed back to
    :meth:`TemporalInconsistencyDetector.observe_table` on every batch
    instead of being rebuilt from the whole history.  Keys are the decoded
    device identifiers (cookie / address *strings*), never table-local
    value codes, so state survives vocabulary growth and is meaningful
    across any sequence of tables.
    """

    __slots__ = ("seen",)

    def __init__(self):
        #: (key_kind, key, attribute) -> observed values, insertion-ordered
        #: (a dict-as-ordered-set, exactly like the detector's ``_seen``).
        self.seen: Dict[Tuple[str, str, Attribute], Dict[object, None]] = {}

    @property
    def tracked_devices(self) -> int:
        """Number of distinct (device key, attribute) entries tracked."""

        return len(self.seen)

    def observed_values(self) -> int:
        """Total distinct values recorded across all tracked entries."""

        return sum(len(values) for values in self.seen.values())


@dataclass(frozen=True)
class TemporalFlag:
    """Why one request was considered temporally inconsistent."""

    key_kind: str          # "cookie" or "ip"
    key: str
    attribute: Attribute
    previous_values: Tuple[object, ...]
    new_value: object

    def describe(self) -> str:
        return (
            f"{self.key_kind}={self.key!r}: {self.attribute.value} changed to "
            f"{self.new_value!r} after {list(self.previous_values)!r}"
        )


class TemporalInconsistencyDetector:
    """Streaming detector of temporal inconsistencies."""

    def __init__(
        self,
        *,
        cookie_attributes: Sequence[Attribute] = DEFAULT_COOKIE_ATTRIBUTES,
        ip_attributes: Sequence[Attribute] = DEFAULT_IP_ATTRIBUTES,
        cookie_tolerance: int = DEFAULT_COOKIE_TOLERANCE,
        ip_tolerance: int = DEFAULT_IP_TOLERANCE,
    ):
        if cookie_tolerance < 1 or ip_tolerance < 1:
            raise ValueError("tolerances must be at least 1")
        self._cookie_attributes = tuple(cookie_attributes)
        self._ip_attributes = tuple(ip_attributes)
        self._cookie_tolerance = cookie_tolerance
        self._ip_tolerance = ip_tolerance
        #: (key_kind, key, attribute) -> observed values, insertion-ordered.
        #: A dict-as-ordered-set rather than a set so that
        #: ``TemporalFlag.previous_values`` lists values in observation
        #: order — deterministic across interpreter runs and worker
        #: processes, where string hash randomisation would otherwise
        #: shuffle set iteration order.
        self._seen: Dict[Tuple[str, str, Attribute], Dict[object, None]] = {}

    @property
    def tracked_attributes(self) -> Tuple[Attribute, ...]:
        """Every attribute this detector tracks (cookie- then IP-keyed)."""

        return self._cookie_attributes + self._ip_attributes

    def clone(self) -> "TemporalInconsistencyDetector":
        """A detector with the same configuration and fresh (empty) state.

        Classification shards each stream their own device-closed row
        group; with a thread executor they would otherwise share — and
        corrupt — one ``_seen`` table.
        """

        return TemporalInconsistencyDetector(
            cookie_attributes=self._cookie_attributes,
            ip_attributes=self._ip_attributes,
            cookie_tolerance=self._cookie_tolerance,
            ip_tolerance=self._ip_tolerance,
        )

    def reset(self) -> None:
        """Forget all per-device state."""

        self._seen.clear()

    # -- streaming API -----------------------------------------------------------

    def _observe_one(
        self,
        key_kind: str,
        key: str,
        attribute: Attribute,
        value: object,
        tolerance: int,
    ) -> Optional[TemporalFlag]:
        if value is None or not key:
            return None
        seen = self._seen.setdefault((key_kind, key, attribute), {})
        if value in seen:
            return None
        flag: Optional[TemporalFlag] = None
        if len(seen) >= tolerance:
            flag = TemporalFlag(
                key_kind=key_kind,
                key=key,
                attribute=attribute,
                previous_values=tuple(seen),
                new_value=value,
            )
        seen[value] = None
        return flag

    def observe(
        self,
        fingerprint: Fingerprint,
        *,
        cookie: Optional[str],
        ip_address: Optional[str],
    ) -> List[TemporalFlag]:
        """Process one request; returns the flags it raised (possibly empty).

        The observation is recorded regardless of whether it was flagged,
        so a later request re-using an already-flagged value is *not*
        flagged again (only increases are flagged).
        """

        flags: List[TemporalFlag] = []
        if cookie:
            for attribute in self._cookie_attributes:
                flag = self._observe_one(
                    "cookie",
                    cookie,
                    attribute,
                    fingerprint.value_for_grouping(attribute),
                    self._cookie_tolerance,
                )
                if flag is not None:
                    flags.append(flag)
        if ip_address:
            for attribute in self._ip_attributes:
                flag = self._observe_one(
                    "ip",
                    ip_address,
                    attribute,
                    fingerprint.value_for_grouping(attribute),
                    self._ip_tolerance,
                )
                if flag is not None:
                    flags.append(flag)
        return flags

    # -- batch API ------------------------------------------------------------------

    def evaluate_store(self, store: RequestStore) -> Dict[int, List[TemporalFlag]]:
        """Evaluate a whole store in timestamp order.

        Returns a mapping from ``request_id`` to the flags raised by that
        request (requests that raised none are omitted).  Detector state is
        reset first so the evaluation is self-contained.
        """

        self.reset()
        flagged: Dict[int, List[TemporalFlag]] = {}
        for record in store.sorted_by_time():
            flags = self.observe(
                record.request.fingerprint,
                cookie=record.cookie,
                ip_address=record.request.ip_address,
            )
            if flags:
                flagged[record.request.request_id] = flags
        return flagged

    def evaluate_table(self, table) -> Dict[int, List[TemporalFlag]]:
        """Evaluate a columnar table in timestamp order.

        The streaming semantics are exactly :meth:`evaluate_store`'s —
        same stable time ordering, same per-key state — but the stream runs
        over the table's integer code columns: per-device state keys on
        (device code, attribute) and records value *codes*, decoding to the
        underlying values only when a flag actually fires.  No fingerprint
        object is touched (and none needs to cross a process boundary when
        shards classify in parallel).  Like :meth:`evaluate_store` this is
        self-contained: detector state is reset first, and the streaming
        ``observe`` state is left cleared afterwards.
        """

        if table.timestamps is None or table.cookie_codes is None or table.ip_codes is None:
            raise ValueError("temporal evaluation requires a table built with from_store")
        self.reset()

        time_order = np.argsort(table.timestamps, kind="stable")
        time_rank = np.empty(table.n_rows, dtype=np.int64)
        time_rank[time_order] = np.arange(table.n_rows)

        # row -> flag, one map per (key kind, attribute) in the order
        # :meth:`observe` raises flags (cookie attributes, then IP ones).
        flag_maps: List[Dict[int, TemporalFlag]] = []
        for kind, key_codes, key_values, attributes, tolerance in (
            ("cookie", table.cookie_codes, table.cookie_values,
             self._cookie_attributes, self._cookie_tolerance),
            ("ip", table.ip_codes, table.ip_values,
             self._ip_attributes, self._ip_tolerance),
        ):
            # A key decoding to a falsy string ("" cookie) tracks nothing,
            # exactly like the falsy-key guard in :meth:`observe`.
            key_ok = np.array([bool(value) for value in key_values], dtype=bool)
            key_valid = key_codes >= 0
            if key_ok.size:
                key_valid = key_valid & key_ok[np.where(key_valid, key_codes, 0)]
            # else: every key is missing (e.g. anonymous traffic with no
            # cookies at all) and key_valid is already all-False.
            for attribute in attributes:
                table.require_attribute(attribute, "tracked attribute")
                codes = table.codes_of(attribute)
                values = table.values_of(attribute)
                valid = key_valid & (codes >= 0)
                flag_maps.append(
                    self._stream_one_column(
                        kind, key_codes, key_values, attribute, codes, values,
                        valid, tolerance, time_rank,
                    )
                )

        # Per-row assembly: iterating the maps in (key kind, attribute)
        # order appends each row's flags in exactly the order
        # :meth:`observe` would return them.
        per_row: Dict[int, List[TemporalFlag]] = {}
        for flag_map in flag_maps:
            for row, flag in flag_map.items():
                per_row.setdefault(row, []).append(flag)
        request_ids = table.request_ids
        return {
            int(request_ids[row]): per_row[row]
            for row in sorted(per_row, key=lambda row: time_rank[row])
        }

    @staticmethod
    def _stream_one_column(
        kind: str,
        key_codes: np.ndarray,
        key_values: List[str],
        attribute: Attribute,
        codes: np.ndarray,
        values: List[object],
        valid: np.ndarray,
        tolerance: int,
        time_rank: np.ndarray,
    ) -> Dict[int, "TemporalFlag"]:
        """Stream one (key kind, attribute) column; returns row -> flag.

        State is independent per (key, attribute), so a key whose column
        never exceeds ``tolerance`` distinct value codes can neither flag
        nor influence any other key — those rows are filtered out
        vectorized, and only the remaining "interesting" keys stream
        through the per-row Python loop in timestamp order.
        """

        rows = np.nonzero(valid)[0]
        if rows.size == 0:
            return {}
        n_values = len(values)
        combined = key_codes[rows].astype(np.int64) * n_values + codes[rows]
        distinct = np.bincount(
            np.unique(combined) // n_values, minlength=len(key_values)
        )
        interesting = distinct > tolerance
        rows = rows[interesting[key_codes[rows]]]
        if rows.size == 0:
            return {}
        rows = rows[np.argsort(time_rank[rows], kind="stable")]

        flags: Dict[int, TemporalFlag] = {}
        state: Dict[int, Dict[int, None]] = {}
        for row in rows:
            key_code = int(key_codes[row])
            value_code = int(codes[row])
            seen = state.setdefault(key_code, {})
            if value_code in seen:
                continue
            if len(seen) >= tolerance:
                flags[int(row)] = TemporalFlag(
                    key_kind=kind,
                    key=key_values[key_code],
                    attribute=attribute,
                    previous_values=tuple(values[code] for code in seen),
                    new_value=values[value_code],
                )
            seen[value_code] = None
        return flags

    # -- incremental (streaming) API ---------------------------------------------

    def new_stream_state(self) -> TemporalStreamState:
        """Fresh cross-batch seen-state for :meth:`observe_table`."""

        return TemporalStreamState()

    def observe_table(
        self, table, state: TemporalStreamState
    ) -> Dict[int, List[TemporalFlag]]:
        """Stream one columnar table (a micro-batch) through *state*.

        The incremental counterpart of :meth:`evaluate_table`: per-device
        seen-state lives in the caller-held *state* and carries across
        calls instead of being reset, so feeding a table's row slices
        through consecutive calls in timestamp order raises exactly the
        flags a single :meth:`evaluate_table` over the whole table would.
        State keys on the *decoded* device identifiers and attribute
        values, never on table-local codes, so any sequence of tables —
        including the growing-vocabulary batches the stream ingestor
        emits — shares one coherent state.

        Rows are processed in timestamp order within the batch; ordering
        across batches is the caller's contract (the replay driver feeds
        batches in global timestamp order).  Returns ``request_id`` →
        flags for the rows this batch flagged.
        """

        if table.timestamps is None or table.cookie_codes is None or table.ip_codes is None:
            raise ValueError("temporal observation requires a table built with from_store")

        time_order = np.argsort(table.timestamps, kind="stable")
        time_rank = np.empty(table.n_rows, dtype=np.int64)
        time_rank[time_order] = np.arange(table.n_rows)

        # One map per (key kind, attribute) in the order :meth:`observe`
        # raises flags; state is independent per (key, attribute), so
        # streaming column-wise is equivalent to row-wise observation.
        flag_maps: List[Dict[int, TemporalFlag]] = []
        seen_map = state.seen
        for kind, key_codes, key_values, attributes, tolerance in (
            ("cookie", table.cookie_codes, table.cookie_values,
             self._cookie_attributes, self._cookie_tolerance),
            ("ip", table.ip_codes, table.ip_values,
             self._ip_attributes, self._ip_tolerance),
        ):
            key_valid = key_codes >= 0
            for attribute in attributes:
                table.require_attribute(attribute, "tracked attribute")
                codes = table.codes_of(attribute)
                values = table.values_of(attribute)
                rows = np.nonzero(key_valid & (codes >= 0))[0]
                flags: Dict[int, TemporalFlag] = {}
                if rows.size:
                    rows = rows[np.argsort(time_rank[rows], kind="stable")]
                    row_keys = key_codes[rows].tolist()
                    row_values = codes[rows].tolist()
                    for row, key_code, value_code in zip(
                        rows.tolist(), row_keys, row_values
                    ):
                        key = key_values[key_code]
                        if not key:
                            # Falsy keys ("" cookie) track nothing, exactly
                            # like the falsy-key guard in :meth:`observe`.
                            continue
                        value = values[value_code]
                        state_key = (kind, key, attribute)
                        seen = seen_map.get(state_key)
                        if seen is None:
                            seen = {}
                            seen_map[state_key] = seen
                        if value in seen:
                            continue
                        if len(seen) >= tolerance:
                            flags[row] = TemporalFlag(
                                key_kind=kind,
                                key=key,
                                attribute=attribute,
                                previous_values=tuple(seen),
                                new_value=value,
                            )
                        seen[value] = None
                flag_maps.append(flags)

        per_row: Dict[int, List[TemporalFlag]] = {}
        for flag_map in flag_maps:
            for row, flag in flag_map.items():
                per_row.setdefault(row, []).append(flag)
        request_ids = table.request_ids
        return {
            int(request_ids[row]): per_row[row]
            for row in sorted(per_row, key=lambda row: time_rank[row])
        }

    def flagged_request_ids(self, store: RequestStore) -> Set[int]:
        """The request ids flagged when evaluating *store*."""

        return set(self.evaluate_store(store))
