"""End-to-end FP-Inconsistent pipeline.

Chains corpus → rule mining → classification → evaluation, producing the
numbers of Tables 3 and 4, the real-user true-negative rate of Section 7.4
and the generalisation check of Section 7.3 from one call.  The benchmarks
and the quickstart example are thin wrappers around this module.

Two interchangeable engines back the evaluation:

* ``"columnar"`` (default) extracts each request store once into a
  :class:`~repro.core.columnar.ColumnarTable`, mines pair statistics
  vectorized, matches the filter list through its compiled code index and
  can shard both mining (by attribute pair) and classification (by
  device-closed row groups) over the
  :func:`repro.analysis.engine.map_shards` worker pool;
* ``"legacy"`` is the object-at-a-time reference implementation.

Both produce identical filter lists and verdicts for any worker count and
either executor kind — only wall-clock time differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.detector import FPInconsistent, InconsistencyVerdict, validate_engine
from repro.core.evaluation import (
    DetectionRates,
    GeneralizationResult,
    ServiceImprovement,
    _StoreColumns,
    evaluate_generalization,
    evaluate_table3,
    evaluate_table4,
    true_negative_rate,
)
from repro.core.rules import FilterList
from repro.core.spatial import SpatialInconsistencyMiner, SpatialMinerConfig
from repro.core.temporal import TemporalInconsistencyDetector
from repro.honeysite.storage import RequestStore


_RULES_MINED = obs.gauge(
    "repro_pipeline_rules", "Rules in the most recently mined filter list."
)
_VERDICTS = obs.counter(
    "repro_pipeline_verdicts_total", "Verdicts produced, by evaluated subset."
)


@dataclass
class PipelineResult:
    """Everything the Section 7 evaluation produces."""

    filter_list: FilterList
    verdicts: Dict[int, InconsistencyVerdict]
    table4: Dict[str, DetectionRates]
    table3: Tuple[ServiceImprovement, ...]
    real_user_tnr: Optional[float] = None
    generalization: Optional[Dict[str, GeneralizationResult]] = None
    #: how each columnar table was obtained: "reused" (pre-extracted table
    #: accepted — e.g. the corpus cache's npz sidecar) or "extracted"
    table_sources: Dict[str, str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.table_sources is None:
            self.table_sources = {}

    @property
    def evasion_reductions(self) -> Dict[str, float]:
        """Relative evasion reduction per detector (headline numbers)."""

        return {name: rates.evasion_reduction for name, rates in self.table4.items()}


class FPInconsistentPipeline:
    """Mines rules from bot traffic and evaluates them end to end.

    Parameters
    ----------
    miner_config / temporal:
        Forwarded to the underlying :class:`FPInconsistent` detector.
    engine:
        ``"columnar"`` (vectorized, default) or ``"legacy"`` (reference).
    workers / executor:
        Shard fan-out for the columnar engine; ``None`` reads the
        ``REPRO_WORKERS`` / ``REPRO_EXECUTOR`` environment knobs (the same
        ones the corpus engine honours), falling back to 1 worker.  The
        legacy engine ignores both.
    """

    def __init__(
        self,
        *,
        miner_config: Optional[SpatialMinerConfig] = None,
        temporal: Optional[TemporalInconsistencyDetector] = None,
        engine: str = "columnar",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ):
        self._miner_config = miner_config
        self._temporal = temporal
        self._engine = validate_engine(engine)
        self._workers = workers
        self._executor = executor

    def _build_detector(self) -> FPInconsistent:
        miner = SpatialInconsistencyMiner(config=self._miner_config)
        temporal = self._temporal if self._temporal is not None else TemporalInconsistencyDetector()
        return FPInconsistent(miner=miner, temporal=temporal)

    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            workers = self._workers
        if workers is None:
            from repro.analysis.engine import default_workers

            workers = default_workers()
        workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers

    def run(
        self,
        bot_store: RequestStore,
        *,
        real_user_store: Optional[RequestStore] = None,
        check_generalization: bool = False,
        generalization_seed: int = 0,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        bot_table=None,
        real_user_table=None,
    ) -> PipelineResult:
        """Run the full evaluation.

        Parameters
        ----------
        bot_store:
            Requests recorded from the bot services (ground-truth bots).
        real_user_store:
            Requests from real users; when given, the true-negative rate of
            Section 7.4 is computed with the same mined rules.
        check_generalization:
            When ``True``, additionally performs the 80/20 train/test check
            of Section 7.3 (more expensive: rules are mined twice).
        workers / executor:
            Per-call override of the constructor's shard fan-out.
        bot_table / real_user_table:
            Pre-extracted :class:`~repro.core.columnar.ColumnarTable` of
            the corresponding store (the vectorized corpus engine emits
            them; the corpus cache persists them as ``.npz`` sidecars).  A
            table is used only when it carries every attribute this
            detector reads — otherwise the store is extracted as usual —
            so results never depend on where the table came from.
        """

        engine = self._engine
        workers = self._resolve_workers(workers)
        executor = executor if executor is not None else self._executor

        detector = self._build_detector()
        tracer = obs.tracer()
        table_sources: Dict[str, str] = {}
        if engine == "legacy":
            with tracer.span("pipeline.mine", engine=engine):
                detector.fit(bot_store, engine="legacy")
            with tracer.span("pipeline.classify", engine=engine, subset="bots"):
                verdicts = detector.classify_store(bot_store, engine="legacy")
            table = None
        else:
            # resolve_table extracts through the detector (not bare
            # ColumnarTable.from_store): it appends the tracked temporal
            # attributes, so a custom temporal configuration keeps the
            # columnar/legacy verdicts identical.
            with tracer.span("pipeline.extract", subset="bots") as span:
                table, table_sources["bots"] = detector.resolve_table(bot_store, bot_table)
                span.set(source=table_sources["bots"], rows=table.n_rows)
            with tracer.span("pipeline.mine", engine=engine, workers=workers) as span:
                detector.fit_table(table, workers=workers, executor=executor)
                span.set(rules=len(detector.filter_list))
            with tracer.span(
                "pipeline.classify", engine=engine, subset="bots", workers=workers
            ):
                verdicts = detector.classify_table(table, workers=workers, executor=executor)
        _RULES_MINED.set(len(detector.filter_list))
        _VERDICTS.inc(len(verdicts), subset="bots")

        with tracer.span("pipeline.evaluate"):
            columns = _StoreColumns(bot_store, verdicts)
            result = PipelineResult(
                filter_list=detector.filter_list,
                verdicts=verdicts,
                table4=evaluate_table4(bot_store, verdicts, _columns=columns),
                table3=evaluate_table3(bot_store, verdicts, _columns=columns),
                table_sources=table_sources,
            )

        if real_user_store is not None and len(real_user_store) > 0:
            with tracer.span("pipeline.classify", engine=engine, subset="real_users"):
                if engine == "columnar":
                    user_table, table_sources["real_users"] = detector.resolve_table(
                        real_user_store, real_user_table
                    )
                    user_verdicts = detector.classify_table(
                        user_table, workers=workers, executor=executor
                    )
                else:
                    user_verdicts = detector.classify_store(
                        real_user_store, engine=engine, workers=workers, executor=executor
                    )
            _VERDICTS.inc(len(user_verdicts), subset="real_users")
            result.real_user_tnr = true_negative_rate(real_user_store, user_verdicts)

        if check_generalization:
            with tracer.span("pipeline.generalization"):
                result.generalization = evaluate_generalization(
                    bot_store,
                    seed=generalization_seed,
                    detector_factory=self._build_detector,
                    engine=engine,
                    workers=workers,
                    executor=executor,
                    table=table,
                )
        return result
