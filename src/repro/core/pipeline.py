"""End-to-end FP-Inconsistent pipeline.

Chains corpus → rule mining → classification → evaluation, producing the
numbers of Tables 3 and 4, the real-user true-negative rate of Section 7.4
and the generalisation check of Section 7.3 from one call.  The benchmarks
and the quickstart example are thin wrappers around this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.core.evaluation import (
    DetectionRates,
    GeneralizationResult,
    ServiceImprovement,
    evaluate_generalization,
    evaluate_table3,
    evaluate_table4,
    true_negative_rate,
)
from repro.core.rules import FilterList
from repro.core.spatial import SpatialInconsistencyMiner, SpatialMinerConfig
from repro.core.temporal import TemporalInconsistencyDetector
from repro.honeysite.storage import RequestStore


@dataclass
class PipelineResult:
    """Everything the Section 7 evaluation produces."""

    filter_list: FilterList
    verdicts: Dict[int, InconsistencyVerdict]
    table4: Dict[str, DetectionRates]
    table3: Tuple[ServiceImprovement, ...]
    real_user_tnr: Optional[float] = None
    generalization: Optional[Dict[str, GeneralizationResult]] = None

    @property
    def evasion_reductions(self) -> Dict[str, float]:
        """Relative evasion reduction per detector (headline numbers)."""

        return {name: rates.evasion_reduction for name, rates in self.table4.items()}


class FPInconsistentPipeline:
    """Mines rules from bot traffic and evaluates them end to end."""

    def __init__(
        self,
        *,
        miner_config: Optional[SpatialMinerConfig] = None,
        temporal: Optional[TemporalInconsistencyDetector] = None,
    ):
        self._miner_config = miner_config
        self._temporal = temporal

    def _build_detector(self) -> FPInconsistent:
        miner = SpatialInconsistencyMiner(config=self._miner_config)
        temporal = self._temporal if self._temporal is not None else TemporalInconsistencyDetector()
        return FPInconsistent(miner=miner, temporal=temporal)

    def run(
        self,
        bot_store: RequestStore,
        *,
        real_user_store: Optional[RequestStore] = None,
        check_generalization: bool = False,
        generalization_seed: int = 0,
    ) -> PipelineResult:
        """Run the full evaluation.

        Parameters
        ----------
        bot_store:
            Requests recorded from the bot services (ground-truth bots).
        real_user_store:
            Requests from real users; when given, the true-negative rate of
            Section 7.4 is computed with the same mined rules.
        check_generalization:
            When ``True``, additionally performs the 80/20 train/test check
            of Section 7.3 (more expensive: rules are mined twice).
        """

        detector = self._build_detector()
        detector.fit(bot_store)
        verdicts = detector.classify_store(bot_store)

        result = PipelineResult(
            filter_list=detector.filter_list,
            verdicts=verdicts,
            table4=evaluate_table4(bot_store, verdicts),
            table3=evaluate_table3(bot_store, verdicts),
        )

        if real_user_store is not None and len(real_user_store) > 0:
            user_verdicts = detector.classify_store(real_user_store)
            result.real_user_tnr = true_negative_rate(real_user_store, user_verdicts)

        if check_generalization:
            result.generalization = evaluate_generalization(
                bot_store,
                seed=generalization_seed,
                detector_factory=self._build_detector,
            )
        return result
