"""Evaluation of FP-Inconsistent against the anti-bot services.

Implements the Section 7.3 / 7.4 measurements:

* overall detection rate of each anti-bot service with and without the
  inconsistency rules (Table 4: none / spatial / temporal / combined),
* the per-service improvement (Table 3),
* the relative reduction in evading traffic,
* the true-negative rate on real-user traffic, and
* the 80/20 generalisation check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.honeysite.storage import RequestStore, split_rows

DETECTOR_NAMES: Tuple[str, str] = ("DataDome", "BotD")


@dataclass(frozen=True)
class DetectionRates:
    """Detection rate of one anti-bot service under each rule setting (one
    column group of Table 4)."""

    detector: str
    baseline: float
    with_spatial: float
    with_temporal: float
    with_combined: float

    @property
    def evasion_reduction(self) -> float:
        """Relative reduction of evading traffic achieved by the combined
        rules (the headline 44.95% / 48.11% numbers)."""

        baseline_evasion = 1.0 - self.baseline
        if baseline_evasion <= 0.0:
            return 0.0
        combined_evasion = 1.0 - self.with_combined
        return (baseline_evasion - combined_evasion) / baseline_evasion


@dataclass(frozen=True)
class ServiceImprovement:
    """One row of Table 3: a service's detection rates with and without
    FP-Inconsistent, for both anti-bot services."""

    service: str
    num_requests: int
    datadome_baseline: float
    datadome_improved: float
    botd_baseline: float
    botd_improved: float


class _StoreColumns:
    """Per-request boolean columns of one store/verdict pairing.

    The evaluation tables re-derive the same three facts per request —
    which services it evaded and whether the rules flagged it spatially or
    temporally — once per (service, detector, rule-setting) combination.
    Extracting them once into numpy arrays turns every table cell into a
    masked count.  All rates stay integer-count ratios, so the floats are
    bit-identical to the per-record loops'.
    """

    def __init__(self, store: RequestStore, verdicts: Dict[int, InconsistencyVerdict]):
        # Every column routes through the store's columnar accessors
        # (request_id_array / evaded_rows / source_rows): a lazy
        # columnar-backed store answers them from its arrays without
        # materialising a single record object, an object store walks its
        # records exactly as this constructor used to.
        self.n = len(store)
        spatial_ids, temporal_ids = _verdict_id_sets(verdicts)
        request_ids = store.request_id_array().tolist()
        self.spatial = np.fromiter(
            (request_id in spatial_ids for request_id in request_ids), bool, self.n
        )
        self.temporal = np.fromiter(
            (request_id in temporal_ids for request_id in request_ids), bool, self.n
        )
        self.evaded = {name: store.evaded_rows(name) for name in DETECTOR_NAMES}
        self.source_codes, _source_names, self.source_index = store.source_rows()

    def improved_count(self, detector: str, hits: np.ndarray, mask=None) -> int:
        """Requests detected once the service's decision is OR-ed with *hits*."""

        evaded = self.evaded[detector]
        if mask is not None:
            return int(np.count_nonzero(mask & ~evaded)) + int(
                np.count_nonzero(mask & evaded & hits)
            )
        return int(np.count_nonzero(~evaded)) + int(np.count_nonzero(evaded & hits))


def _verdict_id_sets(verdicts: Dict[int, InconsistencyVerdict]):
    """Request-id sets of spatially / temporally inconsistent verdicts.

    Computed once per evaluation: the Table 3 and Table 4 loops consult the
    same verdict dict for every (service, detector, rule-setting)
    combination, and set membership is cheaper than re-walking verdict
    attribute chains per request per combination.
    """

    spatial = set()
    temporal = set()
    for request_id, verdict in verdicts.items():
        if verdict.spatially_inconsistent:
            spatial.add(request_id)
        if verdict.temporally_inconsistent:
            temporal.add(request_id)
    return spatial, temporal


def _improved_detection_rate(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    detector: str,
    *,
    use_spatial: bool,
    use_temporal: bool,
    id_sets=None,
) -> float:
    """Detection rate when the service's decision is OR-ed with the rules."""

    if len(store) == 0:
        return 0.0
    spatial_ids, temporal_ids = id_sets if id_sets is not None else _verdict_id_sets(verdicts)
    detected = 0
    for record in store:
        if not record.evaded(detector):
            detected += 1
            continue
        request_id = record.request.request_id
        hit = (use_spatial and request_id in spatial_ids) or (
            use_temporal and request_id in temporal_ids
        )
        if hit:
            detected += 1
    return detected / len(store)


def _detection_rates_from_columns(columns: _StoreColumns, detector: str) -> DetectionRates:
    n = columns.n
    if n == 0:
        return DetectionRates(
            detector=detector, baseline=0.0, with_spatial=0.0, with_temporal=0.0, with_combined=0.0
        )
    evaded_count = int(np.count_nonzero(columns.evaded[detector]))
    return DetectionRates(
        detector=detector,
        # Matches ``store.detection_rate``: 1 - evasion rate, not detected/n.
        baseline=1.0 - evaded_count / n,
        with_spatial=columns.improved_count(detector, columns.spatial) / n,
        with_temporal=columns.improved_count(detector, columns.temporal) / n,
        with_combined=columns.improved_count(detector, columns.spatial | columns.temporal) / n,
    )


def detection_rates(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    detector: str,
) -> DetectionRates:
    """Compute one Table 4 column group for *detector*."""

    return _detection_rates_from_columns(_StoreColumns(store, verdicts), detector)


def evaluate_table4(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    *,
    _columns: Optional[_StoreColumns] = None,
) -> Dict[str, DetectionRates]:
    """Table 4: detection rates under none/spatial/temporal/combined rules."""

    columns = _columns if _columns is not None else _StoreColumns(store, verdicts)
    return {name: _detection_rates_from_columns(columns, name) for name in DETECTOR_NAMES}


def evaluate_table3(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    *,
    services: Optional[Sequence[str]] = None,
    _columns: Optional[_StoreColumns] = None,
) -> Tuple[ServiceImprovement, ...]:
    """Table 3: per-service detection improvement for both detectors."""

    columns = _columns if _columns is not None else _StoreColumns(store, verdicts)
    if services is None:
        services = store.sources()
    combined = columns.spatial | columns.temporal
    rows = []
    for service in services:
        code = columns.source_index.get(service)
        if code is None:
            continue
        mask = columns.source_codes == code
        num_requests = int(np.count_nonzero(mask))
        if num_requests == 0:
            continue
        dd_evaded = int(np.count_nonzero(mask & columns.evaded["DataDome"]))
        botd_evaded = int(np.count_nonzero(mask & columns.evaded["BotD"]))
        rows.append(
            ServiceImprovement(
                service=service,
                num_requests=num_requests,
                datadome_baseline=1.0 - dd_evaded / num_requests,
                datadome_improved=columns.improved_count("DataDome", combined, mask)
                / num_requests,
                botd_baseline=1.0 - botd_evaded / num_requests,
                botd_improved=columns.improved_count("BotD", combined, mask) / num_requests,
            )
        )
    return tuple(rows)


def true_negative_rate(
    store: RequestStore, verdicts: Dict[int, InconsistencyVerdict]
) -> float:
    """Fraction of (human) requests in *store* not flagged by the rules."""

    if len(store) == 0:
        return 1.0
    flagged = 0
    for request_id in store.request_id_array().tolist():
        verdict = verdicts.get(request_id)
        if verdict and verdict.is_inconsistent:
            flagged += 1
    return 1.0 - flagged / len(store)


@dataclass(frozen=True)
class GeneralizationResult:
    """Section 7.3's 80/20 generalisation check."""

    detector: str
    train_detection_rate: float
    test_detection_rate: float

    @property
    def accuracy_drop(self) -> float:
        """Drop (in percentage points of detection rate) on held-out data."""

        return self.train_detection_rate - self.test_detection_rate


def evaluate_generalization(
    store: RequestStore,
    *,
    train_fraction: float = 0.8,
    seed: int = 0,
    detector_factory=None,
    engine: str = "columnar",
    workers: int = 1,
    executor=None,
    table=None,
) -> Dict[str, GeneralizationResult]:
    """Mine rules on ``train_fraction`` of the corpus, evaluate on the rest.

    Returns per-detector train/test combined detection rates.  The paper
    reports a drop of 0.23 (DataDome) and 0.42 (BotD) percentage points.
    *engine*, *workers* and *executor* select the detection engine exactly
    as in :meth:`FPInconsistent.fit` / :meth:`FPInconsistent.classify_store`.

    On the columnar engine the split happens through
    :meth:`~repro.core.columnar.ColumnarTable.take` over one extraction of
    the whole store — or over *table*, when the caller (the pipeline)
    already holds it — instead of re-extracting the train and test stores
    from scratch; results are identical either way.
    """

    rng = np.random.default_rng(seed)
    fpi = detector_factory() if detector_factory is not None else FPInconsistent()
    if engine == "columnar":
        train_rows, test_rows = split_rows(len(store), train_fraction, rng)
        records = store.records
        train_store = RequestStore(records[int(i)] for i in train_rows)
        test_store = RequestStore(records[int(i)] for i in test_rows)
        if table is None or not fpi.accepts_table(table, store):
            table = fpi.extract_table(store)
        train_table = table.take(train_rows)
        test_table = table.take(test_rows)
        fpi.fit_table(train_table, workers=workers, executor=executor)
        train_verdicts = fpi.classify_table(
            train_table, workers=workers, executor=executor
        )
        test_verdicts = fpi.classify_table(test_table, workers=workers, executor=executor)
    else:
        train_store, test_store = store.split(train_fraction, rng)
        fpi.fit(train_store, engine=engine, workers=workers, executor=executor)
        train_verdicts = fpi.classify_store(
            train_store, engine=engine, workers=workers, executor=executor
        )
        test_verdicts = fpi.classify_store(
            test_store, engine=engine, workers=workers, executor=executor
        )
    results = {}
    train_id_sets = _verdict_id_sets(train_verdicts)
    test_id_sets = _verdict_id_sets(test_verdicts)
    for name in DETECTOR_NAMES:
        results[name] = GeneralizationResult(
            detector=name,
            train_detection_rate=_improved_detection_rate(
                train_store, train_verdicts, name,
                use_spatial=True, use_temporal=True, id_sets=train_id_sets,
            ),
            test_detection_rate=_improved_detection_rate(
                test_store, test_verdicts, name,
                use_spatial=True, use_temporal=True, id_sets=test_id_sets,
            ),
        )
    return results
