"""Evaluation of FP-Inconsistent against the anti-bot services.

Implements the Section 7.3 / 7.4 measurements:

* overall detection rate of each anti-bot service with and without the
  inconsistency rules (Table 4: none / spatial / temporal / combined),
* the per-service improvement (Table 3),
* the relative reduction in evading traffic,
* the true-negative rate on real-user traffic, and
* the 80/20 generalisation check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.honeysite.storage import RequestStore

DETECTOR_NAMES: Tuple[str, str] = ("DataDome", "BotD")


@dataclass(frozen=True)
class DetectionRates:
    """Detection rate of one anti-bot service under each rule setting (one
    column group of Table 4)."""

    detector: str
    baseline: float
    with_spatial: float
    with_temporal: float
    with_combined: float

    @property
    def evasion_reduction(self) -> float:
        """Relative reduction of evading traffic achieved by the combined
        rules (the headline 44.95% / 48.11% numbers)."""

        baseline_evasion = 1.0 - self.baseline
        if baseline_evasion <= 0.0:
            return 0.0
        combined_evasion = 1.0 - self.with_combined
        return (baseline_evasion - combined_evasion) / baseline_evasion


@dataclass(frozen=True)
class ServiceImprovement:
    """One row of Table 3: a service's detection rates with and without
    FP-Inconsistent, for both anti-bot services."""

    service: str
    num_requests: int
    datadome_baseline: float
    datadome_improved: float
    botd_baseline: float
    botd_improved: float


def _improved_detection_rate(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    detector: str,
    *,
    use_spatial: bool,
    use_temporal: bool,
) -> float:
    """Detection rate when the service's decision is OR-ed with the rules."""

    if len(store) == 0:
        return 0.0
    detected = 0
    for record in store:
        if not record.evaded(detector):
            detected += 1
            continue
        verdict = verdicts.get(record.request.request_id)
        if verdict is None:
            continue
        hit = (use_spatial and verdict.spatially_inconsistent) or (
            use_temporal and verdict.temporally_inconsistent
        )
        if hit:
            detected += 1
    return detected / len(store)


def detection_rates(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    detector: str,
) -> DetectionRates:
    """Compute one Table 4 column group for *detector*."""

    return DetectionRates(
        detector=detector,
        baseline=store.detection_rate(detector),
        with_spatial=_improved_detection_rate(
            store, verdicts, detector, use_spatial=True, use_temporal=False
        ),
        with_temporal=_improved_detection_rate(
            store, verdicts, detector, use_spatial=False, use_temporal=True
        ),
        with_combined=_improved_detection_rate(
            store, verdicts, detector, use_spatial=True, use_temporal=True
        ),
    )


def evaluate_table4(
    store: RequestStore, verdicts: Dict[int, InconsistencyVerdict]
) -> Dict[str, DetectionRates]:
    """Table 4: detection rates under none/spatial/temporal/combined rules."""

    return {name: detection_rates(store, verdicts, name) for name in DETECTOR_NAMES}


def evaluate_table3(
    store: RequestStore,
    verdicts: Dict[int, InconsistencyVerdict],
    *,
    services: Optional[Sequence[str]] = None,
) -> Tuple[ServiceImprovement, ...]:
    """Table 3: per-service detection improvement for both detectors."""

    if services is None:
        services = store.sources()
    rows = []
    for service in services:
        service_store = store.by_source(service)
        if len(service_store) == 0:
            continue
        rows.append(
            ServiceImprovement(
                service=service,
                num_requests=len(service_store),
                datadome_baseline=service_store.detection_rate("DataDome"),
                datadome_improved=_improved_detection_rate(
                    service_store, verdicts, "DataDome", use_spatial=True, use_temporal=True
                ),
                botd_baseline=service_store.detection_rate("BotD"),
                botd_improved=_improved_detection_rate(
                    service_store, verdicts, "BotD", use_spatial=True, use_temporal=True
                ),
            )
        )
    return tuple(rows)


def true_negative_rate(
    store: RequestStore, verdicts: Dict[int, InconsistencyVerdict]
) -> float:
    """Fraction of (human) requests in *store* not flagged by the rules."""

    if len(store) == 0:
        return 1.0
    flagged = sum(
        1
        for record in store
        if verdicts.get(record.request.request_id)
        and verdicts[record.request.request_id].is_inconsistent
    )
    return 1.0 - flagged / len(store)


@dataclass(frozen=True)
class GeneralizationResult:
    """Section 7.3's 80/20 generalisation check."""

    detector: str
    train_detection_rate: float
    test_detection_rate: float

    @property
    def accuracy_drop(self) -> float:
        """Drop (in percentage points of detection rate) on held-out data."""

        return self.train_detection_rate - self.test_detection_rate


def evaluate_generalization(
    store: RequestStore,
    *,
    train_fraction: float = 0.8,
    seed: int = 0,
    detector_factory=None,
) -> Dict[str, GeneralizationResult]:
    """Mine rules on ``train_fraction`` of the corpus, evaluate on the rest.

    Returns per-detector train/test combined detection rates.  The paper
    reports a drop of 0.23 (DataDome) and 0.42 (BotD) percentage points.
    """

    rng = np.random.default_rng(seed)
    train_store, test_store = store.split(train_fraction, rng)
    fpi = detector_factory() if detector_factory is not None else FPInconsistent()
    fpi.fit(train_store)
    train_verdicts = fpi.classify_store(train_store)
    test_verdicts = fpi.classify_store(test_store)
    results = {}
    for name in DETECTOR_NAMES:
        results[name] = GeneralizationResult(
            detector=name,
            train_detection_rate=_improved_detection_rate(
                train_store, train_verdicts, name, use_spatial=True, use_temporal=True
            ),
            test_detection_rate=_improved_detection_rate(
                test_store, test_verdicts, name, use_spatial=True, use_temporal=True
            ),
        )
    return results
