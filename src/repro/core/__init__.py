"""FP-Inconsistent: spatial/temporal inconsistency mining and detection."""

from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.core.evaluation import (
    DetectionRates,
    GeneralizationResult,
    ServiceImprovement,
    detection_rates,
    evaluate_generalization,
    evaluate_table3,
    evaluate_table4,
    true_negative_rate,
)
from repro.core.knowledge import DeviceKnowledgeBase
from repro.core.pipeline import FPInconsistentPipeline, PipelineResult
from repro.core.rules import FilterList, InconsistencyRule
from repro.core.spatial import PairStatistics, SpatialInconsistencyMiner, SpatialMinerConfig
from repro.core.temporal import (
    DEFAULT_COOKIE_ATTRIBUTES,
    DEFAULT_IP_ATTRIBUTES,
    TemporalFlag,
    TemporalInconsistencyDetector,
)

__all__ = [
    "DEFAULT_COOKIE_ATTRIBUTES",
    "DEFAULT_IP_ATTRIBUTES",
    "DetectionRates",
    "DeviceKnowledgeBase",
    "FPInconsistent",
    "FPInconsistentPipeline",
    "FilterList",
    "GeneralizationResult",
    "InconsistencyRule",
    "InconsistencyVerdict",
    "PairStatistics",
    "PipelineResult",
    "ServiceImprovement",
    "SpatialInconsistencyMiner",
    "SpatialMinerConfig",
    "TemporalFlag",
    "TemporalInconsistencyDetector",
    "detection_rates",
    "evaluate_generalization",
    "evaluate_table3",
    "evaluate_table4",
    "true_negative_rate",
]
