"""FP-Inconsistent: spatial/temporal inconsistency mining and detection."""

from repro.core.columnar import ColumnarTable, partition_rows_by_device
from repro.core.detector import ENGINES, FPInconsistent, InconsistencyVerdict, validate_engine
from repro.core.evaluation import (
    DetectionRates,
    GeneralizationResult,
    ServiceImprovement,
    detection_rates,
    evaluate_generalization,
    evaluate_table3,
    evaluate_table4,
    true_negative_rate,
)
from repro.core.knowledge import DeviceKnowledgeBase
from repro.core.pipeline import FPInconsistentPipeline, PipelineResult
from repro.core.rules import CompiledFilterList, FilterList, InconsistencyRule
from repro.core.spatial import (
    PairStatistics,
    SpatialInconsistencyMiner,
    SpatialMinerConfig,
    columnar_pair_statistics,
    ordered_pair_tasks,
)
from repro.core.temporal import (
    DEFAULT_COOKIE_ATTRIBUTES,
    DEFAULT_IP_ATTRIBUTES,
    TemporalFlag,
    TemporalInconsistencyDetector,
)

__all__ = [
    "ColumnarTable",
    "CompiledFilterList",
    "DEFAULT_COOKIE_ATTRIBUTES",
    "DEFAULT_IP_ATTRIBUTES",
    "DetectionRates",
    "DeviceKnowledgeBase",
    "ENGINES",
    "FPInconsistent",
    "FPInconsistentPipeline",
    "FilterList",
    "GeneralizationResult",
    "InconsistencyRule",
    "InconsistencyVerdict",
    "PairStatistics",
    "PipelineResult",
    "ServiceImprovement",
    "SpatialInconsistencyMiner",
    "SpatialMinerConfig",
    "TemporalFlag",
    "TemporalInconsistencyDetector",
    "columnar_pair_statistics",
    "detection_rates",
    "evaluate_generalization",
    "evaluate_table3",
    "evaluate_table4",
    "ordered_pair_tasks",
    "partition_rows_by_device",
    "true_negative_rate",
    "validate_engine",
]
