"""Device knowledge base: which attribute-value pairs can exist for real
devices.

FP-Inconsistent is semi-automatic: Algorithm 1 surfaces candidate
attribute-value pairs ordered by configuration-count inflation, and a
domain judgement decides whether each candidate "combination is
inconsistent" (line 8).  In the paper that judgement is made by an analyst
consulting public device catalogues; here it is encoded once in this
knowledge base so the whole pipeline runs unattended and the judgement is
testable.

The knowledge base answers three-way questions: ``True`` (the combination
occurs on real devices), ``False`` (it cannot occur), ``None`` (unknown —
never used to flag anything).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.devices.catalog import DeviceCatalog
from repro.devices.screens import is_real_resolution_for_device
from repro.fingerprint.attributes import Attribute, parse_resolution
from repro.geo.timezones import TIMEZONES, offsets_of_country, utc_offsets_of

_APPLE_DEVICES = ("iPhone", "iPad", "Mac")
_APPLE_MOBILE = ("iPhone", "iPad")
_APPLE_PLATFORMS = ("iPhone", "iPad", "MacIntel", "MacPPC")
_SAFARI_BROWSERS = ("Safari", "Mobile Safari")
_CHROMIUM_BROWSERS = ("Chrome", "Chrome Mobile", "Edge", "Opera", "Samsung Internet", "MiuiBrowser")
_APPLE_VENDOR_PREFIX = "Apple"
_GOOGLE_VENDOR_PREFIX = "Google"

#: Hardware-concurrency ranges real devices of each family ship with.
_CORE_RANGES = {
    "iPhone": (2, 6),
    "iPad": (2, 10),
    "Mac": (2, 32),
    "Windows PC": (2, 64),
    "Linux PC": (1, 128),
    "Chromebook": (2, 16),
}
_ANDROID_CORE_RANGE = (2, 10)

#: ``navigator.deviceMemory`` is clamped by the specification to the set
#: {0.25, 0.5, 1, 2, 4, 8}, so any family can legitimately report any of
#: those values; only known Android models (whose true memory is in the
#: catalogue) can be checked more tightly.
_VALID_DEVICE_MEMORY = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: Core counts real Apple mobile devices ship with.
_IPHONE_CORE_COUNTS = (2, 4, 6)
_IPAD_CORE_COUNTS = (2, 4, 6, 8, 10)


def _is_android_model(ua_device: str) -> bool:
    """Heuristic: UA devices that are neither Apple nor desktop families are
    Android model strings (e.g. ``"SM-A515F"``, ``"Pixel 7"``)."""

    return ua_device not in _APPLE_DEVICES and ua_device not in (
        "Windows PC",
        "Linux PC",
        "Chromebook",
        "Other",
    )


class DeviceKnowledgeBase:
    """Answers whether a pair of attribute values can coexist on a real device."""

    def __init__(self, catalog: Optional[DeviceCatalog] = None):
        self._catalog = catalog if catalog is not None else DeviceCatalog()
        #: (attribute_a, value_a, attribute_b) -> expected distinct count.
        #: ``expected_value_count`` scans the whole catalogue and builds a
        #: fingerprint per profile; the miner asks about the same handful of
        #: (attribute, value) combinations for every attribute pair, so the
        #: scan is memoized (the catalogue is immutable after construction).
        self._expected_cache: dict = {}
        #: (profile name, resolution) -> consistent fingerprint, so repeated
        #: catalogue scans stop re-coercing the same attribute dictionaries.
        self._profile_fingerprints: dict = {}

    # -- public API -----------------------------------------------------------

    def is_pair_consistent(
        self,
        attribute_a: Attribute,
        value_a: object,
        attribute_b: Attribute,
        value_b: object,
    ) -> Optional[bool]:
        """Three-way consistency judgement for one value pair.

        The check is symmetric in its two arguments.  ``None`` values are
        always "unknown" (some browsers legitimately omit attributes).
        """

        if value_a is None or value_b is None:
            return None
        result = self._judge(attribute_a, value_a, attribute_b, value_b)
        if result is not None:
            return result
        return self._judge(attribute_b, value_b, attribute_a, value_a)

    # -- dispatch -------------------------------------------------------------

    def _judge(
        self, attribute_a: Attribute, value_a: object, attribute_b: Attribute, value_b: object
    ) -> Optional[bool]:
        if attribute_a is Attribute.UA_DEVICE:
            return self._judge_ua_device(str(value_a), attribute_b, value_b)
        if attribute_a is Attribute.UA_BROWSER:
            return self._judge_ua_browser(str(value_a), attribute_b, value_b)
        if attribute_a is Attribute.PLATFORM:
            return self._judge_platform(str(value_a), attribute_b, value_b)
        if attribute_a is Attribute.UA_OS:
            return self._judge_ua_os(str(value_a), attribute_b, value_b)
        if attribute_a is Attribute.IP_COUNTRY:
            return self._judge_ip_country(str(value_a), attribute_b, value_b)
        return None

    # -- UA device rules ----------------------------------------------------------

    def _judge_ua_device(
        self, device: str, attribute: Attribute, value: object
    ) -> Optional[bool]:
        if attribute is Attribute.SCREEN_RESOLUTION:
            try:
                resolution = parse_resolution(value)
            except ValueError:
                return False
            return is_real_resolution_for_device(device, resolution)

        if attribute is Attribute.TOUCH_SUPPORT:
            has_touch = str(value) not in ("", "None")
            if device in _APPLE_MOBILE:
                return has_touch
            if device == "Mac":
                return not has_touch
            if _is_android_model(device):
                return has_touch
            return None  # Windows / Linux PCs may or may not have touch screens.

        if attribute is Attribute.MAX_TOUCH_POINTS:
            points = int(value)
            if device in _APPLE_MOBILE:
                return points == 5
            if device == "Mac":
                return points == 0
            if _is_android_model(device):
                return points >= 1
            if points < 0 or points > 20:
                return False
            return None

        if attribute is Attribute.COLOR_DEPTH:
            depth = int(value)
            if depth not in (16, 24, 30, 32, 48):
                return False
            if device in _APPLE_DEVICES:
                return depth in (24, 30, 32)
            return None

        if attribute is Attribute.COLOR_GAMUT:
            gamut = str(value)
            if device in _APPLE_DEVICES:
                return gamut in ("srgb", "p3")
            if _is_android_model(device) and "rec2020" in gamut:
                # Consumer Android phones/tablets do not report rec2020.
                return False
            return None

        if attribute is Attribute.HARDWARE_CONCURRENCY:
            cores = int(value)
            if cores < 1:
                return False
            if device == "iPhone":
                return cores in _IPHONE_CORE_COUNTS
            if device == "iPad":
                return cores in _IPAD_CORE_COUNTS
            low, high = _CORE_RANGES.get(
                device, _ANDROID_CORE_RANGE if _is_android_model(device) else (1, 128)
            )
            return low <= cores <= high

        if attribute is Attribute.DEVICE_MEMORY:
            memory = float(value)
            if memory not in _VALID_DEVICE_MEMORY:
                return False
            if _is_android_model(device):
                known = self._catalog_memory_options(device)
                if known is not None:
                    return memory in known
            return None

        if attribute is Attribute.PLUGINS:
            has_plugins = bool(str(value)) and str(value) != "(none)"
            if device in _APPLE_MOBILE or _is_android_model(device):
                # Mobile browsers expose no navigator plugins.
                return not has_plugins
            return None

        if attribute is Attribute.VENDOR:
            vendor = str(value)
            if device in _APPLE_MOBILE:
                return vendor.startswith(_APPLE_VENDOR_PREFIX)
            return None

        if attribute is Attribute.HDR:
            return None
        if attribute is Attribute.CONTRAST:
            return None
        if attribute is Attribute.REDUCED_MOTION:
            return None
        if attribute is Attribute.UA_OS:
            os_name = str(value)
            if device in _APPLE_MOBILE:
                return os_name == "iOS"
            if device == "Mac":
                return os_name == "Mac OS X"
            if device == "Windows PC":
                return os_name == "Windows"
            if _is_android_model(device):
                return os_name == "Android"
            return None
        return None

    # -- UA browser rules -----------------------------------------------------------

    def _judge_ua_browser(
        self, browser: str, attribute: Attribute, value: object
    ) -> Optional[bool]:
        if attribute is Attribute.UA_OS:
            os_name = str(value)
            if browser in ("Safari", "Mobile Safari"):
                return os_name in ("Mac OS X", "iOS")
            if browser in ("Samsung Internet", "MiuiBrowser"):
                return os_name == "Android"
            if browser in ("Chrome Mobile iOS", "Firefox iOS"):
                return os_name == "iOS"
            if browser == "Chrome Mobile":
                return os_name == "Android"
            return None

        if attribute is Attribute.VENDOR:
            vendor = str(value)
            if browser in _SAFARI_BROWSERS:
                return vendor.startswith(_APPLE_VENDOR_PREFIX)
            if browser in ("Chrome", "Chrome Mobile", "Samsung Internet", "MiuiBrowser", "Edge", "Opera"):
                return vendor.startswith(_GOOGLE_VENDOR_PREFIX)
            if browser == "Chrome Mobile iOS":
                # WebKit shell: reports the Apple vendor.
                return vendor.startswith(_APPLE_VENDOR_PREFIX)
            if browser in ("Firefox", "Firefox iOS"):
                return vendor == ""
            return None

        if attribute is Attribute.PLATFORM:
            platform = str(value)
            if browser == "Mobile Safari":
                return platform in ("iPhone", "iPad")
            if browser == "Safari":
                return platform in _APPLE_PLATFORMS
            if browser == "Chrome Mobile iOS":
                return platform in ("iPhone", "iPad")
            if browser == "Chrome Mobile":
                return platform.startswith("Linux arm") or platform.startswith("Linux aarch")
            if browser in ("Samsung Internet", "MiuiBrowser"):
                return platform.startswith("Linux arm") or platform.startswith("Linux aarch")
            return None

        if attribute is Attribute.PLUGINS:
            has_plugins = bool(str(value)) and str(value) != "(none)"
            if browser in ("Mobile Safari", "Chrome Mobile", "Chrome Mobile iOS", "Samsung Internet", "MiuiBrowser", "Firefox iOS"):
                return not has_plugins
            return None

        if attribute is Attribute.VENDOR_FLAVORS:
            flavors = str(value)
            if browser in _SAFARI_BROWSERS and "chrome" in flavors:
                return False
            if browser in ("Firefox",) and flavors not in ("", "(none)"):
                return False
            return None
        return None

    # -- platform rules ---------------------------------------------------------------

    def _judge_platform(self, platform: str, attribute: Attribute, value: object) -> Optional[bool]:
        if attribute is Attribute.VENDOR:
            vendor = str(value)
            if vendor.startswith(_APPLE_VENDOR_PREFIX):
                return platform in _APPLE_PLATFORMS
            return None
        if attribute is Attribute.UA_OS:
            os_name = str(value)
            if platform == "Win32":
                return os_name == "Windows"
            if platform in ("MacIntel", "MacPPC"):
                return os_name == "Mac OS X"
            if platform in ("iPhone", "iPad"):
                return os_name == "iOS"
            if platform.startswith("Linux arm") or platform.startswith("Linux aarch"):
                return os_name in ("Android", "Linux")
            if platform.startswith("Linux"):
                return os_name in ("Linux", "Android", "Chrome OS")
            return None
        return None

    # -- UA OS rules -----------------------------------------------------------------------

    def _judge_ua_os(self, os_name: str, attribute: Attribute, value: object) -> Optional[bool]:
        if attribute is Attribute.PLUGINS:
            has_plugins = bool(str(value)) and str(value) != "(none)"
            if os_name in ("iOS", "Android"):
                return not has_plugins
            return None
        if attribute is Attribute.DEVICE_MEMORY:
            # Any spec-valid value is possible for any OS; invalid values
            # (e.g. 3 or 12 GiB) cannot be produced by a real browser.
            return None if float(value) in _VALID_DEVICE_MEMORY else False
        return None

    # -- location rules ---------------------------------------------------------------------

    def _judge_ip_country(self, country: str, attribute: Attribute, value: object) -> Optional[bool]:
        if attribute is Attribute.TIMEZONE:
            timezone = str(value)
            if timezone not in TIMEZONES:
                return None
            country_offsets = offsets_of_country(country)
            if not country_offsets:
                return None
            zone_offsets = set(utc_offsets_of(timezone))
            return bool(zone_offsets & country_offsets)
        return None

    # -- helpers ----------------------------------------------------------------------------------

    def _catalog_memory_options(self, ua_device: str) -> Optional[Tuple[float, ...]]:
        profiles = self._catalog.by_device(ua_device)
        if not profiles:
            return None
        options = set()
        for profile in profiles:
            options.update(profile.device_memory_options)
        return tuple(sorted(options))

    def expected_value_count(self, attribute_a: Attribute, value_a: object, attribute_b: Attribute) -> Optional[int]:
        """How many distinct values of *attribute_b* real devices matching
        ``attribute_a == value_a`` exhibit in the catalogue.

        Used by the spatial miner's configuration-count inflation test.
        Returns ``None`` when the catalogue has no matching profile.
        """

        key = (attribute_a, value_a, attribute_b)
        try:
            return self._expected_cache[key]
        except KeyError:
            pass
        except TypeError:  # unhashable value: fall through uncached
            return self._expected_value_count(attribute_a, value_a, attribute_b)
        result = self._expected_value_count(attribute_a, value_a, attribute_b)
        self._expected_cache[key] = result
        return result

    def _profile_fingerprint(self, profile, resolution=None):
        key = (profile.name, resolution)
        fingerprint = self._profile_fingerprints.get(key)
        if fingerprint is None:
            fingerprint = profile.fingerprint(screen_resolution=resolution)
            self._profile_fingerprints[key] = fingerprint
        return fingerprint

    def _expected_value_count(
        self, attribute_a: Attribute, value_a: object, attribute_b: Attribute
    ) -> Optional[int]:
        matches = [
            profile
            for profile in self._catalog
            if self._profile_fingerprint(profile).value_for_grouping(attribute_a) == value_a
        ]
        if not matches:
            return None
        values = set()
        for profile in matches:
            for resolution in profile.screen_resolutions:
                fingerprint = self._profile_fingerprint(profile, resolution)
                values.add(fingerprint.value_for_grouping(attribute_b))
        return len(values)
