"""Columnar fingerprint table: the detection stack's vectorized substrate.

The legacy detection paths walk Python objects once per (attribute pair,
request): the spatial miner re-extracts every grouping value for every pair
it examines and the filter list re-reads attributes per rule.  This module
extracts each :class:`~repro.honeysite.storage.RequestStore` exactly once
into per-attribute **code columns** (a factorize representation: an
``int32`` array of value codes per attribute, ``-1`` for missing, plus the
code → value decode list), after which

* the miner computes all pair co-occurrence statistics with one
  ``numpy.unique`` pass per pair (:meth:`SpatialInconsistencyMiner.mine_table`),
* the filter list classifies the whole table with one vectorized lookup per
  attribute pair (:meth:`FilterList.compile`), and
* the pipeline shards rows over the worker pool without pickling a single
  fingerprint — a shard is just slices of these arrays.

Equivalence with the object-at-a-time reference paths is exact, not
approximate: codes are assigned in first-occurrence order so ties broken by
dict insertion order in the legacy code break identically here
(``tests/test_columnar.py`` pins this).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import CATEGORY_ATTRIBUTES
from repro.fingerprint.fingerprint import Fingerprint, grouping_value


#: Version of the persisted columnar-table (``.npz``) format.  Bump on any
#: change to the archive layout; readers reject newer versions and callers
#: fall back to re-extraction.
TABLE_FORMAT_VERSION = 1


def default_table_attributes() -> Tuple[Attribute, ...]:
    """Attributes extracted by default: every Table 7 category member plus
    the temporally tracked attributes, deduplicated in category order."""

    from repro.core.temporal import DEFAULT_COOKIE_ATTRIBUTES, DEFAULT_IP_ATTRIBUTES

    ordered: Dict[Attribute, None] = {}
    for members in CATEGORY_ATTRIBUTES.values():
        for attribute in members:
            ordered.setdefault(attribute, None)
    for attribute in DEFAULT_COOKIE_ATTRIBUTES + DEFAULT_IP_ATTRIBUTES:
        ordered.setdefault(attribute, None)
    return tuple(ordered)


def _factorize(items: Sequence[object]) -> Tuple[np.ndarray, List[object], Dict[object, int]]:
    """Encode *items* as codes in first-occurrence order (``None`` → ``-1``)."""

    codes = np.empty(len(items), dtype=np.int32)
    values: List[object] = []
    index: Dict[object, int] = {}
    for position, item in enumerate(items):
        if item is None:
            codes[position] = -1
            continue
        code = index.get(item)
        if code is None:
            code = len(values)
            index[item] = code
            values.append(item)
        codes[position] = code
    return codes, values, index


def _extract_column(
    fingerprints: Sequence[Fingerprint], attribute: Attribute
) -> Tuple[np.ndarray, List[object], Dict[object, int]]:
    """Factorized grouping-value column of one attribute.

    Raw attribute values repeat massively across a corpus, so the grouping
    transformation (resolution formatting, tuple joining) runs once per
    *distinct raw value*, not once per request: rows are first keyed by the
    raw value, and only a cache miss formats.  Because a raw value's first
    occurrence can never follow its grouping value's first occurrence,
    codes still come out in grouping-value first-occurrence order — the
    order the per-fingerprint extraction would produce.
    """

    codes = np.empty(len(fingerprints), dtype=np.int32)
    values: List[object] = []
    index: Dict[object, int] = {}
    raw_codes: Dict[object, int] = {}
    for position, fingerprint in enumerate(fingerprints):
        # Direct slot access: one dict.get per (row, attribute) is the
        # extraction floor, and the bound-method indirection of
        # ``Fingerprint.get`` measurably widens it at corpus scale.
        raw = fingerprint._values.get(attribute)
        if raw is None:
            codes[position] = -1
            continue
        code = raw_codes.get(raw)
        if code is None:
            grouped = grouping_value(attribute, raw)
            code = index.get(grouped)
            if code is None:
                code = len(values)
                index[grouped] = code
                values.append(grouped)
            raw_codes[raw] = code
        codes[position] = code
    return codes, values, index


class ColumnarTable:
    """Per-attribute grouping-value columns of one request store.

    Every attribute column is a pair of (``int32`` code array, decode list);
    request metadata needed by classification (ids, timestamps, cookies,
    source addresses) rides along as parallel arrays so the temporal
    detector can stream a table without touching the originating store.
    """

    def __init__(
        self,
        *,
        codes: Dict[Attribute, np.ndarray],
        values: Dict[Attribute, List[object]],
        indexes: Dict[Attribute, Dict[object, int]],
        n_rows: int,
        request_ids: Optional[np.ndarray] = None,
        timestamps: Optional[np.ndarray] = None,
        cookie_codes: Optional[np.ndarray] = None,
        cookie_values: Optional[List[str]] = None,
        ip_codes: Optional[np.ndarray] = None,
        ip_values: Optional[List[str]] = None,
    ):
        self._codes = codes
        self._values = values
        self._indexes = indexes
        self._n_rows = n_rows
        self.request_ids = request_ids
        self.timestamps = timestamps
        self.cookie_codes = cookie_codes
        self.cookie_values = cookie_values
        self.ip_codes = ip_codes
        self.ip_values = ip_values

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_fingerprints(
        cls,
        fingerprints: Sequence[Fingerprint],
        attributes: Optional[Iterable[Attribute]] = None,
    ) -> "ColumnarTable":
        """Extract grouping-value columns from a fingerprint sequence."""

        attributes = tuple(attributes) if attributes is not None else default_table_attributes()
        codes: Dict[Attribute, np.ndarray] = {}
        values: Dict[Attribute, List[object]] = {}
        indexes: Dict[Attribute, Dict[object, int]] = {}
        for attribute in attributes:
            codes[attribute], values[attribute], indexes[attribute] = _extract_column(
                fingerprints, attribute
            )
        return cls(codes=codes, values=values, indexes=indexes, n_rows=len(fingerprints))

    @classmethod
    def from_store(
        cls,
        store,
        attributes: Optional[Iterable[Attribute]] = None,
        extra_attributes: Iterable[Attribute] = (),
    ) -> "ColumnarTable":
        """Extract a :class:`~repro.honeysite.storage.RequestStore` once.

        *extra_attributes* extends the default attribute set (used when a
        loaded filter list references attributes outside Table 7).
        """

        if attributes is None:
            attributes = default_table_attributes()
        ordered: Dict[Attribute, None] = {attribute: None for attribute in attributes}
        for attribute in extra_attributes:
            ordered.setdefault(attribute, None)

        records = list(store)
        fingerprints = [record.request.fingerprint for record in records]
        table = cls.from_fingerprints(fingerprints, tuple(ordered))
        table.request_ids = np.array(
            [record.request.request_id for record in records], dtype=np.int64
        )
        table.timestamps = np.array([record.timestamp for record in records], dtype=np.float64)
        cookie_codes, cookie_values, _ = _factorize([record.cookie for record in records])
        table.cookie_codes, table.cookie_values = cookie_codes, cookie_values
        ip_codes, ip_values, _ = _factorize([record.request.ip_address for record in records])
        table.ip_codes, table.ip_values = ip_codes, ip_values
        return table

    # -- introspection ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return tuple(self._codes)

    def has_attribute(self, attribute: Attribute) -> bool:
        return attribute in self._codes

    def require_attribute(self, attribute: Attribute, purpose: str) -> None:
        """Raise loudly when *attribute* has no column.

        A missing column means the table was not extracted for its
        consumer; silently skipping would quietly weaken detection and
        diverge from the object-at-a-time reference paths.
        """

        if attribute not in self._codes:
            raise ValueError(
                f"table lacks a column for {purpose} {attribute.value!r}; "
                f"extract the store with FPInconsistent.extract_table (or "
                f"include the attribute in the table's attribute set)"
            )

    def codes_of(self, attribute: Attribute) -> np.ndarray:
        """The ``int32`` code column of *attribute* (``-1`` = missing)."""

        return self._codes[attribute]

    def values_of(self, attribute: Attribute) -> List[object]:
        """Decode list of *attribute* (code → grouping value)."""

        return self._values[attribute]

    def code_of(self, attribute: Attribute, value: object) -> Optional[int]:
        """Code of *value* in *attribute*'s column (``None`` when absent)."""

        index = self._indexes.get(attribute)
        if index is None:
            return None
        try:
            return index.get(value)
        except TypeError:  # unhashable values never occur in a column
            return None

    def value_at(self, attribute: Attribute, row: int):
        """The grouping value of *attribute* at *row* (``None`` if missing)."""

        code = self._codes[attribute][row]
        return self._values[attribute][code] if code >= 0 else None

    def matches_store(self, store) -> bool:
        """Whether this table's rows verifiably correspond to *store*.

        The one binding rule shared by every consumer of pre-extracted
        tables (detector, cache, archive loader): row count plus
        request-id equality.  Request ids are renumbered 1..N in store
        order, so an id match binds the table to the exact row sequence;
        ``store.request_id_array`` answers from the columns of a lazy
        store, so the check never materialises records.
        """

        if self.request_ids is None:
            return False
        if self.n_rows != len(store):
            return False
        return bool(np.array_equal(self.request_ids, store.request_id_array()))

    def cookie_at(self, row: int) -> Optional[str]:
        code = self.cookie_codes[row]
        return self.cookie_values[code] if code >= 0 else None

    def ip_at(self, row: int) -> Optional[str]:
        code = self.ip_codes[row]
        return self.ip_values[code] if code >= 0 else None

    # -- slicing ---------------------------------------------------------------

    def select(self, attributes: Iterable[Attribute]) -> "ColumnarTable":
        """Column-subset view sharing the underlying arrays.

        Mining shards use this so a process-pool payload carries only the
        columns its attribute pairs actually touch (request metadata is
        dropped too — mining never reads it).
        """

        attributes = tuple(attributes)
        return ColumnarTable(
            codes={attribute: self._codes[attribute] for attribute in attributes},
            values={attribute: self._values[attribute] for attribute in attributes},
            indexes={attribute: self._indexes[attribute] for attribute in attributes},
            n_rows=self._n_rows,
        )

    # -- persistence -----------------------------------------------------------

    def to_arrays(self, prefix: str = "") -> Tuple[Dict[str, np.ndarray], Dict]:
        """Split the table into (numeric arrays, JSON-able meta) for ``.npz``
        persistence, with every array key *prefix*-ed.

        Only tables built with :meth:`from_store` (request metadata
        present) can be persisted — that is what the corpus cache stores.
        Decode lists ride along in the meta document; grouping values are
        JSON scalars (strings, ints, floats, bools) by construction, and
        JSON round-trips them exactly.  Inverse of :meth:`from_arrays`.
        """

        if self.request_ids is None or self.cookie_codes is None or self.ip_codes is None:
            raise ValueError("only tables built with from_store can be persisted")
        attributes = list(self._codes)
        meta = {
            "attributes": [attribute.value for attribute in attributes],
            "values": [self._values[attribute] for attribute in attributes],
            "cookie_values": self.cookie_values,
            "ip_values": self.ip_values,
        }
        arrays: Dict[str, np.ndarray] = {
            f"{prefix}request_ids": self.request_ids,
            f"{prefix}timestamps": self.timestamps,
            f"{prefix}cookie_codes": self.cookie_codes,
            f"{prefix}ip_codes": self.ip_codes,
        }
        for position, attribute in enumerate(attributes):
            arrays[f"{prefix}codes_{position}"] = self._codes[attribute]
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, data, meta: Dict, prefix: str = "", label: str = "columnar archive"
    ) -> "ColumnarTable":
        """Rebuild a table from :meth:`to_arrays` output (*data* is any
        mapping of array names — an open ``.npz`` works directly).

        Raises :class:`ValueError` on out-of-range codes or ragged
        columns; *label* names the source in error messages.
        """

        attributes = [Attribute(name) for name in meta["attributes"]]
        value_lists = meta["values"]
        if len(value_lists) != len(attributes):
            raise ValueError(f"{label} is inconsistent")
        codes: Dict[Attribute, np.ndarray] = {}
        values: Dict[Attribute, List[object]] = {}
        indexes: Dict[Attribute, Dict[object, int]] = {}
        n_rows: Optional[int] = None
        for position, attribute in enumerate(attributes):
            column = np.asarray(data[f"{prefix}codes_{position}"], dtype=np.int32)
            decoded = list(value_lists[position])
            if column.size and (
                int(column.max()) >= len(decoded) or int(column.min()) < -1
            ):
                raise ValueError(f"{label} has out-of-range codes")
            if n_rows is None:
                n_rows = int(column.size)
            elif n_rows != int(column.size):
                raise ValueError(f"{label} has ragged columns")
            codes[attribute] = column
            values[attribute] = decoded
            indexes[attribute] = {value: code for code, value in enumerate(decoded)}
        request_ids = np.asarray(data[f"{prefix}request_ids"], dtype=np.int64)
        if n_rows is None:
            n_rows = int(request_ids.size)
        if request_ids.size != n_rows:
            raise ValueError(f"{label} has ragged metadata")
        table = cls(codes=codes, values=values, indexes=indexes, n_rows=n_rows)
        table.request_ids = request_ids
        table.timestamps = np.asarray(data[f"{prefix}timestamps"], dtype=np.float64)
        table.cookie_codes = np.asarray(data[f"{prefix}cookie_codes"], dtype=np.int32)
        table.cookie_values = [str(value) for value in meta["cookie_values"]]
        table.ip_codes = np.asarray(data[f"{prefix}ip_codes"], dtype=np.int32)
        table.ip_values = [str(value) for value in meta["ip_values"]]
        if (
            table.timestamps.size != n_rows
            or table.cookie_codes.size != n_rows
            or table.ip_codes.size != n_rows
        ):
            raise ValueError(f"{label} has ragged metadata")
        return table

    def save_npz(self, path) -> None:
        """Persist the table (codes, decode lists, request metadata) as
        a compressed ``.npz`` archive."""

        arrays, meta = self.to_arrays()
        meta = {"version": TABLE_FORMAT_VERSION, **meta}
        arrays = {"meta": np.array(json.dumps(meta)), **arrays}
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    @classmethod
    def load_npz(cls, path) -> "ColumnarTable":
        """Load a table persisted by :meth:`save_npz`.

        Raises :class:`ValueError` (or an ``OSError`` / JSON error) on a
        corrupt, truncated or newer-format archive — callers treat any
        failure as a cache miss and re-extract.
        """

        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"][()]))
            version = int(meta.get("version", 0))
            if version > TABLE_FORMAT_VERSION:
                raise ValueError(
                    f"columnar archive {path} has format version {version}; "
                    f"this build reads up to {TABLE_FORMAT_VERSION}"
                )
            return cls.from_arrays(data, meta, label=f"columnar archive {path}")

    def with_columns(self, codes: Dict[Attribute, np.ndarray]) -> "ColumnarTable":
        """A new table over *codes* decoding through this table's dictionaries.

        Every attribute in *codes* must have a column here — the code
        arrays are expected to have been produced against this table's
        vocabulary (e.g. the stream refresher's retained batch columns,
        which all share one growing-vocabulary ingestor).  Metadata-free:
        the result is mineable, not classifiable.
        """

        codes = dict(codes)
        n_rows: Optional[int] = None
        for attribute, column in codes.items():
            if attribute not in self._codes:
                raise ValueError(
                    f"this table has no dictionary for attribute {attribute.value!r}"
                )
            if n_rows is None:
                n_rows = int(column.size)
            elif n_rows != int(column.size):
                raise ValueError("with_columns requires equally sized code columns")
        return ColumnarTable(
            codes=codes,
            values={attribute: self._values[attribute] for attribute in codes},
            indexes={attribute: self._indexes[attribute] for attribute in codes},
            n_rows=0 if n_rows is None else n_rows,
        )

    def take(self, rows: np.ndarray) -> "ColumnarTable":
        """Row-sliced view sharing decode lists (cheap to pickle per shard)."""

        rows = np.asarray(rows, dtype=np.int64)
        return ColumnarTable(
            codes={attribute: column[rows] for attribute, column in self._codes.items()},
            values=self._values,
            indexes=self._indexes,
            n_rows=int(rows.size),
            request_ids=None if self.request_ids is None else self.request_ids[rows],
            timestamps=None if self.timestamps is None else self.timestamps[rows],
            cookie_codes=None if self.cookie_codes is None else self.cookie_codes[rows],
            cookie_values=self.cookie_values,
            ip_codes=None if self.ip_codes is None else self.ip_codes[rows],
            ip_values=self.ip_values,
        )


class TablePayload:
    """Per-shard fingerprint columns produced during vectorized generation.

    A shard's traffic generator assigns value codes in row first-occurrence
    order while it emits records; the payload carries those local columns
    plus their decode lists so the corpus engine can merge shards into one
    :class:`ColumnarTable` without ever re-reading a fingerprint object.
    Plain arrays + lists, picklable across process-pool boundaries.
    """

    __slots__ = ("attributes", "columns", "values")

    def __init__(
        self,
        attributes: Tuple[Attribute, ...],
        columns: Dict[Attribute, np.ndarray],
        values: Dict[Attribute, List[object]],
    ):
        self.attributes = attributes
        self.columns = columns
        self.values = values

    @property
    def n_rows(self) -> int:
        if not self.attributes:
            return 0
        return int(self.columns[self.attributes[0]].size)


class TableEmitter:
    """Accumulates per-row attribute codes while a generator emits records.

    ``codes_for`` factorizes one session's attribute values (the expensive
    part — grouping transformation plus dictionary lookups) and is called
    once per session; ``append`` records the session's code row once per
    request.  Codes come out in row first-occurrence order — exactly the
    order :meth:`ColumnarTable.from_store` would assign, because a session's
    codes are first computed at its first emitted row.
    """

    def __init__(self, attributes: Optional[Iterable[Attribute]] = None):
        self.attributes: Tuple[Attribute, ...] = (
            tuple(attributes) if attributes is not None else default_table_attributes()
        )
        self._indexes: Tuple[Dict[object, int], ...] = tuple({} for _ in self.attributes)
        self._values: Tuple[List[object], ...] = tuple([] for _ in self.attributes)
        #: raw value → code per attribute, so the grouping transformation
        #: runs once per distinct raw value (as in ``from_store``), not
        #: once per session
        self._raw_codes: Tuple[Dict[object, int], ...] = tuple({} for _ in self.attributes)
        self._rows: List[np.ndarray] = []

    def codes_for(self, values: Dict) -> np.ndarray:
        """The ``int32`` code row of one session's attribute values.

        *values* maps :class:`Attribute` to canonical (coerced) values; the
        grouping transformation is applied here, mirroring extraction.
        """

        row = np.empty(len(self.attributes), dtype=np.int32)
        get = values.get
        for position, attribute in enumerate(self.attributes):
            raw = get(attribute)
            if raw is None:
                row[position] = -1
                continue
            raw_codes = self._raw_codes[position]
            code = raw_codes.get(raw)
            if code is None:
                grouped = grouping_value(attribute, raw)
                index = self._indexes[position]
                code = index.get(grouped)
                if code is None:
                    code = len(self._values[position])
                    index[grouped] = code
                    self._values[position].append(grouped)
                raw_codes[raw] = code
            row[position] = code
        return row

    def append(self, row: np.ndarray) -> None:
        """Record one request whose session factorized to *row*."""

        self._rows.append(row)

    def payload(self) -> TablePayload:
        """Freeze the accumulated rows into a :class:`TablePayload`."""

        if self._rows:
            matrix = np.vstack(self._rows)
        else:
            matrix = np.empty((0, len(self.attributes)), dtype=np.int32)
        columns = {
            attribute: np.ascontiguousarray(matrix[:, position])
            for position, attribute in enumerate(self.attributes)
        }
        return TablePayload(
            attributes=self.attributes,
            columns=columns,
            values={
                attribute: list(self._values[position])
                for position, attribute in enumerate(self.attributes)
            },
        )


def assemble_table(
    payloads: Sequence[TablePayload],
    *,
    request_ids,
    timestamps,
    cookies: Optional[Sequence[str]] = None,
    ips: Optional[Sequence[str]] = None,
    cookie_columns: Optional[Tuple[np.ndarray, List[str]]] = None,
    ip_columns: Optional[Tuple[np.ndarray, List[str]]] = None,
) -> ColumnarTable:
    """Merge shard payloads (in shard order) into one :class:`ColumnarTable`.

    The cookie/address metadata comes in either as plain value sequences
    (*cookies* / *ips*, factorized here) or — the columnar shard
    transport's path — as already first-occurrence-coded ``(codes,
    values)`` pairs (*cookie_columns* / *ip_columns*,
    :meth:`~repro.honeysite.storage.RecordColumns.cookie_columns`), which
    skips decoding one string per row.  Local attribute codes are remapped
    into one global code space assigned in merged-row first-occurrence
    order, so the result is byte-identical to
    ``ColumnarTable.from_store`` over the corresponding records.

    Since corpus format v4 this is the *only* decoding the merge performs:
    the shard payloads carrying these table codes are pure arrays end to
    end (fingerprints, headers and decisions ride as attribute-code rows
    in :class:`~repro.honeysite.storage.SessionArrays`), so no pickled
    record, fingerprint or decision object crosses the worker boundary.
    """

    if not payloads:
        raise ValueError("cannot merge zero table payloads")
    attributes = payloads[0].attributes
    for payload in payloads[1:]:
        if payload.attributes != attributes:
            raise ValueError("table payloads disagree on their attribute sets")

    codes: Dict[Attribute, np.ndarray] = {}
    values: Dict[Attribute, List[object]] = {}
    indexes: Dict[Attribute, Dict[object, int]] = {}
    for position, attribute in enumerate(attributes):
        global_values: List[object] = []
        global_index: Dict[object, int] = {}
        remapped: List[np.ndarray] = []
        for payload in payloads:
            local_values = payload.values[attribute]
            mapping = np.empty(len(local_values), dtype=np.int32)
            for local_code, value in enumerate(local_values):
                code = global_index.get(value)
                if code is None:
                    code = len(global_values)
                    global_index[value] = code
                    global_values.append(value)
                mapping[local_code] = code
            column = payload.columns[attribute]
            out = column.copy()
            valid = column >= 0
            out[valid] = mapping[column[valid]]
            remapped.append(out)
        codes[attribute] = (
            np.concatenate(remapped) if remapped else np.empty(0, dtype=np.int32)
        )
        values[attribute] = global_values
        indexes[attribute] = global_index

    n_rows = int(codes[attributes[0]].size) if attributes else 0

    def _metadata(
        decoded: Optional[Sequence[str]],
        coded: Optional[Tuple[np.ndarray, List[str]]],
        label: str,
    ) -> Tuple[np.ndarray, List[str]]:
        if (decoded is None) == (coded is None):
            raise ValueError(f"supply exactly one of {label} values or columns")
        if coded is not None:
            column, column_values = coded
            column = np.asarray(column, dtype=np.int32)
        else:
            column, column_values, _ = _factorize(list(decoded))
        if column.size != n_rows:
            raise ValueError(
                f"table payloads cover {n_rows} rows but the {label} column "
                f"has {column.size}"
            )
        return column, list(column_values)

    table = ColumnarTable(
        codes=codes, values=values, indexes=indexes, n_rows=n_rows
    )
    table.request_ids = np.asarray(request_ids, dtype=np.int64)
    table.timestamps = np.asarray(timestamps, dtype=np.float64)
    if table.request_ids.size != n_rows or table.timestamps.size != n_rows:
        raise ValueError(
            f"table payloads cover {n_rows} rows but id/timestamp columns disagree"
        )
    table.cookie_codes, table.cookie_values = _metadata(cookies, cookie_columns, "cookie")
    table.ip_codes, table.ip_values = _metadata(ips, ip_columns, "address")
    return table


def device_components(table: ColumnarTable) -> np.ndarray:
    """Per-row labels of the table's device-closed connected components.

    Temporal state is keyed on the first-party cookie and the source
    address, so any row partition that must preserve temporal verdicts has
    to keep every record of a cookie AND every record of an address
    together.  This function computes exactly that closure: rows are
    grouped into connected components over their (cookie, source address)
    keys, and the returned ``int64`` array gives each row its component
    label.  Rows share a label iff they are linked through any chain of
    shared cookies/addresses; rows with neither key become singleton
    components.  Labels are arbitrary but deterministic for a given table.

    Both consumers of device-closure route through here: the sharded batch
    classifier (:func:`partition_rows_by_device`, which packs components
    onto a fixed number of shards) and the serving gateway's router
    (:class:`repro.serve.DeviceRouter`, which pins each component's keys
    to one worker).

    The union-find runs over the table's ``int32`` cookie/address code
    columns offset into disjoint integer ranges — cookies ``[0, C)``,
    addresses ``[C, C+I)`` — and unions each *distinct* (cookie, address)
    code pair once, instead of decoding strings and allocating tagged
    tuples per row as the reference implementation did; its serial cost
    used to bound sharded classification at campaign scale.
    """

    if table.cookie_codes is None or table.ip_codes is None:
        raise ValueError("device partitioning requires a table built with from_store")
    n = table.n_rows
    cookie_codes = table.cookie_codes
    ip_codes = table.ip_codes
    n_cookies = len(table.cookie_values)
    n_ips = len(table.ip_values)
    # A key decoding to a falsy string ("" cookie) groups nothing, exactly
    # like the reference implementation's `if cookie:` guard.
    cookie_ok = np.fromiter(
        (bool(value) for value in table.cookie_values), dtype=bool, count=n_cookies
    )
    ip_ok = np.fromiter((bool(value) for value in table.ip_values), dtype=bool, count=n_ips)
    has_cookie = cookie_codes >= 0
    if n_cookies:
        has_cookie = has_cookie & cookie_ok[np.where(has_cookie, cookie_codes, 0)]
    has_ip = ip_codes >= 0
    if n_ips:
        has_ip = has_ip & ip_ok[np.where(has_ip, ip_codes, 0)]

    parent = np.arange(n_cookies + n_ips, dtype=np.int64)

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    both = has_cookie & has_ip
    pair_keys = np.unique(
        cookie_codes[both].astype(np.int64) * max(1, n_ips) + ip_codes[both]
    )
    for key in pair_keys:
        cookie_root = find(int(key) // max(1, n_ips))
        ip_root = find(n_cookies + int(key) % max(1, n_ips))
        if cookie_root != ip_root:
            parent[ip_root] = cookie_root

    # Flatten the forest so every node points at its root, then label each
    # row by its preferred key's root (cookie first, like the reference);
    # keyless rows become singleton components past the node range.
    while True:
        flattened = parent[parent]
        if np.array_equal(flattened, parent):
            break
        parent = flattened
    labels = n_cookies + n_ips + np.arange(n, dtype=np.int64)
    ip_rows = np.nonzero(has_ip)[0]
    labels[ip_rows] = parent[n_cookies + ip_codes[ip_rows]]
    cookie_rows = np.nonzero(has_cookie)[0]
    labels[cookie_rows] = parent[cookie_codes[cookie_rows]]
    return labels


def partition_rows_by_device(table: ColumnarTable, shards: int) -> List[np.ndarray]:
    """Partition rows into *shards* device-closed groups.

    The components come from :func:`device_components`; this function only
    packs them onto shards, greedily largest first (deterministic: ties
    resolve to the lowest shard index).  The returned row-index arrays are
    sorted, and their concatenation covers every row exactly once.  Fewer
    than *shards* arrays come back when the table has fewer components.
    """

    if table.cookie_codes is None or table.ip_codes is None:
        raise ValueError("partitioning requires a table built with from_store")
    shards = max(1, int(shards))
    n = table.n_rows
    if shards == 1 or n == 0:
        return [np.arange(n, dtype=np.int64)]
    labels = device_components(table)

    # Group rows by component label in row order (the stable sort keeps
    # each group's rows ascending, as the reference produced).
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
    components = np.split(order, boundaries)

    # Greedy balanced packing, deterministic: components ordered by
    # (size desc, first row asc), each placed on the lightest shard.
    components.sort(key=lambda rows: (-rows.size, int(rows[0])))
    buckets: List[List[np.ndarray]] = [[] for _ in range(min(shards, max(1, len(components))))]
    loads = [0] * len(buckets)
    for rows in components:
        target = loads.index(min(loads))
        buckets[target].append(rows)
        loads[target] += int(rows.size)
    return [
        np.sort(np.concatenate(bucket)).astype(np.int64) for bucket in buckets if bucket
    ]
