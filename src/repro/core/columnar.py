"""Columnar fingerprint table: the detection stack's vectorized substrate.

The legacy detection paths walk Python objects once per (attribute pair,
request): the spatial miner re-extracts every grouping value for every pair
it examines and the filter list re-reads attributes per rule.  This module
extracts each :class:`~repro.honeysite.storage.RequestStore` exactly once
into per-attribute **code columns** (a factorize representation: an
``int32`` array of value codes per attribute, ``-1`` for missing, plus the
code → value decode list), after which

* the miner computes all pair co-occurrence statistics with one
  ``numpy.unique`` pass per pair (:meth:`SpatialInconsistencyMiner.mine_table`),
* the filter list classifies the whole table with one vectorized lookup per
  attribute pair (:meth:`FilterList.compile`), and
* the pipeline shards rows over the worker pool without pickling a single
  fingerprint — a shard is just slices of these arrays.

Equivalence with the object-at-a-time reference paths is exact, not
approximate: codes are assigned in first-occurrence order so ties broken by
dict insertion order in the legacy code break identically here
(``tests/test_columnar.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import CATEGORY_ATTRIBUTES
from repro.fingerprint.fingerprint import Fingerprint, grouping_value


def default_table_attributes() -> Tuple[Attribute, ...]:
    """Attributes extracted by default: every Table 7 category member plus
    the temporally tracked attributes, deduplicated in category order."""

    from repro.core.temporal import DEFAULT_COOKIE_ATTRIBUTES, DEFAULT_IP_ATTRIBUTES

    ordered: Dict[Attribute, None] = {}
    for members in CATEGORY_ATTRIBUTES.values():
        for attribute in members:
            ordered.setdefault(attribute, None)
    for attribute in DEFAULT_COOKIE_ATTRIBUTES + DEFAULT_IP_ATTRIBUTES:
        ordered.setdefault(attribute, None)
    return tuple(ordered)


def _factorize(items: Sequence[object]) -> Tuple[np.ndarray, List[object], Dict[object, int]]:
    """Encode *items* as codes in first-occurrence order (``None`` → ``-1``)."""

    codes = np.empty(len(items), dtype=np.int32)
    values: List[object] = []
    index: Dict[object, int] = {}
    for position, item in enumerate(items):
        if item is None:
            codes[position] = -1
            continue
        code = index.get(item)
        if code is None:
            code = len(values)
            index[item] = code
            values.append(item)
        codes[position] = code
    return codes, values, index


def _extract_column(
    fingerprints: Sequence[Fingerprint], attribute: Attribute
) -> Tuple[np.ndarray, List[object], Dict[object, int]]:
    """Factorized grouping-value column of one attribute.

    Raw attribute values repeat massively across a corpus, so the grouping
    transformation (resolution formatting, tuple joining) runs once per
    *distinct raw value*, not once per request: rows are first keyed by the
    raw value, and only a cache miss formats.  Because a raw value's first
    occurrence can never follow its grouping value's first occurrence,
    codes still come out in grouping-value first-occurrence order — the
    order the per-fingerprint extraction would produce.
    """

    codes = np.empty(len(fingerprints), dtype=np.int32)
    values: List[object] = []
    index: Dict[object, int] = {}
    raw_codes: Dict[object, int] = {}
    for position, fingerprint in enumerate(fingerprints):
        # Direct slot access: one dict.get per (row, attribute) is the
        # extraction floor, and the bound-method indirection of
        # ``Fingerprint.get`` measurably widens it at corpus scale.
        raw = fingerprint._values.get(attribute)
        if raw is None:
            codes[position] = -1
            continue
        code = raw_codes.get(raw)
        if code is None:
            grouped = grouping_value(attribute, raw)
            code = index.get(grouped)
            if code is None:
                code = len(values)
                index[grouped] = code
                values.append(grouped)
            raw_codes[raw] = code
        codes[position] = code
    return codes, values, index


class ColumnarTable:
    """Per-attribute grouping-value columns of one request store.

    Every attribute column is a pair of (``int32`` code array, decode list);
    request metadata needed by classification (ids, timestamps, cookies,
    source addresses) rides along as parallel arrays so the temporal
    detector can stream a table without touching the originating store.
    """

    def __init__(
        self,
        *,
        codes: Dict[Attribute, np.ndarray],
        values: Dict[Attribute, List[object]],
        indexes: Dict[Attribute, Dict[object, int]],
        n_rows: int,
        request_ids: Optional[np.ndarray] = None,
        timestamps: Optional[np.ndarray] = None,
        cookie_codes: Optional[np.ndarray] = None,
        cookie_values: Optional[List[str]] = None,
        ip_codes: Optional[np.ndarray] = None,
        ip_values: Optional[List[str]] = None,
    ):
        self._codes = codes
        self._values = values
        self._indexes = indexes
        self._n_rows = n_rows
        self.request_ids = request_ids
        self.timestamps = timestamps
        self.cookie_codes = cookie_codes
        self.cookie_values = cookie_values
        self.ip_codes = ip_codes
        self.ip_values = ip_values

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_fingerprints(
        cls,
        fingerprints: Sequence[Fingerprint],
        attributes: Optional[Iterable[Attribute]] = None,
    ) -> "ColumnarTable":
        """Extract grouping-value columns from a fingerprint sequence."""

        attributes = tuple(attributes) if attributes is not None else default_table_attributes()
        codes: Dict[Attribute, np.ndarray] = {}
        values: Dict[Attribute, List[object]] = {}
        indexes: Dict[Attribute, Dict[object, int]] = {}
        for attribute in attributes:
            codes[attribute], values[attribute], indexes[attribute] = _extract_column(
                fingerprints, attribute
            )
        return cls(codes=codes, values=values, indexes=indexes, n_rows=len(fingerprints))

    @classmethod
    def from_store(
        cls,
        store,
        attributes: Optional[Iterable[Attribute]] = None,
        extra_attributes: Iterable[Attribute] = (),
    ) -> "ColumnarTable":
        """Extract a :class:`~repro.honeysite.storage.RequestStore` once.

        *extra_attributes* extends the default attribute set (used when a
        loaded filter list references attributes outside Table 7).
        """

        if attributes is None:
            attributes = default_table_attributes()
        ordered: Dict[Attribute, None] = {attribute: None for attribute in attributes}
        for attribute in extra_attributes:
            ordered.setdefault(attribute, None)

        records = list(store)
        fingerprints = [record.request.fingerprint for record in records]
        table = cls.from_fingerprints(fingerprints, tuple(ordered))
        table.request_ids = np.array(
            [record.request.request_id for record in records], dtype=np.int64
        )
        table.timestamps = np.array([record.timestamp for record in records], dtype=np.float64)
        cookie_codes, cookie_values, _ = _factorize([record.cookie for record in records])
        table.cookie_codes, table.cookie_values = cookie_codes, cookie_values
        ip_codes, ip_values, _ = _factorize([record.request.ip_address for record in records])
        table.ip_codes, table.ip_values = ip_codes, ip_values
        return table

    # -- introspection ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return tuple(self._codes)

    def has_attribute(self, attribute: Attribute) -> bool:
        return attribute in self._codes

    def require_attribute(self, attribute: Attribute, purpose: str) -> None:
        """Raise loudly when *attribute* has no column.

        A missing column means the table was not extracted for its
        consumer; silently skipping would quietly weaken detection and
        diverge from the object-at-a-time reference paths.
        """

        if attribute not in self._codes:
            raise ValueError(
                f"table lacks a column for {purpose} {attribute.value!r}; "
                f"extract the store with FPInconsistent.extract_table (or "
                f"include the attribute in the table's attribute set)"
            )

    def codes_of(self, attribute: Attribute) -> np.ndarray:
        """The ``int32`` code column of *attribute* (``-1`` = missing)."""

        return self._codes[attribute]

    def values_of(self, attribute: Attribute) -> List[object]:
        """Decode list of *attribute* (code → grouping value)."""

        return self._values[attribute]

    def code_of(self, attribute: Attribute, value: object) -> Optional[int]:
        """Code of *value* in *attribute*'s column (``None`` when absent)."""

        index = self._indexes.get(attribute)
        if index is None:
            return None
        try:
            return index.get(value)
        except TypeError:  # unhashable values never occur in a column
            return None

    def value_at(self, attribute: Attribute, row: int):
        """The grouping value of *attribute* at *row* (``None`` if missing)."""

        code = self._codes[attribute][row]
        return self._values[attribute][code] if code >= 0 else None

    def cookie_at(self, row: int) -> Optional[str]:
        code = self.cookie_codes[row]
        return self.cookie_values[code] if code >= 0 else None

    def ip_at(self, row: int) -> Optional[str]:
        code = self.ip_codes[row]
        return self.ip_values[code] if code >= 0 else None

    # -- slicing ---------------------------------------------------------------

    def select(self, attributes: Iterable[Attribute]) -> "ColumnarTable":
        """Column-subset view sharing the underlying arrays.

        Mining shards use this so a process-pool payload carries only the
        columns its attribute pairs actually touch (request metadata is
        dropped too — mining never reads it).
        """

        attributes = tuple(attributes)
        return ColumnarTable(
            codes={attribute: self._codes[attribute] for attribute in attributes},
            values={attribute: self._values[attribute] for attribute in attributes},
            indexes={attribute: self._indexes[attribute] for attribute in attributes},
            n_rows=self._n_rows,
        )

    def take(self, rows: np.ndarray) -> "ColumnarTable":
        """Row-sliced view sharing decode lists (cheap to pickle per shard)."""

        rows = np.asarray(rows, dtype=np.int64)
        return ColumnarTable(
            codes={attribute: column[rows] for attribute, column in self._codes.items()},
            values=self._values,
            indexes=self._indexes,
            n_rows=int(rows.size),
            request_ids=None if self.request_ids is None else self.request_ids[rows],
            timestamps=None if self.timestamps is None else self.timestamps[rows],
            cookie_codes=None if self.cookie_codes is None else self.cookie_codes[rows],
            cookie_values=self.cookie_values,
            ip_codes=None if self.ip_codes is None else self.ip_codes[rows],
            ip_values=self.ip_values,
        )


def partition_rows_by_device(table: ColumnarTable, shards: int) -> List[np.ndarray]:
    """Partition rows into *shards* device-closed groups.

    Temporal state is keyed on the first-party cookie and the source
    address, so a correct row partition must keep every record of a cookie
    AND every record of an address together.  Rows are grouped into
    connected components over their (cookie, source address) keys with a
    union-find, then components are packed onto shards greedily largest
    first (deterministic: ties resolve to the lowest shard index).  The
    returned row-index arrays are sorted, and their concatenation covers
    every row exactly once.
    """

    if table.cookie_codes is None or table.ip_codes is None:
        raise ValueError("partitioning requires a table built with from_store")
    shards = max(1, int(shards))
    n = table.n_rows
    if shards == 1 or n == 0:
        return [np.arange(n, dtype=np.int64)]

    parent: Dict[object, object] = {}

    def find(node: object) -> object:
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(left: object, right: object) -> None:
        for node in (left, right):
            if node not in parent:
                parent[node] = node
        left_root, right_root = find(left), find(right)
        if left_root is not right_root:
            parent[right_root] = left_root

    row_nodes: List[object] = []
    for row in range(n):
        cookie = table.cookie_at(row)
        ip = table.ip_at(row)
        nodes = []
        if cookie:
            nodes.append(("cookie", cookie))
        if ip:
            nodes.append(("ip", ip))
        if not nodes:
            nodes.append(("row", row))
        for node in nodes:
            parent.setdefault(node, node)
        if len(nodes) == 2:
            union(nodes[0], nodes[1])
        row_nodes.append(nodes[0])

    components: Dict[object, List[int]] = {}
    for row, node in enumerate(row_nodes):
        components.setdefault(find(node), []).append(row)

    # Greedy balanced packing, deterministic: components ordered by
    # (size desc, first row asc), each placed on the lightest shard.
    ordered = sorted(components.values(), key=lambda rows: (-len(rows), rows[0]))
    buckets: List[List[int]] = [[] for _ in range(min(shards, max(1, len(ordered))))]
    loads = [0] * len(buckets)
    for rows in ordered:
        target = loads.index(min(loads))
        buckets[target].extend(rows)
        loads[target] += len(rows)
    return [np.array(sorted(bucket), dtype=np.int64) for bucket in buckets if bucket]
