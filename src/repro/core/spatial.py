"""Spatial inconsistency mining (Algorithm 1).

The miner implements Section 7.1: real devices occupy a limited
configuration space, so when bots alter attributes they inflate the number
of distinct configurations observed for popular attribute values.  For
every attribute pair within a category (Table 7) the miner:

1. counts, for each value of the first attribute, how many distinct values
   of the second attribute co-occur with it in the bot-labelled corpus;
2. ranks the first-attribute values by that count and keeps the ones whose
   count exceeds what the device knowledge base expects (the
   configuration-count *inflation* test);
3. walks the observed value pairs (most inflated first) and asks the
   knowledge base whether each pair can exist on a real device; impossible
   pairs with enough support become :class:`InconsistencyRule`s.

The paper performs step 3 manually ("identify cases where the combination
of these two attributes is impossible"); the knowledge base automates that
judgement so the pipeline is reproducible end to end.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import ColumnarTable
from repro.core.knowledge import DeviceKnowledgeBase
from repro.core.rules import FilterList, InconsistencyRule
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory, category_pairs
from repro.fingerprint.fingerprint import Fingerprint


@dataclass(frozen=True)
class SpatialMinerConfig:
    """Tuning knobs of the spatial miner.

    Attributes
    ----------
    min_support:
        Minimum number of corpus requests exhibiting a value pair before it
        can become a rule.  Guards against mislabelling rare but real
        configurations on the strength of one or two observations.
    min_value_support:
        Minimum number of requests carrying the first attribute's value at
        all; values rarer than this are skipped entirely.
    inflation_factor:
        A first-attribute value is examined only when its distinct
        second-value count exceeds ``inflation_factor`` times the count the
        knowledge base expects for real devices (when known).  Set to 0 to
        disable the inflation pre-filter (ablation).
    max_values_per_pair:
        Upper bound on how many first-attribute values are examined per
        attribute pair (most-inflated first), mirroring the paper's
        analyst starting "with the UA Device instance that has the highest
        number of unique combinations".
    """

    min_support: int = 5
    min_value_support: int = 10
    inflation_factor: float = 1.5
    max_values_per_pair: int = 50

    def __post_init__(self) -> None:
        if self.min_support < 1 or self.min_value_support < 1:
            raise ValueError("support thresholds must be positive")
        if self.inflation_factor < 0:
            raise ValueError("inflation_factor cannot be negative")
        if self.max_values_per_pair < 1:
            raise ValueError("max_values_per_pair must be positive")


@dataclass(frozen=True)
class PairStatistics:
    """Observed co-occurrence structure of one attribute pair."""

    category: AttributeCategory
    attribute_a: Attribute
    attribute_b: Attribute
    #: value_a -> {value_b -> count}
    combinations: Dict[object, Dict[object, int]]

    def distinct_counts(self) -> List[Tuple[object, int]]:
        """``(value_a, number of distinct value_b)`` sorted most-inflated first."""

        counts = [(value_a, len(values_b)) for value_a, values_b in self.combinations.items()]
        counts.sort(key=lambda item: item[1], reverse=True)
        return counts

    @functools.cached_property
    def _supports(self) -> Dict[object, int]:
        return {value: sum(bucket.values()) for value, bucket in self.combinations.items()}

    def value_support(self, value_a: object) -> int:
        """Number of requests carrying ``attribute_a == value_a``.

        Supports are summed once and cached: the mining loop queries every
        ranked value, and recomputing the sum per query made the reference
        miner O(values²) per pair.
        """

        return self._supports.get(value_a, 0)


class SpatialInconsistencyMiner:
    """Mines spatial inconsistency rules from bot-labelled fingerprints."""

    def __init__(
        self,
        knowledge: Optional[DeviceKnowledgeBase] = None,
        config: Optional[SpatialMinerConfig] = None,
    ):
        self._knowledge = knowledge if knowledge is not None else DeviceKnowledgeBase()
        self._config = config if config is not None else SpatialMinerConfig()

    @property
    def config(self) -> SpatialMinerConfig:
        return self._config

    @property
    def knowledge(self) -> DeviceKnowledgeBase:
        return self._knowledge

    # -- statistics ------------------------------------------------------------

    def pair_statistics(
        self,
        fingerprints: Sequence[Fingerprint],
        category: AttributeCategory,
        attribute_a: Attribute,
        attribute_b: Attribute,
    ) -> PairStatistics:
        """Co-occurrence counts of one attribute pair over *fingerprints*."""

        combinations: Dict[object, Dict[object, int]] = {}
        for fingerprint in fingerprints:
            value_a = fingerprint.value_for_grouping(attribute_a)
            value_b = fingerprint.value_for_grouping(attribute_b)
            if value_a is None or value_b is None:
                continue
            bucket = combinations.setdefault(value_a, {})
            bucket[value_b] = bucket.get(value_b, 0) + 1
        return PairStatistics(
            category=category,
            attribute_a=attribute_a,
            attribute_b=attribute_b,
            combinations=combinations,
        )

    # -- mining -----------------------------------------------------------------

    def mine_pair(
        self,
        fingerprints: Sequence[Fingerprint],
        category: AttributeCategory,
        attribute_a: Attribute,
        attribute_b: Attribute,
    ) -> List[InconsistencyRule]:
        """Mine rules for a single attribute pair."""

        statistics = self.pair_statistics(fingerprints, category, attribute_a, attribute_b)
        return self.select_rules(statistics)

    def select_rules(self, statistics: PairStatistics) -> List[InconsistencyRule]:
        """Steps 2–3 of Algorithm 1 over pre-computed pair statistics.

        Shared by the reference and the columnar miners: once the
        co-occurrence structure is identical, rule selection (ranking,
        inflation pre-filter, knowledge-base judgement) is identical too.
        """

        category = statistics.category
        attribute_a = statistics.attribute_a
        attribute_b = statistics.attribute_b
        config = self._config
        rules: List[InconsistencyRule] = []

        examined = 0
        for value_a, distinct_count in statistics.distinct_counts():
            if examined >= config.max_values_per_pair:
                break
            if statistics.value_support(value_a) < config.min_value_support:
                continue

            expected = self._knowledge.expected_value_count(attribute_a, value_a, attribute_b)
            if (
                config.inflation_factor > 0
                and expected is not None
                and distinct_count <= expected * config.inflation_factor
            ):
                # The configuration count is compatible with real devices;
                # nothing to examine for this value.
                continue
            examined += 1

            for value_b, support in sorted(
                statistics.combinations[value_a].items(), key=lambda item: item[1], reverse=True
            ):
                if support < config.min_support:
                    continue
                verdict = self._knowledge.is_pair_consistent(
                    attribute_a, value_a, attribute_b, value_b
                )
                if verdict is False:
                    rules.append(
                        InconsistencyRule(
                            category=category,
                            attribute_a=attribute_a,
                            value_a=value_a,
                            attribute_b=attribute_b,
                            value_b=value_b,
                            support=support,
                        )
                    )
        return rules

    def mine(self, fingerprints: Sequence[Fingerprint]) -> FilterList:
        """Mine a full filter list over every category's attribute pairs.

        This is the object-at-a-time reference implementation: one pass
        over *fingerprints* per attribute-pair orientation.  The columnar
        engine (:meth:`mine_table`) reproduces its output exactly.
        """

        filter_list = FilterList()
        for category, attribute_a, attribute_b in ordered_pair_tasks():
            for rule in self.mine_pair(fingerprints, category, attribute_a, attribute_b):
                filter_list.add(rule)
        return filter_list

    def mine_store(self, store) -> FilterList:
        """Mine from a :class:`~repro.honeysite.RequestStore` of bot traffic."""

        fingerprints = [record.request.fingerprint for record in store]
        return self.mine(fingerprints)

    # -- columnar mining --------------------------------------------------------

    def mine_table(
        self,
        table: ColumnarTable,
        *,
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> FilterList:
        """Mine a filter list from a columnar table (vectorized engine).

        Co-occurrence statistics come from a single ``numpy.unique`` pass
        per attribute pair instead of one fingerprint walk per pair.  With
        ``workers > 1`` the pair tasks fan out over the shard worker pool
        in contiguous chunks; results merge in canonical pair order, so the
        filter list is identical for any worker count and either executor.
        """

        tasks = ordered_pair_tasks()
        workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and len(tasks) > 1:
            from repro.analysis.engine import map_shards

            chunk_size = -(-len(tasks) // workers)  # ceil division
            shards = []
            for start in range(0, len(tasks), chunk_size):
                chunk = tuple(tasks[start : start + chunk_size])
                touched: Dict[Attribute, None] = {}
                for _category, attribute_a, attribute_b in chunk:
                    touched.setdefault(attribute_a, None)
                    touched.setdefault(attribute_b, None)
                shards.append(
                    _MiningShard(
                        pairs=chunk,
                        # Only the columns this chunk mines cross the
                        # process boundary, not the whole table.
                        table=table.select(touched),
                        config=self._config,
                        knowledge=self._knowledge,
                    )
                )
            rule_lists = map_shards(
                _mine_shard, shards, workers=workers, executor=executor, label="mine"
            )
            filter_list = FilterList()
            for rules_per_pair in rule_lists:
                for rules in rules_per_pair:
                    for rule in rules:
                        filter_list.add(rule)
            return filter_list

        filter_list = FilterList()
        for category, attribute_a, attribute_b in tasks:
            statistics = columnar_pair_statistics(table, category, attribute_a, attribute_b)
            for rule in self.select_rules(statistics):
                filter_list.add(rule)
        return filter_list


def ordered_pair_tasks() -> List[Tuple[AttributeCategory, Attribute, Attribute]]:
    """Every attribute-pair orientation in canonical mining order.

    Algorithm 1 sorts one side of the pair; mining the swapped orientation
    as well catches pairs where the *second* attribute's values are the
    inflated ones.  Both miners and the sharded merge iterate this exact
    sequence, which is what makes their outputs identical.
    """

    tasks: List[Tuple[AttributeCategory, Attribute, Attribute]] = []
    for category in AttributeCategory:
        for attribute_a, attribute_b in category_pairs(category):
            tasks.append((category, attribute_a, attribute_b))
            tasks.append((category, attribute_b, attribute_a))
    return tasks


def columnar_pair_statistics(
    table: ColumnarTable,
    category: AttributeCategory,
    attribute_a: Attribute,
    attribute_b: Attribute,
) -> PairStatistics:
    """Vectorized equivalent of :meth:`SpatialInconsistencyMiner.pair_statistics`.

    One ``numpy.unique`` pass yields every (value_a, value_b) count.  The
    result dicts are rebuilt in first-occurrence order — the insertion
    order the per-fingerprint loop produces — so downstream tie-breaking
    (stable sorts over dict order) behaves identically.
    """

    codes_a = table.codes_of(attribute_a)
    codes_b = table.codes_of(attribute_b)
    mask = (codes_a >= 0) & (codes_b >= 0)
    rows = np.nonzero(mask)[0]
    combinations: Dict[object, Dict[object, int]] = {}
    if rows.size:
        n_b = len(table.values_of(attribute_b))
        keys = codes_a[rows].astype(np.int64) * n_b + codes_b[rows]
        unique_keys, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
        first_row = np.full(unique_keys.size, table.n_rows, dtype=np.int64)
        np.minimum.at(first_row, inverse, rows)
        values_a = table.values_of(attribute_a)
        values_b = table.values_of(attribute_b)
        for position in np.argsort(first_row, kind="stable"):
            key = int(unique_keys[position])
            value_a = values_a[key // n_b]
            value_b = values_b[key % n_b]
            combinations.setdefault(value_a, {})[value_b] = int(counts[position])
    return PairStatistics(
        category=category,
        attribute_a=attribute_a,
        attribute_b=attribute_b,
        combinations=combinations,
    )


@dataclass(frozen=True)
class _MiningShard:
    """One worker's chunk of pair-mining tasks (picklable for process pools)."""

    pairs: Tuple[Tuple[AttributeCategory, Attribute, Attribute], ...]
    table: ColumnarTable
    config: Optional[SpatialMinerConfig]
    knowledge: Optional[DeviceKnowledgeBase]


def _mine_shard(shard: _MiningShard) -> List[List[InconsistencyRule]]:
    """Worker entry point: mine every pair of one chunk, preserving order."""

    miner = SpatialInconsistencyMiner(knowledge=shard.knowledge, config=shard.config)
    results: List[List[InconsistencyRule]] = []
    for category, attribute_a, attribute_b in shard.pairs:
        statistics = columnar_pair_statistics(shard.table, category, attribute_a, attribute_b)
        results.append(miner.select_rules(statistics))
    return results
