"""Spatial inconsistency mining (Algorithm 1).

The miner implements Section 7.1: real devices occupy a limited
configuration space, so when bots alter attributes they inflate the number
of distinct configurations observed for popular attribute values.  For
every attribute pair within a category (Table 7) the miner:

1. counts, for each value of the first attribute, how many distinct values
   of the second attribute co-occur with it in the bot-labelled corpus;
2. ranks the first-attribute values by that count and keeps the ones whose
   count exceeds what the device knowledge base expects (the
   configuration-count *inflation* test);
3. walks the observed value pairs (most inflated first) and asks the
   knowledge base whether each pair can exist on a real device; impossible
   pairs with enough support become :class:`InconsistencyRule`s.

The paper performs step 3 manually ("identify cases where the combination
of these two attributes is impossible"); the knowledge base automates that
judgement so the pipeline is reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.knowledge import DeviceKnowledgeBase
from repro.core.rules import FilterList, InconsistencyRule
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory, category_pairs
from repro.fingerprint.fingerprint import Fingerprint


@dataclass(frozen=True)
class SpatialMinerConfig:
    """Tuning knobs of the spatial miner.

    Attributes
    ----------
    min_support:
        Minimum number of corpus requests exhibiting a value pair before it
        can become a rule.  Guards against mislabelling rare but real
        configurations on the strength of one or two observations.
    min_value_support:
        Minimum number of requests carrying the first attribute's value at
        all; values rarer than this are skipped entirely.
    inflation_factor:
        A first-attribute value is examined only when its distinct
        second-value count exceeds ``inflation_factor`` times the count the
        knowledge base expects for real devices (when known).  Set to 0 to
        disable the inflation pre-filter (ablation).
    max_values_per_pair:
        Upper bound on how many first-attribute values are examined per
        attribute pair (most-inflated first), mirroring the paper's
        analyst starting "with the UA Device instance that has the highest
        number of unique combinations".
    """

    min_support: int = 5
    min_value_support: int = 10
    inflation_factor: float = 1.5
    max_values_per_pair: int = 50

    def __post_init__(self) -> None:
        if self.min_support < 1 or self.min_value_support < 1:
            raise ValueError("support thresholds must be positive")
        if self.inflation_factor < 0:
            raise ValueError("inflation_factor cannot be negative")
        if self.max_values_per_pair < 1:
            raise ValueError("max_values_per_pair must be positive")


@dataclass(frozen=True)
class PairStatistics:
    """Observed co-occurrence structure of one attribute pair."""

    category: AttributeCategory
    attribute_a: Attribute
    attribute_b: Attribute
    #: value_a -> {value_b -> count}
    combinations: Dict[object, Dict[object, int]]

    def distinct_counts(self) -> List[Tuple[object, int]]:
        """``(value_a, number of distinct value_b)`` sorted most-inflated first."""

        counts = [(value_a, len(values_b)) for value_a, values_b in self.combinations.items()]
        counts.sort(key=lambda item: item[1], reverse=True)
        return counts

    def value_support(self, value_a: object) -> int:
        """Number of requests carrying ``attribute_a == value_a``."""

        return sum(self.combinations.get(value_a, {}).values())


class SpatialInconsistencyMiner:
    """Mines spatial inconsistency rules from bot-labelled fingerprints."""

    def __init__(
        self,
        knowledge: Optional[DeviceKnowledgeBase] = None,
        config: Optional[SpatialMinerConfig] = None,
    ):
        self._knowledge = knowledge if knowledge is not None else DeviceKnowledgeBase()
        self._config = config if config is not None else SpatialMinerConfig()

    @property
    def config(self) -> SpatialMinerConfig:
        return self._config

    @property
    def knowledge(self) -> DeviceKnowledgeBase:
        return self._knowledge

    # -- statistics ------------------------------------------------------------

    def pair_statistics(
        self,
        fingerprints: Sequence[Fingerprint],
        category: AttributeCategory,
        attribute_a: Attribute,
        attribute_b: Attribute,
    ) -> PairStatistics:
        """Co-occurrence counts of one attribute pair over *fingerprints*."""

        combinations: Dict[object, Dict[object, int]] = {}
        for fingerprint in fingerprints:
            value_a = fingerprint.value_for_grouping(attribute_a)
            value_b = fingerprint.value_for_grouping(attribute_b)
            if value_a is None or value_b is None:
                continue
            bucket = combinations.setdefault(value_a, {})
            bucket[value_b] = bucket.get(value_b, 0) + 1
        return PairStatistics(
            category=category,
            attribute_a=attribute_a,
            attribute_b=attribute_b,
            combinations=combinations,
        )

    # -- mining -----------------------------------------------------------------

    def mine_pair(
        self,
        fingerprints: Sequence[Fingerprint],
        category: AttributeCategory,
        attribute_a: Attribute,
        attribute_b: Attribute,
    ) -> List[InconsistencyRule]:
        """Mine rules for a single attribute pair."""

        statistics = self.pair_statistics(fingerprints, category, attribute_a, attribute_b)
        config = self._config
        rules: List[InconsistencyRule] = []

        examined = 0
        for value_a, distinct_count in statistics.distinct_counts():
            if examined >= config.max_values_per_pair:
                break
            if statistics.value_support(value_a) < config.min_value_support:
                continue

            expected = self._knowledge.expected_value_count(attribute_a, value_a, attribute_b)
            if (
                config.inflation_factor > 0
                and expected is not None
                and distinct_count <= expected * config.inflation_factor
            ):
                # The configuration count is compatible with real devices;
                # nothing to examine for this value.
                continue
            examined += 1

            for value_b, support in sorted(
                statistics.combinations[value_a].items(), key=lambda item: item[1], reverse=True
            ):
                if support < config.min_support:
                    continue
                verdict = self._knowledge.is_pair_consistent(
                    attribute_a, value_a, attribute_b, value_b
                )
                if verdict is False:
                    rules.append(
                        InconsistencyRule(
                            category=category,
                            attribute_a=attribute_a,
                            value_a=value_a,
                            attribute_b=attribute_b,
                            value_b=value_b,
                            support=support,
                        )
                    )
        return rules

    def mine(self, fingerprints: Sequence[Fingerprint]) -> FilterList:
        """Mine a full filter list over every category's attribute pairs."""

        filter_list = FilterList()
        for category in AttributeCategory:
            for attribute_a, attribute_b in category_pairs(category):
                for rule in self.mine_pair(fingerprints, category, attribute_a, attribute_b):
                    filter_list.add(rule)
                # Algorithm 1 sorts one side of the pair; mining the swapped
                # orientation as well catches pairs where the *second*
                # attribute's values are the inflated ones.
                for rule in self.mine_pair(fingerprints, category, attribute_b, attribute_a):
                    filter_list.add(rule)
        return filter_list

    def mine_store(self, store) -> FilterList:
        """Mine from a :class:`~repro.honeysite.RequestStore` of bot traffic."""

        fingerprints = [record.request.fingerprint for record in store]
        return self.mine(fingerprints)
