"""Inconsistency rules and filter lists.

FP-Inconsistent's output is a *filter list*: a set of rules, each stating
that a particular pair of attribute values cannot co-occur on a real device
(Table 6).  A request whose fingerprint matches any rule is classified as a
bot.  Filter lists serialise to JSON so they can be shipped to anti-bot
services (Section 8.3) and are what the paper open-sources.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.categories import AttributeCategory
from repro.fingerprint.fingerprint import Fingerprint


@dataclass(frozen=True)
class InconsistencyRule:
    """One spatial inconsistency: a value pair that cannot exist for real devices.

    Attributes
    ----------
    category:
        The attribute group (Table 7) the pair was mined from.
    attribute_a / value_a, attribute_b / value_b:
        The two attribute values that cannot co-occur.  Values are stored
        in their grouping form (the printable representation used in the
        paper's tables, e.g. ``"1920x1080"`` for resolutions).
    support:
        Number of mining-corpus requests exhibiting the pair.
    """

    category: AttributeCategory
    attribute_a: Attribute
    value_a: object
    attribute_b: Attribute
    value_b: object
    support: int = 0

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """Order-independent identity of the rule (ignores support)."""

        left = (self.attribute_a.value, str(self.value_a))
        right = (self.attribute_b.value, str(self.value_b))
        first, second = sorted((left, right))
        return (first[0], first[1], second[0], second[1])

    def matches(self, fingerprint: Fingerprint) -> bool:
        """Whether *fingerprint* exhibits this impossible value pair."""

        observed_a = fingerprint.value_for_grouping(self.attribute_a)
        observed_b = fingerprint.value_for_grouping(self.attribute_b)
        return observed_a == self.value_a and observed_b == self.value_b

    def describe(self) -> str:
        """Human-readable one-liner in the Table 6 style."""

        return (
            f"[{self.category.value}] ({self.attribute_a.value}={self.value_a!r}, "
            f"{self.attribute_b.value}={self.value_b!r})"
        )

    def to_dict(self) -> Dict:
        return {
            "category": self.category.value,
            "attribute_a": self.attribute_a.value,
            "value_a": self.value_a,
            "attribute_b": self.attribute_b.value,
            "value_b": self.value_b,
            "support": self.support,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "InconsistencyRule":
        return cls(
            category=AttributeCategory(data["category"]),
            attribute_a=Attribute(data["attribute_a"]),
            value_a=data["value_a"],
            attribute_b=Attribute(data["attribute_b"]),
            value_b=data["value_b"],
            support=int(data.get("support", 0)),
        )


class FilterList:
    """A deployable collection of inconsistency rules."""

    def __init__(self, rules: Optional[Iterable[InconsistencyRule]] = None):
        self._rules: List[InconsistencyRule] = []
        self._by_key: Dict[Tuple[str, str, str, str], InconsistencyRule] = {}
        #: attribute_a -> value_a -> rules, used to make matching O(#attributes)
        #: instead of O(#rules) per fingerprint.
        self._index: Dict[Attribute, Dict[object, List[InconsistencyRule]]] = {}
        if rules:
            for rule in rules:
                self.add(rule)

    # -- collection protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[InconsistencyRule]:
        return iter(self._rules)

    def __contains__(self, rule: InconsistencyRule) -> bool:
        return rule.key in self._by_key

    @property
    def rules(self) -> Tuple[InconsistencyRule, ...]:
        return tuple(self._rules)

    def add(self, rule: InconsistencyRule) -> bool:
        """Add *rule*; returns ``False`` when an equivalent rule exists."""

        if rule.key in self._by_key:
            return False
        self._rules.append(rule)
        self._by_key[rule.key] = rule
        self._index.setdefault(rule.attribute_a, {}).setdefault(rule.value_a, []).append(rule)
        return True

    def merge(self, other: "FilterList") -> "FilterList":
        """New filter list containing the union of rules."""

        merged = FilterList(self._rules)
        for rule in other:
            merged.add(rule)
        return merged

    # -- matching --------------------------------------------------------------------

    def first_match(self, fingerprint: Fingerprint) -> Optional[InconsistencyRule]:
        """The first rule *fingerprint* violates, or ``None``.

        Matching is indexed by the first attribute's value, so only rules
        whose ``value_a`` the fingerprint actually exhibits are examined.
        """

        for attribute, by_value in self._index.items():
            observed = fingerprint.value_for_grouping(attribute)
            if observed is None:
                continue
            for rule in by_value.get(observed, ()):  # pragma: no branch
                if fingerprint.value_for_grouping(rule.attribute_b) == rule.value_b:
                    return rule
        return None

    def matches(self, fingerprint: Fingerprint) -> bool:
        """Whether *fingerprint* violates any rule."""

        return self.first_match(fingerprint) is not None

    def all_matches(self, fingerprint: Fingerprint) -> Tuple[InconsistencyRule, ...]:
        """Every rule *fingerprint* violates."""

        return tuple(rule for rule in self._rules if rule.matches(fingerprint))

    def compile(self, table) -> "CompiledFilterList":
        """Compile the list against a columnar *table* for vectorized matching.

        Every rule's value pair is translated to the table's value codes
        and grouped per attribute pair, so classifying the whole table is
        one vectorized lookup per attribute pair
        (:meth:`CompiledFilterList.first_match_rows`) instead of per-rule
        Python matching per request.  Rules whose values never occur in the
        table compile away entirely.  Matching semantics — including which
        rule wins when several match one request — are identical to
        :meth:`first_match`; priorities mirror its iteration order.
        """

        for rule in self._rules:
            for attribute in (rule.attribute_a, rule.attribute_b):
                # An absent column would make the rule silently unmatchable.
                table.require_attribute(attribute, "rule attribute")

        max_bucket = 1
        for by_value in self._index.values():
            for rules in by_value.values():
                max_bucket = max(max_bucket, len(rules))

        entries: List[Tuple[Attribute, Attribute, int, int, int, InconsistencyRule]] = []
        for attribute_position, (attribute, by_value) in enumerate(self._index.items()):
            for value_a, rules in by_value.items():
                code_a = table.code_of(attribute, value_a)
                if code_a is None:
                    continue
                for bucket_position, rule in enumerate(rules):
                    code_b = table.code_of(rule.attribute_b, rule.value_b)
                    if code_b is None:
                        continue
                    priority = attribute_position * max_bucket + bucket_position
                    entries.append(
                        (attribute, rule.attribute_b, code_a, code_b, priority, rule)
                    )
        return CompiledFilterList(entries, table)

    # -- views -----------------------------------------------------------------------

    def by_category(self) -> Dict[AttributeCategory, Tuple[InconsistencyRule, ...]]:
        """Rules grouped by attribute category (Table 6 layout)."""

        grouped: Dict[AttributeCategory, List[InconsistencyRule]] = {}
        for rule in self._rules:
            grouped.setdefault(rule.category, []).append(rule)
        return {category: tuple(rules) for category, rules in grouped.items()}

    def by_attribute_pair(self) -> Dict[Tuple[Attribute, Attribute], Tuple[InconsistencyRule, ...]]:
        """Rules grouped by the attribute pair they constrain."""

        grouped: Dict[Tuple[Attribute, Attribute], List[InconsistencyRule]] = {}
        for rule in self._rules:
            pair = tuple(sorted((rule.attribute_a, rule.attribute_b), key=lambda a: a.value))
            grouped.setdefault(pair, []).append(rule)  # type: ignore[arg-type]
        return {pair: tuple(rules) for pair, rules in grouped.items()}

    def top_rules(self, count: int = 10) -> Tuple[InconsistencyRule, ...]:
        """The *count* highest-support rules."""

        return tuple(sorted(self._rules, key=lambda rule: rule.support, reverse=True)[:count])

    # -- persistence -------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the list to a JSON document."""

        return json.dumps([rule.to_dict() for rule in self._rules], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FilterList":
        """Load a list serialised by :meth:`to_json`."""

        return cls(InconsistencyRule.from_dict(item) for item in json.loads(text))

    def save(self, path) -> None:
        """Write the JSON serialisation to *path*."""

        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "FilterList":
        """Load a filter list from *path*."""

        return cls.from_json(Path(path).read_text(encoding="utf-8"))


class CompiledFilterList:
    """A filter list compiled against one columnar table's value codes.

    Rules are grouped by the attribute pair they constrain; per group the
    impossible (code_a, code_b) pairs live in a sorted key array, so
    matching a whole table is one fused key computation plus a
    ``searchsorted`` per group.  Each compiled rule carries the priority of
    its position in :meth:`FilterList.first_match`'s iteration order; the
    lowest-priority hit per row reproduces the reference match exactly.
    """

    _NO_MATCH = np.iinfo(np.int64).max

    def __init__(self, entries, table):
        self._table = table
        self._rules: List[InconsistencyRule] = [entry[5] for entry in entries]
        #: (attribute_a, attribute_b) -> (sorted key array, priorities, rule indices)
        self._groups: Dict[Tuple[Attribute, Attribute], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        grouped: Dict[Tuple[Attribute, Attribute], List[Tuple[int, int, int]]] = {}
        for rule_index, (attribute_a, attribute_b, code_a, code_b, priority, _rule) in enumerate(
            entries
        ):
            n_b = len(table.values_of(attribute_b))
            key = code_a * n_b + code_b
            grouped.setdefault((attribute_a, attribute_b), []).append(
                (key, priority, rule_index)
            )
        for pair, items in grouped.items():
            items.sort()
            self._groups[pair] = (
                np.array([item[0] for item in items], dtype=np.int64),
                np.array([item[1] for item in items], dtype=np.int64),
                np.array([item[2] for item in items], dtype=np.int64),
            )

    def __len__(self) -> int:
        return len(self._rules)

    def first_match_rows(self) -> List[Optional[InconsistencyRule]]:
        """The winning rule per table row (``None`` where no rule matches)."""

        table = self._table
        n = table.n_rows
        best_priority = np.full(n, self._NO_MATCH, dtype=np.int64)
        best_rule = np.full(n, -1, dtype=np.int64)
        for (attribute_a, attribute_b), (keys, priorities, rule_indices) in self._groups.items():
            codes_a = table.codes_of(attribute_a)
            codes_b = table.codes_of(attribute_b)
            n_b = len(table.values_of(attribute_b))
            row_keys = codes_a.astype(np.int64) * n_b + codes_b
            positions = np.clip(np.searchsorted(keys, row_keys), 0, keys.size - 1)
            hits = (codes_a >= 0) & (codes_b >= 0) & (keys[positions] == row_keys)
            row_priorities = np.where(hits, priorities[positions], self._NO_MATCH)
            better = row_priorities < best_priority
            best_priority = np.where(better, row_priorities, best_priority)
            best_rule = np.where(better, rule_indices[positions], best_rule)
        return [self._rules[index] if index >= 0 else None for index in best_rule]
