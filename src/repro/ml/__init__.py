"""From-scratch tree learners, encoders, metrics and explainability."""

from repro.ml.encoding import (
    DEFAULT_FEATURE_ATTRIBUTES,
    DISPLAY_NAMES,
    FingerprintEncoder,
    display_name,
)
from repro.ml.explain import (
    FeatureImportance,
    gain_importance,
    permutation_importance,
    rank_importances,
    top_features,
)
from repro.ml.forest import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.metrics import ConfusionMatrix, accuracy_score, confusion_matrix, train_test_split
from repro.ml.tree import DecisionTree

__all__ = [
    "ConfusionMatrix",
    "DEFAULT_FEATURE_ATTRIBUTES",
    "DISPLAY_NAMES",
    "DecisionTree",
    "FeatureImportance",
    "FingerprintEncoder",
    "GradientBoostingClassifier",
    "RandomForestClassifier",
    "accuracy_score",
    "confusion_matrix",
    "display_name",
    "gain_importance",
    "permutation_importance",
    "rank_importances",
    "top_features",
    "train_test_split",
]
