"""Random forest and gradient-boosting ensembles.

The paper trains "random forest classifiers using XGBoost"; this module
provides both ensemble flavours on top of :class:`repro.ml.tree.DecisionTree`
so the Section 5.2 analysis can be reproduced with either.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTree


class RandomForestClassifier:
    """Bagged ensemble of gini CART trees with feature subsampling."""

    def __init__(
        self,
        *,
        n_estimators: int = 30,
        max_depth: int = 10,
        min_samples_leaf: int = 2,
        max_features: str = "sqrt",
        max_bins: int = 32,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.random_state = random_state
        self.trees_: List[DecisionTree] = []
        self.n_features_: int = 0

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(n_features)))
        if self.max_features == "all" or self.max_features is None:
            return None
        if isinstance(self.max_features, int):
            return max(1, min(n_features, self.max_features))
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        """Fit the forest on binary labels (0 = detected, 1 = evaded)."""

        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        self.n_features_ = features.shape[1]
        max_features = self._resolve_max_features(self.n_features_)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        n_rows = features.shape[0]
        for _ in range(self.n_estimators):
            bootstrap = rng.integers(0, n_rows, size=n_rows)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                max_bins=self.max_bins,
                task="classification",
                random_state=np.random.default_rng(rng.integers(0, 2 ** 32)),
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self.trees_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Mean class-1 probability across trees."""

        self._check_fitted()
        features = np.asarray(features, dtype=float)
        probabilities = np.zeros(features.shape[0], dtype=float)
        for tree in self.trees_:
            probabilities += tree.predict_proba(features)
        return probabilities / len(self.trees_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted binary labels."""

        return (self.predict_proba(features) >= 0.5).astype(int)

    def feature_importances(self) -> np.ndarray:
        """Mean normalised split-gain importance across trees."""

        self._check_fitted()
        importances = np.zeros(self.n_features_, dtype=float)
        for tree in self.trees_:
            importances += tree.feature_importances()
        importances /= len(self.trees_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances


class GradientBoostingClassifier:
    """Binary gradient boosting with regression trees (XGBoost-style)."""

    def __init__(
        self,
        *,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 5,
        min_samples_leaf: int = 5,
        max_bins: int = 32,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.random_state = random_state
        self.trees_: List[DecisionTree] = []
        self.base_score_: float = 0.0
        self.n_features_: int = 0

    @staticmethod
    def _sigmoid(values: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        """Fit with logistic loss on binary labels."""

        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        self.n_features_ = features.shape[1]
        positive_rate = float(np.clip(labels.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = math.log(positive_rate / (1.0 - positive_rate))
        rng = np.random.default_rng(self.random_state)
        raw = np.full(features.shape[0], self.base_score_, dtype=float)
        self.trees_ = []
        for _ in range(self.n_estimators):
            residual = labels - self._sigmoid(raw)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_bins=self.max_bins,
                task="regression",
                random_state=np.random.default_rng(rng.integers(0, 2 ** 32)),
            )
            tree.fit(features, residual)
            raw += self.learning_rate * tree.predict_value(features)
            self.trees_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("model has not been fitted")

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw additive score before the sigmoid link."""

        self._check_fitted()
        features = np.asarray(features, dtype=float)
        raw = np.full(features.shape[0], self.base_score_, dtype=float)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict_value(features)
        return raw

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-1 probability."""

        return self._sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted binary labels."""

        return (self.predict_proba(features) >= 0.5).astype(int)

    def feature_importances(self) -> np.ndarray:
        """Mean normalised split-gain importance across boosting rounds."""

        self._check_fitted()
        importances = np.zeros(self.n_features_, dtype=float)
        for tree in self.trees_:
            importances += tree.feature_importances()
        importances /= len(self.trees_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
