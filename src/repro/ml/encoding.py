"""Fingerprint → feature-matrix encoding.

The Section 5.2 classifiers consume fingerprint attributes as features.
This encoder maps the heterogeneous attribute values (strings, lists,
booleans, resolutions) into a numeric matrix and keeps human-readable
feature names matching the labels the paper prints in Table 2
("Vendor Flavors", "Plugins", "Screen Frame", "Hardware Concurrency", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint

#: Display names for attributes, matching the paper's tables.
DISPLAY_NAMES: Dict[Attribute, str] = {
    Attribute.UA_DEVICE: "UA Device",
    Attribute.UA_OS: "UA OS",
    Attribute.UA_BROWSER: "UA Browser",
    Attribute.VENDOR: "Vendor",
    Attribute.VENDOR_FLAVORS: "Vendor Flavors",
    Attribute.PLUGINS: "Plugins",
    Attribute.PLATFORM: "Platform",
    Attribute.HARDWARE_CONCURRENCY: "Hardware Concurrency",
    Attribute.DEVICE_MEMORY: "Device Memory",
    Attribute.SCREEN_RESOLUTION: "Screen Resolution",
    Attribute.SCREEN_FRAME: "Screen Frame",
    Attribute.COLOR_DEPTH: "Color Depth",
    Attribute.COLOR_GAMUT: "Color Gamut",
    Attribute.TOUCH_SUPPORT: "Touch Support",
    Attribute.MAX_TOUCH_POINTS: "Max Touch Points",
    Attribute.FORCED_COLORS: "Forced Colors",
    Attribute.CONTRAST: "Contrast",
    Attribute.HDR: "HDR",
    Attribute.REDUCED_MOTION: "Reduced Motion",
    Attribute.TIMEZONE: "Timezone",
    Attribute.LANGUAGES: "Languages",
    Attribute.WEBDRIVER: "Webdriver",
    Attribute.PRODUCT_SUB: "Product Sub",
    Attribute.MONOSPACE_WIDTH: "Monospace Width",
    Attribute.MONOCHROME: "Monochrome",
    Attribute.INVERTED_COLORS: "Inverted Colors",
    Attribute.PDF_VIEWER_ENABLED: "PDF Viewer Enabled",
    Attribute.COOKIES_ENABLED: "Cookies Enabled",
}

#: Default feature set for the evasion classifiers: the FingerprintJS
#: attributes the paper lists plus the screen/device ones in Table 2.
DEFAULT_FEATURE_ATTRIBUTES: Tuple[Attribute, ...] = (
    Attribute.UA_DEVICE,
    Attribute.UA_OS,
    Attribute.UA_BROWSER,
    Attribute.VENDOR,
    Attribute.VENDOR_FLAVORS,
    Attribute.PLUGINS,
    Attribute.PLATFORM,
    Attribute.HARDWARE_CONCURRENCY,
    Attribute.DEVICE_MEMORY,
    Attribute.SCREEN_RESOLUTION,
    Attribute.SCREEN_FRAME,
    Attribute.COLOR_DEPTH,
    Attribute.COLOR_GAMUT,
    Attribute.TOUCH_SUPPORT,
    Attribute.MAX_TOUCH_POINTS,
    Attribute.FORCED_COLORS,
    Attribute.CONTRAST,
    Attribute.HDR,
    Attribute.REDUCED_MOTION,
    Attribute.TIMEZONE,
    Attribute.LANGUAGES,
    Attribute.WEBDRIVER,
    Attribute.PRODUCT_SUB,
    Attribute.MONOSPACE_WIDTH,
)

_NUMERIC_ATTRIBUTES = {
    Attribute.HARDWARE_CONCURRENCY,
    Attribute.DEVICE_MEMORY,
    Attribute.SCREEN_FRAME,
    Attribute.COLOR_DEPTH,
    Attribute.MAX_TOUCH_POINTS,
    Attribute.CONTRAST,
    Attribute.MONOSPACE_WIDTH,
    Attribute.MONOCHROME,
}

_BOOLEAN_ATTRIBUTES = {
    Attribute.FORCED_COLORS,
    Attribute.HDR,
    Attribute.REDUCED_MOTION,
    Attribute.WEBDRIVER,
    Attribute.INVERTED_COLORS,
    Attribute.PDF_VIEWER_ENABLED,
    Attribute.COOKIES_ENABLED,
}


def display_name(attribute: Attribute) -> str:
    """Human-readable name for *attribute* (Table 2 style)."""

    return DISPLAY_NAMES.get(attribute, attribute.value.replace("_", " ").title())


@dataclass
class FingerprintEncoder:
    """Ordinal/numeric encoder from fingerprints to a feature matrix.

    Categorical attributes are mapped to dense integer codes learned from
    the fitting corpus (unseen categories encode as ``-1``); numeric and
    boolean attributes pass through.  One fingerprint attribute maps to
    exactly one feature column, which keeps Table 2's per-attribute
    importances directly readable.
    """

    attributes: Tuple[Attribute, ...] = DEFAULT_FEATURE_ATTRIBUTES

    def __post_init__(self) -> None:
        self._category_codes: Dict[Attribute, Dict[object, int]] = {}
        self._fitted = False

    # -- helpers --------------------------------------------------------------

    @property
    def feature_names(self) -> List[str]:
        """Display name of each feature column."""

        return [display_name(attribute) for attribute in self.attributes]

    def _raw_value(self, fingerprint: Fingerprint, attribute: Attribute) -> object:
        value = fingerprint.value_for_grouping(attribute)
        return value

    def _encode_value(self, attribute: Attribute, value: object) -> float:
        if value is None:
            return -1.0
        if attribute in _NUMERIC_ATTRIBUTES:
            return float(value)
        if attribute in _BOOLEAN_ATTRIBUTES:
            return 1.0 if value else 0.0
        codes = self._category_codes.get(attribute, {})
        return float(codes.get(value, -1))

    # -- API -----------------------------------------------------------------

    def fit(self, fingerprints: Sequence[Fingerprint]) -> "FingerprintEncoder":
        """Learn category code books from *fingerprints*."""

        if not fingerprints:
            raise ValueError("cannot fit the encoder on an empty corpus")
        self._category_codes = {}
        for attribute in self.attributes:
            if attribute in _NUMERIC_ATTRIBUTES or attribute in _BOOLEAN_ATTRIBUTES:
                continue
            seen: Dict[object, int] = {}
            for fingerprint in fingerprints:
                value = self._raw_value(fingerprint, attribute)
                if value is not None and value not in seen:
                    seen[value] = len(seen)
            self._category_codes[attribute] = seen
        self._fitted = True
        return self

    def transform(self, fingerprints: Sequence[Fingerprint]) -> np.ndarray:
        """Encode *fingerprints* into an ``(n, n_features)`` float matrix."""

        if not self._fitted:
            raise RuntimeError("encoder has not been fitted")
        matrix = np.empty((len(fingerprints), len(self.attributes)), dtype=float)
        for row, fingerprint in enumerate(fingerprints):
            for column, attribute in enumerate(self.attributes):
                matrix[row, column] = self._encode_value(
                    attribute, self._raw_value(fingerprint, attribute)
                )
        return matrix

    def fit_transform(self, fingerprints: Sequence[Fingerprint]) -> np.ndarray:
        """Fit the code books and encode in one pass."""

        return self.fit(fingerprints).transform(fingerprints)

    def categories_of(self, attribute: Attribute) -> Dict[object, int]:
        """The learned category → code mapping for *attribute*."""

        if not self._fitted:
            raise RuntimeError("encoder has not been fitted")
        return dict(self._category_codes.get(attribute, {}))
