"""Classification metrics.

Only what the paper reports is implemented: accuracy for the evasion
classifiers (Section 5.2.1), true/false positive and negative rates for the
FP-Inconsistent evaluation (Sections 7.3–7.4), plus precision/recall and a
confusion matrix because every downstream analysis wants them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion matrix with the positive class meaning "bot"."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def true_positive_rate(self) -> float:
        return self.recall

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positive + self.true_negative
        return self.false_positive / denominator if denominator else 0.0

    @property
    def true_negative_rate(self) -> float:
        denominator = self.false_positive + self.true_negative
        return self.true_negative / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision = self.precision
        recall = self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def confusion_matrix(y_true: Sequence[int], y_pred: Sequence[int]) -> ConfusionMatrix:
    """Compute the binary confusion matrix of *y_pred* against *y_true*."""

    true = np.asarray(y_true, dtype=int)
    pred = np.asarray(y_pred, dtype=int)
    if true.shape != pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    return ConfusionMatrix(
        true_positive=int(np.sum((true == 1) & (pred == 1))),
        false_positive=int(np.sum((true == 0) & (pred == 1))),
        true_negative=int(np.sum((true == 0) & (pred == 0))),
        false_negative=int(np.sum((true == 1) & (pred == 0))),
    )


def accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of predictions matching the truth."""

    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    if true.shape != pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if true.size == 0:
        return 0.0
    return float(np.mean(true == pred))


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple:
    """Random split into train/test portions (paper uses 90/10 and 80/20)."""

    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels must have the same number of rows")
    count = features.shape[0]
    permutation = rng.permutation(count)
    test_count = max(1, int(round(count * test_fraction)))
    test_index = permutation[:test_count]
    train_index = permutation[test_count:]
    return (
        features[train_index],
        features[test_index],
        labels[train_index],
        labels[test_index],
    )
