"""Histogram-based CART decision trees.

The paper trains XGBoost random-forest classifiers to separate detected
from evasive requests (Section 5.2.1).  Neither XGBoost nor scikit-learn is
available offline, so this module implements a compact, vectorised CART
learner on numpy.  Splits are found on binned features (the same trick
XGBoost's ``hist`` method uses), which keeps training on hundreds of
thousands of rows fast while preserving the quantities the paper consumes:
accuracy and per-feature split gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

_EPS = 1e-12


@dataclass
class _Node:
    """One node of a fitted tree (internal representation)."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _bin_edges(column: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate thresholds for *column*: midpoints of quantile bin edges."""

    unique = np.unique(column)
    if unique.size <= 1:
        return np.empty(0)
    if unique.size <= max_bins:
        return (unique[:-1] + unique[1:]) / 2.0
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    edges = np.unique(np.quantile(column, quantiles))
    return edges


class DecisionTree:
    """CART tree supporting gini classification and MSE regression.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_samples_split:
        Minimum number of rows required to attempt a split.
    min_samples_leaf:
        Minimum number of rows in each child for a split to be accepted.
    max_features:
        Number of features examined per split (``None`` → all).  Random
        forests pass ``sqrt(n_features)``.
    max_bins:
        Maximum number of candidate thresholds per feature.
    task:
        ``"classification"`` (gini, binary labels) or ``"regression"``
        (mean-squared error, continuous targets — used by gradient
        boosting).
    """

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        max_bins: int = 32,
        task: str = "classification",
        random_state: Optional[np.random.Generator] = None,
    ):
        if task not in ("classification", "regression"):
            raise ValueError("task must be 'classification' or 'regression'")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.max_bins = max_bins
        self.task = task
        self._rng = random_state if random_state is not None else np.random.default_rng(0)
        self._nodes: List[_Node] = []
        self.n_features_: int = 0

    # -- fitting ------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> "DecisionTree":
        """Fit the tree on *features* (n × d) and *targets* (n,)."""

        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets must have the same number of rows")
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero rows")
        if sample_weight is None:
            sample_weight = np.ones(features.shape[0], dtype=float)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        self.n_features_ = features.shape[1]
        self._nodes = []
        self._grow(features, targets, sample_weight, np.arange(features.shape[0]), depth=0)
        return self

    def _leaf_value(self, targets: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        return float(np.dot(targets, weights) / total)

    def _impurity(self, targets: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        mean = np.dot(targets, weights) / total
        if self.task == "classification":
            return float(2.0 * mean * (1.0 - mean))
        return float(np.dot(weights, (targets - mean) ** 2) / total)

    def _grow(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        index: np.ndarray,
        depth: int,
    ) -> int:
        node_id = len(self._nodes)
        node_targets = targets[index]
        node_weights = weights[index]
        node = _Node(value=self._leaf_value(node_targets, node_weights), n_samples=index.size)
        self._nodes.append(node)

        if depth >= self.max_depth or index.size < self.min_samples_split:
            return node_id
        impurity = self._impurity(node_targets, node_weights)
        if impurity <= _EPS:
            return node_id

        best = self._best_split(features, targets, weights, index, impurity)
        if best is None:
            return node_id
        feature, threshold, gain = best
        column = features[index, feature]
        left_mask = column <= threshold
        left_index = index[left_mask]
        right_index = index[~left_mask]
        if left_index.size < self.min_samples_leaf or right_index.size < self.min_samples_leaf:
            return node_id

        node.feature = feature
        node.threshold = threshold
        node.gain = gain
        node.left = self._grow(features, targets, weights, left_index, depth + 1)
        node.right = self._grow(features, targets, weights, right_index, depth + 1)
        return node_id

    def _best_split(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        index: np.ndarray,
        parent_impurity: float,
    ) -> Optional[Tuple[int, float, float]]:
        n_features = features.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(n_features, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)

        node_targets = targets[index]
        node_weights = weights[index]
        total_weight = node_weights.sum()
        best_gain = _EPS
        best: Optional[Tuple[int, float, float]] = None

        for feature in candidates:
            column = features[index, feature]
            thresholds = _bin_edges(column, self.max_bins)
            if thresholds.size == 0:
                continue
            # Vectorised evaluation: for every threshold compute the weighted
            # impurity of both children using cumulative sums over sorted rows.
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            sorted_targets = node_targets[order]
            sorted_weights = node_weights[order]
            cum_weight = np.cumsum(sorted_weights)
            cum_weighted_target = np.cumsum(sorted_targets * sorted_weights)
            cum_weighted_sq = np.cumsum((sorted_targets ** 2) * sorted_weights)
            positions = np.searchsorted(sorted_column, thresholds, side="right")
            valid = (positions >= self.min_samples_leaf) & (
                positions <= index.size - self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            positions = positions[valid]
            thresholds = thresholds[valid]
            left_weight = cum_weight[positions - 1]
            right_weight = total_weight - left_weight
            left_sum = cum_weighted_target[positions - 1]
            right_sum = cum_weighted_target[-1] - left_sum
            with np.errstate(divide="ignore", invalid="ignore"):
                left_mean = np.where(left_weight > 0, left_sum / left_weight, 0.0)
                right_mean = np.where(right_weight > 0, right_sum / right_weight, 0.0)
                if self.task == "classification":
                    left_impurity = 2.0 * left_mean * (1.0 - left_mean)
                    right_impurity = 2.0 * right_mean * (1.0 - right_mean)
                else:
                    left_sq = cum_weighted_sq[positions - 1]
                    right_sq = cum_weighted_sq[-1] - left_sq
                    left_impurity = np.where(
                        left_weight > 0, left_sq / left_weight - left_mean ** 2, 0.0
                    )
                    right_impurity = np.where(
                        right_weight > 0, right_sq / right_weight - right_mean ** 2, 0.0
                    )
            weighted_child = (
                left_weight * left_impurity + right_weight * right_impurity
            ) / total_weight
            gains = parent_impurity - weighted_child
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                best = (int(feature), float(thresholds[best_local]), best_gain)
        return best

    # -- prediction --------------------------------------------------------

    def _check_fitted(self) -> None:
        if not self._nodes:
            raise RuntimeError("tree has not been fitted")

    def predict_value(self, features: np.ndarray) -> np.ndarray:
        """Raw leaf values (class-1 probability or regression output)."""

        self._check_fitted()
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        output = np.empty(features.shape[0], dtype=float)
        for row in range(features.shape[0]):
            node = self._nodes[0]
            while not node.is_leaf:
                if features[row, node.feature] <= node.threshold:
                    node = self._nodes[node.left]
                else:
                    node = self._nodes[node.right]
            output[row] = node.value
        return output

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-1 probability per row (classification trees only)."""

        if self.task != "classification":
            raise RuntimeError("predict_proba is only defined for classification trees")
        return self.predict_value(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels (classification) or values (regression)."""

        values = self.predict_value(features)
        if self.task == "classification":
            return (values >= 0.5).astype(int)
        return values

    # -- introspection --------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        self._check_fitted()

        def _depth(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(0)

    def feature_importances(self) -> np.ndarray:
        """Total split gain per feature, normalised to sum to one."""

        self._check_fitted()
        importances = np.zeros(self.n_features_, dtype=float)
        for node in self._nodes:
            if not node.is_leaf:
                importances[node.feature] += node.gain * node.n_samples
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances

    def decision_path(self, row: np.ndarray) -> List[Tuple[int, float, bool]]:
        """Return the (feature, threshold, went_left) path for one row."""

        self._check_fitted()
        row = np.asarray(row, dtype=float).ravel()
        path: List[Tuple[int, float, bool]] = []
        node = self._nodes[0]
        while not node.is_leaf:
            went_left = row[node.feature] <= node.threshold
            path.append((node.feature, node.threshold, bool(went_left)))
            node = self._nodes[node.left] if went_left else self._nodes[node.right]
        return path
