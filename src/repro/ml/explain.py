"""Model explainability.

The paper uses SHAP over its XGBoost classifiers to rank the fingerprint
attributes that drive evasion (Table 2).  SHAP itself is not available
offline; we provide the two standard substitutes whose rankings agree with
SHAP's on tree ensembles in practice:

* **gain importance** — total impurity reduction contributed by each
  feature across the ensemble (XGBoost's ``total_gain``), and
* **permutation importance** — accuracy drop when one feature column is
  shuffled, which like SHAP measures each feature's marginal contribution
  to the fitted model's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.ml.metrics import accuracy_score


@dataclass(frozen=True)
class FeatureImportance:
    """Importance of one feature under one attribution method."""

    feature: str
    importance: float


def rank_importances(names: Sequence[str], scores: Sequence[float]) -> List[FeatureImportance]:
    """Pair feature names with scores and sort by decreasing importance."""

    if len(names) != len(scores):
        raise ValueError("names and scores must have equal length")
    pairs = [FeatureImportance(str(name), float(score)) for name, score in zip(names, scores)]
    pairs.sort(key=lambda item: item.importance, reverse=True)
    return pairs


def gain_importance(model, feature_names: Sequence[str]) -> List[FeatureImportance]:
    """Split-gain importances of a fitted tree ensemble, ranked."""

    scores = model.feature_importances()
    return rank_importances(feature_names, scores)


def permutation_importance(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    feature_names: Sequence[str],
    *,
    n_repeats: int = 3,
    rng: np.random.Generator = None,
) -> List[FeatureImportance]:
    """Permutation importances on held-out data, ranked.

    For each feature, the column is shuffled ``n_repeats`` times and the
    mean accuracy drop relative to the unshuffled baseline is reported.
    """

    if rng is None:
        rng = np.random.default_rng(0)
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels)
    if features.shape[1] != len(feature_names):
        raise ValueError("feature_names length must match the feature matrix width")
    baseline = accuracy_score(labels, model.predict(features))
    scores = np.zeros(features.shape[1], dtype=float)
    for column in range(features.shape[1]):
        drops = []
        for _ in range(n_repeats):
            shuffled = features.copy()
            shuffled[:, column] = rng.permutation(shuffled[:, column])
            drops.append(baseline - accuracy_score(labels, model.predict(shuffled)))
        scores[column] = float(np.mean(drops))
    return rank_importances(feature_names, scores)


def top_features(importances: Sequence[FeatureImportance], count: int = 5) -> List[str]:
    """The *count* most important feature names (Table 2 shape)."""

    if count < 0:
        raise ValueError("count cannot be negative")
    return [item.feature for item in importances[:count]]
