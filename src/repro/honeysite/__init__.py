"""Honey-site architecture: versioned URLs, collection, storage."""

from repro.honeysite.collector import (
    CollectedFingerprint,
    CollectionError,
    FingerprintCollector,
    REQUIRED_ATTRIBUTES,
)
from repro.honeysite.site import HoneySite
from repro.honeysite.storage import RecordedRequest, RequestStore, SECONDS_PER_DAY
from repro.honeysite.urls import UrlRegistry, generate_url_token

__all__ = [
    "CollectedFingerprint",
    "CollectionError",
    "FingerprintCollector",
    "HoneySite",
    "REQUIRED_ATTRIBUTES",
    "RecordedRequest",
    "RequestStore",
    "SECONDS_PER_DAY",
    "UrlRegistry",
    "generate_url_token",
]
