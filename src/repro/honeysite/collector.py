"""Client-side fingerprint collection model (FingerprintJS stand-in).

On the real honey site, the FingerprintJS library runs in the visitor's
browser, gathers attribute values and posts them to the server (Figure 3).
In the reproduction, traffic generators already hold a
:class:`~repro.fingerprint.Fingerprint`; the collector's job is to validate
that the submission carries the attribute surface the analyses rely on and
to compute the visitor identifier used to count unique fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint

#: Attributes every well-formed submission must carry.  A real browser
#: always exposes these; their absence indicates a crippled client.
REQUIRED_ATTRIBUTES: Tuple[Attribute, ...] = (
    Attribute.USER_AGENT,
    Attribute.PLATFORM,
    Attribute.SCREEN_RESOLUTION,
    Attribute.HARDWARE_CONCURRENCY,
    Attribute.TIMEZONE,
)


class CollectionError(ValueError):
    """Raised when a fingerprint submission is malformed."""


@dataclass(frozen=True)
class CollectedFingerprint:
    """A validated submission: the fingerprint plus its visitor identifier."""

    fingerprint: Fingerprint
    visitor_id: str
    missing_attributes: Tuple[Attribute, ...]

    @property
    def complete(self) -> bool:
        """Whether every required attribute was present."""

        return not self.missing_attributes


class FingerprintCollector:
    """Validates fingerprint submissions and derives visitor identifiers."""

    def __init__(self, *, strict: bool = False):
        self._strict = strict

    def collect(self, submission) -> CollectedFingerprint:
        """Validate *submission* (a Fingerprint or attribute mapping).

        Raises
        ------
        CollectionError
            In strict mode, when required attributes are missing; always,
            when the submission cannot be interpreted as a fingerprint.
        """

        if isinstance(submission, Fingerprint):
            fingerprint = submission
        elif isinstance(submission, Mapping):
            try:
                fingerprint = Fingerprint(submission)
            except (ValueError, KeyError) as exc:
                raise CollectionError(f"malformed fingerprint submission: {exc}") from exc
        else:
            raise CollectionError(
                f"submission must be a Fingerprint or mapping, got {type(submission).__name__}"
            )

        missing = tuple(
            attribute for attribute in REQUIRED_ATTRIBUTES if fingerprint.get(attribute) is None
        )
        if missing and self._strict:
            names = ", ".join(attribute.value for attribute in missing)
            raise CollectionError(f"submission is missing required attributes: {names}")
        return CollectedFingerprint(
            fingerprint=fingerprint,
            visitor_id=fingerprint.stable_hash(),
            missing_attributes=missing,
        )
