"""Recorded requests and the request store.

Every request the honey site attributes to a known source is stored as a
:class:`RecordedRequest`: the raw request, the source label, the cookie
value after issuance and the decisions of both anti-bot services (mirroring
Figure 3 — "decisions from DataDome and BotD are stored in the database
alongside other request data").  The :class:`RequestStore` is the query
surface every analysis in Sections 5–7 runs against.

Records exist in two physical representations:

* **object form** — a list of :class:`RecordedRequest` instances, the
  representation the legacy generators produce and every per-record
  analysis consumes;
* **columnar form** (:class:`RecordColumns`) — per-row arrays (timestamps,
  cookie codes, source codes, session codes) over session-deduplicated
  dictionaries (fingerprints, headers, detector decisions), the compact
  layout shard workers ship back to the corpus coordinator and the corpus
  cache persists.

:class:`LazyRequestStore` bridges the two: it is a drop-in
:class:`RequestStore` over a :class:`RecordColumns` that answers the
columnar pipeline's queries (lengths, splits, source subsets, request-id /
evasion columns) straight from the arrays and only materialises record
objects when a consumer genuinely iterates them.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.antibot.base import Decision
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.network.request import WebRequest

SECONDS_PER_DAY = 86_400.0

#: Version of the on-disk request-store / corpus archive format.  Bump on
#: any change to the serialised record layout — or to the generated corpus
#: content itself — so the content-addressed cache rebuilds stale entries
#: rather than mis-parsing (or silently serving outdated) archives.
#: Version 2: sub-sharded generation of large services changed default
#: corpora, and archives gained the ``columnar_*.npz`` sidecars.
#: Version 3: corpora built by the columnar shard transport persist as one
#: ``store_columnar.npz`` archive (record columns + embedded fingerprint
#: tables); version-2 JSONL archives remain readable.
#: Version 4: session fingerprints, headers and detector decisions are
#: encoded as attribute-code arrays over per-attribute decode lists
#: (:class:`SessionArrays`), making shard payloads and the persisted
#: archive pure numpy arrays + scalar metadata — no pickled objects and,
#: saved uncompressed, memory-mappable.  The shard ceiling raise
#: (``analysis.engine.MAX_TOTAL_SHARDS``) rides the same bump.  Version-2
#: and version-3 archives remain readable.
CORPUS_FORMAT_VERSION = 4

#: Marker identifying the header line of a versioned store file.
_STORE_HEADER_MARKER = "repro-request-store"


class StoreFormatError(ValueError):
    """Raised when a persisted store cannot be read back."""


def split_rows(n: int, fraction: float, rng) -> Tuple:
    """Permutation split of ``range(n)`` into (``fraction``, rest) index arrays.

    The single source of randomness behind :meth:`RequestStore.split`; the
    generalisation evaluation uses the same helper to slice an extracted
    :class:`~repro.core.columnar.ColumnarTable` with ``take`` instead of
    re-extracting the split stores, so both views of one split always
    agree row for row.
    """

    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    indices = rng.permutation(n)
    cut = int(round(n * fraction))
    return indices[:cut], indices[cut:]


class _OwningTextWrapper(io.TextIOWrapper):
    """A ``TextIOWrapper`` that also closes the raw file under its buffer
    (``GzipFile`` never closes a ``fileobj`` it was handed)."""

    def __init__(self, buffer, raw, **kwargs):
        super().__init__(buffer, **kwargs)
        self._raw_file = raw

    def close(self):
        try:
            super().close()
        finally:
            self._raw_file.close()


def _open_text(path: Path, mode: str):
    """Open *path* for text I/O, transparently gzipped for ``.gz`` files.

    Writes pin the gzip header's mtime to 0 and omit the FNAME field
    (``filename=""``), so saving the same store twice — under any archive
    name, at any time — produces byte-identical files (the determinism
    check diffs them).
    """

    if path.suffix == ".gz":
        if "w" in mode:
            raw = path.open("wb")
            handle = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
            return _OwningTextWrapper(handle, raw, encoding="utf-8")
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


@dataclass(frozen=True)
class RecordedRequest:
    """One attributed request with both detector decisions."""

    request: WebRequest
    source: str
    cookie: str
    datadome: Decision
    botd: Decision

    @property
    def timestamp(self) -> float:
        return self.request.timestamp

    @property
    def day(self) -> int:
        """Day index (0-based) within the measurement campaign."""

        return int(self.request.timestamp // SECONDS_PER_DAY)

    def decision_for(self, detector: str) -> Decision:
        """Decision of *detector* ("DataDome" or "BotD")."""

        if detector == "DataDome":
            return self.datadome
        if detector == "BotD":
            return self.botd
        raise KeyError(f"unknown detector {detector!r}")

    def evaded(self, detector: str) -> bool:
        """Whether the request evaded *detector*."""

        return self.decision_for(detector).evaded

    def attribute(self, attribute: Attribute, default=None):
        """Convenience accessor for a fingerprint attribute."""

        return self.request.fingerprint.get(attribute, default)

    def to_dict(self) -> Dict:
        """Serialise for the JSONL persistence layer."""

        return {
            "request": self.request.to_dict(),
            "source": self.source,
            "cookie": self.cookie,
            "datadome": {
                "is_bot": self.datadome.is_bot,
                "score": self.datadome.score,
                "signals": list(self.datadome.signals),
            },
            "botd": {
                "is_bot": self.botd.is_bot,
                "score": self.botd.score,
                "signals": list(self.botd.signals),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RecordedRequest":
        """Reconstruct a record serialised by :meth:`to_dict`."""

        return cls(
            request=WebRequest.from_dict(data["request"]),
            source=str(data["source"]),
            cookie=str(data["cookie"]),
            datadome=Decision(
                detector="DataDome",
                is_bot=bool(data["datadome"]["is_bot"]),
                score=float(data["datadome"]["score"]),
                signals=tuple(data["datadome"].get("signals", ())),
            ),
            botd=Decision(
                detector="BotD",
                is_bot=bool(data["botd"]["is_bot"]),
                score=float(data["botd"]["score"]),
                signals=tuple(data["botd"].get("signals", ())),
            ),
        )


def _code_dtype(pool_size: int) -> np.dtype:
    """Smallest unsigned dtype that can index a decode list of *pool_size*."""

    return np.min_scalar_type(max(pool_size - 1, 0))


def _packed(codes, pool_size: int) -> np.ndarray:
    """Code array packed to the smallest dtype its decode list needs.

    The transfer win of the code encoding lives here: shard decode lists
    are small (tens of attributes, hundreds of distinct values), so most
    code streams pack to one byte per entry instead of pickling an object
    reference per entry.
    """

    return np.asarray(codes, dtype=_code_dtype(pool_size))


class _LazyDecodeList(Sequence):
    """A read-only sequence decoding its items on first access.

    The compatibility view :class:`SessionArrays` presents over its code
    arrays: indexing or iterating decodes (and memoizes) one object per
    position, so consumers that touch a handful of sessions never pay for
    the rest — and repeated reads return the *same* object, preserving the
    sharing semantics of the former object dictionaries.
    """

    __slots__ = ("_cache", "_decode")

    def __init__(self, count: int, decode: Callable[[int], Any]):
        self._cache: List[Any] = [None] * count
        self._decode = decode

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index: int) -> Any:
        item = self._cache[index]
        if item is None:
            if index < 0:
                index += len(self._cache)
            item = self._cache[index] = self._decode(index)
        return item

    def __iter__(self) -> Iterator[Any]:
        for index in range(len(self._cache)):
            yield self[index]


class SessionArrays:
    """Pure-array encoding of the per-session object dictionaries.

    Everything a traffic-generator session keeps constant — the
    fingerprint, the synthesised headers, both detector decisions, the
    source address — used to live here as Python objects, which made each
    shard payload pickle one ``Fingerprint`` (a ~40-entry dict) per
    session.  This class re-encodes all three dictionaries as code rows
    against decode lists:

    * **fingerprints** — a flat ``(attribute code, value code)`` pair
      stream (``fp_attr_codes`` / ``fp_value_codes``) sliced per session by
      ``fp_offsets``; attribute codes index ``fp_attribute_names`` and
      value codes index that attribute's raw-value side table in
      ``fp_values``.  The pair stream preserves each session's attribute
      *order*, which the serialised form exposes (bot strategies insert
      attributes in varying order via ``replace``/``without``).
    * **headers** — the same flat layout over global key/value string
      pools (``header_keys`` / ``header_values``).
    * **decisions** — parallel scalar arrays (detector code, ``is_bot``,
      score) plus a flat signal-code stream over ``decision_signal_values``.

    The per-session indirection arrays (``session_headers``,
    ``session_datadome``, ``session_botd``) and the per-session address
    list live here too.  The result: pickling a shard payload serialises
    numpy arrays and lists of primitive scalars — zero reconstructed
    objects — and the persisted archive can be memory-mapped.  Decoded
    object views (:attr:`fingerprints`, :attr:`header_maps`,
    :attr:`decision_objects`) materialise lazily per index and are
    excluded from pickling.
    """

    _ARRAY_FIELDS = (
        "fp_attr_codes",
        "fp_value_codes",
        "fp_offsets",
        "header_key_codes",
        "header_value_codes",
        "header_offsets",
        "session_headers",
        "session_datadome",
        "session_botd",
        "decision_detectors",
        "decision_is_bot",
        "decision_scores",
        "decision_signal_codes",
        "decision_signal_offsets",
    )
    _LIST_FIELDS = (
        "fp_attribute_names",
        "fp_values",
        "header_keys",
        "header_values",
        "session_ips",
        "decision_detector_names",
        "decision_signal_values",
    )
    _CACHE_FIELDS = (
        "_fingerprints",
        "_header_maps",
        "_decision_objects",
        "_attributes",
        "_attribute_columns",
    )

    __slots__ = _ARRAY_FIELDS + _LIST_FIELDS + _CACHE_FIELDS

    def __init__(self, **fields: Any):
        for name in self._ARRAY_FIELDS + self._LIST_FIELDS:
            setattr(self, name, fields.pop(name))
        if fields:
            raise TypeError(f"unexpected session array fields: {sorted(fields)}")
        self._reset_caches()

    def _reset_caches(self) -> None:
        self._fingerprints = None
        self._header_maps = None
        self._decision_objects = None
        self._attributes = None
        self._attribute_columns = None

    # -- pickling (transport purity) ---------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in self._ARRAY_FIELDS + self._LIST_FIELDS
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name in self._ARRAY_FIELDS + self._LIST_FIELDS:
            setattr(self, name, state[name])
        self._reset_caches()

    # -- shape -------------------------------------------------------------

    @property
    def n_sessions(self) -> int:
        return int(self.fp_offsets.size) - 1

    @property
    def n_headers(self) -> int:
        return int(self.header_offsets.size) - 1

    @property
    def n_decisions(self) -> int:
        return int(self.decision_is_bot.size)

    # -- columnar attribute access -----------------------------------------

    def attribute_value_codes(self, name: str) -> Tuple[np.ndarray, List[Any]]:
        """Per-session value codes of fingerprint attribute *name*.

        Returns ``(codes, values)``: ``codes[session]`` indexes *values*
        (the attribute's raw-value side table) or is ``-1`` when the
        session's fingerprint does not carry the attribute.  One
        vectorized scan of the pair stream per attribute, memoized — the
        columnar figure/table paths gather these through
        ``RecordColumns.session_codes`` instead of decoding fingerprints.
        """

        if self._attribute_columns is None:
            self._attribute_columns = {}
        cached = self._attribute_columns.get(name)
        if cached is not None:
            return cached
        codes = np.full(self.n_sessions, -1, dtype=np.int64)
        values: List[Any] = []
        try:
            acode = self.fp_attribute_names.index(name)
        except ValueError:
            pass
        else:
            values = self.fp_values[acode]
            pairs = np.nonzero(np.asarray(self.fp_attr_codes) == acode)[0]
            # A fingerprint is a dict, so each session holds at most one
            # pair per attribute; the owning session of pair p is the
            # offset interval it falls into.
            owners = (
                np.searchsorted(np.asarray(self.fp_offsets), pairs, side="right") - 1
            )
            codes[owners] = np.asarray(self.fp_value_codes)[pairs]
        self._attribute_columns[name] = (codes, values)
        return codes, values

    # -- encoding ----------------------------------------------------------

    @classmethod
    def from_objects(
        cls,
        *,
        fingerprints: Sequence[Fingerprint],
        headers: Sequence[Mapping[str, str]],
        decisions: Sequence[Decision],
        session_ips: Sequence[str],
        session_headers: np.ndarray,
        session_datadome: np.ndarray,
        session_botd: np.ndarray,
    ) -> "SessionArrays":
        """Encode the legacy object dictionaries into code arrays.

        Value side tables deduplicate by ``(type, value)`` — never by bare
        value — because ``1``, ``1.0`` and ``True`` hash and compare equal
        in Python yet must decode back to their exact original type.
        """

        fp_attr_index: Dict[str, int] = {}
        fp_attribute_names: List[str] = []
        fp_value_indexes: List[Dict[Any, int]] = []
        fp_values: List[List[Any]] = []
        attr_codes: List[int] = []
        value_codes: List[int] = []
        fp_offsets: List[int] = [0]
        for fingerprint in fingerprints:
            for attribute, value in fingerprint.items():
                name = attribute.value
                acode = fp_attr_index.get(name)
                if acode is None:
                    acode = len(fp_attribute_names)
                    fp_attr_index[name] = acode
                    fp_attribute_names.append(name)
                    fp_value_indexes.append({})
                    fp_values.append([])
                value_index = fp_value_indexes[acode]
                key = (value.__class__, value)
                vcode = value_index.get(key)
                if vcode is None:
                    vcode = len(fp_values[acode])
                    value_index[key] = vcode
                    fp_values[acode].append(value)
                attr_codes.append(acode)
                value_codes.append(vcode)
            fp_offsets.append(len(attr_codes))

        key_index: Dict[str, int] = {}
        header_keys: List[str] = []
        value_pool_index: Dict[str, int] = {}
        header_values: List[str] = []
        header_key_codes: List[int] = []
        header_value_codes: List[int] = []
        header_offsets: List[int] = [0]
        for entry in headers:
            for key, value in entry.items():
                kcode = key_index.get(key)
                if kcode is None:
                    kcode = len(header_keys)
                    key_index[key] = kcode
                    header_keys.append(key)
                vcode = value_pool_index.get(value)
                if vcode is None:
                    vcode = len(header_values)
                    value_pool_index[value] = vcode
                    header_values.append(value)
                header_key_codes.append(kcode)
                header_value_codes.append(vcode)
            header_offsets.append(len(header_key_codes))

        detector_index: Dict[str, int] = {}
        decision_detector_names: List[str] = []
        signal_index: Dict[str, int] = {}
        decision_signal_values: List[str] = []
        decision_detectors: List[int] = []
        decision_is_bot: List[bool] = []
        decision_scores: List[float] = []
        decision_signal_codes: List[int] = []
        decision_signal_offsets: List[int] = [0]
        for decision in decisions:
            dcode = detector_index.get(decision.detector)
            if dcode is None:
                dcode = len(decision_detector_names)
                detector_index[decision.detector] = dcode
                decision_detector_names.append(decision.detector)
            decision_detectors.append(dcode)
            decision_is_bot.append(decision.is_bot)
            decision_scores.append(decision.score)
            for signal in decision.signals:
                scode = signal_index.get(signal)
                if scode is None:
                    scode = len(decision_signal_values)
                    signal_index[signal] = scode
                    decision_signal_values.append(signal)
                decision_signal_codes.append(scode)
            decision_signal_offsets.append(len(decision_signal_codes))

        return cls(
            fp_attr_codes=_packed(attr_codes, len(fp_attribute_names)),
            fp_value_codes=_packed(
                value_codes, max((len(values) for values in fp_values), default=0)
            ),
            fp_offsets=np.array(fp_offsets, dtype=np.int32),
            fp_attribute_names=fp_attribute_names,
            fp_values=fp_values,
            header_key_codes=_packed(header_key_codes, len(header_keys)),
            header_value_codes=_packed(header_value_codes, len(header_values)),
            header_offsets=np.array(header_offsets, dtype=np.int32),
            header_keys=header_keys,
            header_values=header_values,
            session_headers=_packed(session_headers, len(header_offsets) - 1),
            session_datadome=_packed(session_datadome, len(decision_is_bot)),
            session_botd=_packed(session_botd, len(decision_is_bot)),
            session_ips=list(session_ips),
            decision_detectors=_packed(decision_detectors, len(decision_detector_names)),
            decision_is_bot=np.array(decision_is_bot, dtype=bool),
            decision_scores=np.array(decision_scores, dtype=np.float64),
            decision_signal_codes=_packed(
                decision_signal_codes, len(decision_signal_values)
            ),
            decision_signal_offsets=np.array(decision_signal_offsets, dtype=np.int32),
            decision_detector_names=decision_detector_names,
            decision_signal_values=decision_signal_values,
        )

    # -- decoded object views ----------------------------------------------

    @property
    def fingerprints(self) -> Sequence[Fingerprint]:
        """Per-session fingerprints, decoded lazily per index."""

        if self._fingerprints is None:
            if self._attributes is None:
                self._attributes = [Attribute(name) for name in self.fp_attribute_names]
            attributes = self._attributes
            values, attr_codes = self.fp_values, self.fp_attr_codes
            value_codes, offsets = self.fp_value_codes, self.fp_offsets

            def decode(index: int) -> Fingerprint:
                data: Dict[Attribute, Any] = {}
                for position in range(int(offsets[index]), int(offsets[index + 1])):
                    acode = attr_codes[position]
                    data[attributes[acode]] = values[acode][value_codes[position]]
                return Fingerprint._from_coerced(data)

            self._fingerprints = _LazyDecodeList(self.n_sessions, decode)
        return self._fingerprints

    @property
    def header_maps(self) -> Sequence[Mapping[str, str]]:
        """Deduplicated header dictionaries, decoded lazily per index."""

        if self._header_maps is None:
            keys, pool = self.header_keys, self.header_values
            key_codes, value_codes = self.header_key_codes, self.header_value_codes
            offsets = self.header_offsets

            def decode(index: int) -> Dict[str, str]:
                return {
                    keys[key_codes[position]]: pool[value_codes[position]]
                    for position in range(int(offsets[index]), int(offsets[index + 1]))
                }

            self._header_maps = _LazyDecodeList(self.n_headers, decode)
        return self._header_maps

    @property
    def decision_objects(self) -> Sequence[Decision]:
        """Deduplicated detector decisions, decoded lazily per index."""

        if self._decision_objects is None:
            names, signals = self.decision_detector_names, self.decision_signal_values
            detectors, is_bot = self.decision_detectors, self.decision_is_bot
            scores, signal_codes = self.decision_scores, self.decision_signal_codes
            offsets = self.decision_signal_offsets

            def decode(index: int) -> Decision:
                return Decision(
                    detector=names[detectors[index]],
                    is_bot=bool(is_bot[index]),
                    score=float(scores[index]),
                    signals=tuple(
                        signals[signal_codes[position]]
                        for position in range(int(offsets[index]), int(offsets[index + 1]))
                    ),
                )

            self._decision_objects = _LazyDecodeList(self.n_decisions, decode)
        return self._decision_objects

    # -- merging -----------------------------------------------------------

    @classmethod
    def concat(cls, parts: Sequence["SessionArrays"]) -> "SessionArrays":
        """Merge shard session blocks: union the decode lists, remap codes.

        Attribute names (and header keys/values, detectors, signals) merge
        in first-appearance order across parts; each part's flat code
        streams are remapped through lookup arrays, so the merge never
        decodes an object.
        """

        attr_index: Dict[str, int] = {}
        attribute_names: List[str] = []
        value_indexes: List[Dict[Any, int]] = []
        merged_values: List[List[Any]] = []
        key_index: Dict[str, int] = {}
        header_keys: List[str] = []
        value_pool_index: Dict[str, int] = {}
        header_values: List[str] = []
        detector_index: Dict[str, int] = {}
        detector_names: List[str] = []
        signal_index: Dict[str, int] = {}
        signal_values: List[str] = []

        fp_attr_chunks, fp_value_chunks, fp_offset_chunks = [], [], []
        hk_chunks, hv_chunks, header_offset_chunks = [], [], []
        sh_chunks, sd_chunks, sb_chunks = [], [], []
        det_chunks, bot_chunks, score_chunks = [], [], []
        sig_chunks, sig_offset_chunks = [], []
        session_ips: List[str] = []
        fp_pairs = header_pairs = signal_count = 0
        headers_offset = decisions_offset = 0

        def _pool_remap(local: Sequence[str], index: Dict[str, int], pool: List[str]) -> np.ndarray:
            remap = np.empty(len(local), dtype=np.int64)
            for position, item in enumerate(local):
                code = index.get(item)
                if code is None:
                    code = len(pool)
                    index[item] = code
                    pool.append(item)
                remap[position] = code
            return remap

        for part in parts:
            attr_remap = np.empty(len(part.fp_attribute_names), dtype=np.int64)
            value_remaps: List[np.ndarray] = []
            for local, name in enumerate(part.fp_attribute_names):
                code = attr_index.get(name)
                if code is None:
                    code = len(attribute_names)
                    attr_index[name] = code
                    attribute_names.append(name)
                    value_indexes.append({})
                    merged_values.append([])
                attr_remap[local] = code
                value_index = value_indexes[code]
                value_list = merged_values[code]
                local_values = part.fp_values[local]
                vremap = np.empty(len(local_values), dtype=np.int64)
                for vlocal, value in enumerate(local_values):
                    key = (value.__class__, value)
                    vcode = value_index.get(key)
                    if vcode is None:
                        vcode = len(value_list)
                        value_index[key] = vcode
                        value_list.append(value)
                    vremap[vlocal] = vcode
                value_remaps.append(vremap)
            if part.fp_attr_codes.size:
                # One flat remap over (attribute, local value) pairs keeps the
                # per-pair recode fully vectorized.
                starts = np.zeros(len(value_remaps) + 1, dtype=np.int64)
                np.cumsum([remap.size for remap in value_remaps], out=starts[1:])
                flat_remap = np.concatenate(value_remaps)
                local_attr = np.asarray(part.fp_attr_codes, dtype=np.int64)
                fp_attr_chunks.append(attr_remap[local_attr])
                fp_value_chunks.append(flat_remap[starts[local_attr] + part.fp_value_codes])
            fp_offset_chunks.append(np.asarray(part.fp_offsets[1:], dtype=np.int64) + fp_pairs)
            fp_pairs += int(part.fp_attr_codes.size)

            key_remap = _pool_remap(part.header_keys, key_index, header_keys)
            value_remap = _pool_remap(part.header_values, value_pool_index, header_values)
            if part.header_key_codes.size:
                hk_chunks.append(key_remap[part.header_key_codes])
                hv_chunks.append(value_remap[part.header_value_codes])
            header_offset_chunks.append(
                np.asarray(part.header_offsets[1:], dtype=np.int64) + header_pairs
            )
            header_pairs += int(part.header_key_codes.size)

            sh_chunks.append(np.asarray(part.session_headers, dtype=np.int64) + headers_offset)
            sd_chunks.append(np.asarray(part.session_datadome, dtype=np.int64) + decisions_offset)
            sb_chunks.append(np.asarray(part.session_botd, dtype=np.int64) + decisions_offset)
            headers_offset += part.n_headers
            decisions_offset += part.n_decisions
            session_ips.extend(part.session_ips)

            det_remap = _pool_remap(part.decision_detector_names, detector_index, detector_names)
            sig_remap = _pool_remap(part.decision_signal_values, signal_index, signal_values)
            if part.decision_detectors.size:
                det_chunks.append(det_remap[part.decision_detectors])
            bot_chunks.append(part.decision_is_bot)
            score_chunks.append(part.decision_scores)
            if part.decision_signal_codes.size:
                sig_chunks.append(sig_remap[part.decision_signal_codes])
            sig_offset_chunks.append(
                np.asarray(part.decision_signal_offsets[1:], dtype=np.int64) + signal_count
            )
            signal_count += int(part.decision_signal_codes.size)

        def _flat(chunks: List[np.ndarray], pool_size: int) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=_code_dtype(pool_size))
            return _packed(np.concatenate(chunks), pool_size)

        def _offsets(chunks: List[np.ndarray]) -> np.ndarray:
            return np.concatenate([np.zeros(1, dtype=np.int64)] + chunks).astype(np.int32)

        return cls(
            fp_attr_codes=_flat(fp_attr_chunks, len(attribute_names)),
            fp_value_codes=_flat(
                fp_value_chunks, max((len(values) for values in merged_values), default=0)
            ),
            fp_offsets=_offsets(fp_offset_chunks),
            fp_attribute_names=attribute_names,
            fp_values=merged_values,
            header_key_codes=_flat(hk_chunks, len(header_keys)),
            header_value_codes=_flat(hv_chunks, len(header_values)),
            header_offsets=_offsets(header_offset_chunks),
            header_keys=header_keys,
            header_values=header_values,
            session_headers=_flat(sh_chunks, headers_offset),
            session_datadome=_flat(sd_chunks, decisions_offset),
            session_botd=_flat(sb_chunks, decisions_offset),
            session_ips=session_ips,
            decision_detectors=_flat(det_chunks, len(detector_names)),
            decision_is_bot=(
                np.concatenate(bot_chunks) if bot_chunks else np.empty(0, dtype=bool)
            ),
            decision_scores=(
                np.concatenate(score_chunks)
                if score_chunks
                else np.empty(0, dtype=np.float64)
            ),
            decision_signal_codes=_flat(sig_chunks, len(signal_values)),
            decision_signal_offsets=_offsets(sig_offset_chunks),
            decision_detector_names=detector_names,
            decision_signal_values=signal_values,
        )

    # -- integrity ---------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`StoreFormatError`.

        On a memory-mapped archive this streams every code column once
        (sequential reads), bounding the cost of trusting an archive
        without loading it into RAM.
        """

        def _offsets_ok(offsets: np.ndarray, flat_size: int) -> bool:
            return (
                offsets.size >= 1
                and int(offsets[0]) == 0
                and int(offsets[-1]) == flat_size
                and (offsets.size < 2 or bool(np.all(np.diff(offsets) >= 0)))
            )

        def _codes_ok(codes: np.ndarray, size: int) -> bool:
            if not codes.size:
                return True
            return int(codes.min()) >= 0 and int(codes.max()) < size

        integer_arrays = tuple(
            getattr(self, name)
            for name in self._ARRAY_FIELDS
            if name not in ("decision_is_bot", "decision_scores")
        )
        if any(array.dtype.kind not in "iu" for array in integer_arrays):
            raise StoreFormatError("session code arrays must have integer dtypes")
        if (
            self.decision_is_bot.dtype.kind != "b"
            or self.decision_scores.dtype.kind != "f"
        ):
            raise StoreFormatError("decision verdict arrays have wrong dtypes")
        if self.fp_attr_codes.size != self.fp_value_codes.size:
            raise StoreFormatError("fingerprint code streams are ragged")
        if not _offsets_ok(self.fp_offsets, self.fp_attr_codes.size):
            raise StoreFormatError("fingerprint offsets are inconsistent")
        if len(self.fp_values) != len(self.fp_attribute_names):
            raise StoreFormatError("fingerprint decode lists disagree")
        if not _codes_ok(self.fp_attr_codes, len(self.fp_attribute_names)):
            raise StoreFormatError("fingerprint attribute codes out of range")
        if self.fp_attr_codes.size:
            lengths = np.fromiter(
                (len(values) for values in self.fp_values),
                dtype=np.int64,
                count=len(self.fp_values),
            )
            value_codes = np.asarray(self.fp_value_codes, dtype=np.int64)
            if int(value_codes.min()) < 0 or bool(
                np.any(value_codes >= lengths[np.asarray(self.fp_attr_codes, dtype=np.int64)])
            ):
                raise StoreFormatError("fingerprint value codes out of range")

        if self.header_key_codes.size != self.header_value_codes.size:
            raise StoreFormatError("header code streams are ragged")
        if not _offsets_ok(self.header_offsets, self.header_key_codes.size):
            raise StoreFormatError("header offsets are inconsistent")
        if not (
            _codes_ok(self.header_key_codes, len(self.header_keys))
            and _codes_ok(self.header_value_codes, len(self.header_values))
        ):
            raise StoreFormatError("header codes out of range")

        n_decisions = self.n_decisions
        if (
            self.decision_detectors.size != n_decisions
            or self.decision_scores.size != n_decisions
            or self.decision_signal_offsets.size != n_decisions + 1
        ):
            raise StoreFormatError("decision arrays are ragged")
        if not _offsets_ok(self.decision_signal_offsets, self.decision_signal_codes.size):
            raise StoreFormatError("decision signal offsets are inconsistent")
        if not (
            _codes_ok(self.decision_detectors, len(self.decision_detector_names))
            and _codes_ok(self.decision_signal_codes, len(self.decision_signal_values))
        ):
            raise StoreFormatError("decision codes out of range")

        n_sessions = self.n_sessions
        per_session = (self.session_headers, self.session_datadome, self.session_botd)
        if any(column.size != n_sessions for column in per_session) or len(
            self.session_ips
        ) != n_sessions:
            raise StoreFormatError("session dictionaries are ragged")
        if not (
            _codes_ok(self.session_headers, self.n_headers)
            and _codes_ok(self.session_datadome, n_decisions)
            and _codes_ok(self.session_botd, n_decisions)
        ):
            raise StoreFormatError("session dictionary codes out of range")


class RecordColumns:
    """Columnar representation of a record sequence.

    Per-row quantities are plain arrays; everything a traffic-generator
    session keeps constant is encoded once per session in a
    :class:`SessionArrays` block and referenced through ``session_codes``.
    The layout is what shard workers return to the corpus coordinator —
    pickling it serialises pure numpy arrays plus scalar decode lists,
    zero reconstructed objects — and what the corpus cache persists
    (format v4; saved uncompressed it memory-maps).

    ``request_ids`` may be ``None`` on a freshly built shard payload; the
    coordinator assigns merged-order ids through :meth:`renumbered`.
    Record objects never live here: :class:`LazyRequestStore` rebuilds
    them on demand, byte-identical to what the object-at-a-time path
    produces.  The former object-dictionary attributes
    (``session_fingerprints``, ``headers``, ``decisions``) remain readable
    as lazily decoded views.
    """

    __slots__ = (
        "timestamps",
        "session_codes",
        "presented_codes",
        "served_codes",
        "source_codes",
        "request_ids",
        "cookie_values",
        "sources",
        "url_paths",
        "sessions",
    )

    def __init__(
        self,
        *,
        timestamps: np.ndarray,
        session_codes: np.ndarray,
        presented_codes: np.ndarray,
        served_codes: np.ndarray,
        source_codes: np.ndarray,
        cookie_values: List[str],
        sources: List[str],
        url_paths: List[str],
        sessions: Optional[SessionArrays] = None,
        session_fingerprints: Optional[List[Fingerprint]] = None,
        session_headers: Optional[np.ndarray] = None,
        session_datadome: Optional[np.ndarray] = None,
        session_botd: Optional[np.ndarray] = None,
        session_ips: Optional[List[str]] = None,
        headers: Optional[List[Mapping[str, str]]] = None,
        decisions: Optional[List[Decision]] = None,
        request_ids: Optional[np.ndarray] = None,
    ):
        self.timestamps = timestamps
        self.session_codes = session_codes
        self.presented_codes = presented_codes
        self.served_codes = served_codes
        self.source_codes = source_codes
        self.request_ids = request_ids
        self.cookie_values = cookie_values
        self.sources = sources
        self.url_paths = url_paths
        if sessions is None:
            # Object-dictionary construction path (builders, tests, the
            # v2/v3 readers): encode into the array block up front.
            sessions = SessionArrays.from_objects(
                fingerprints=session_fingerprints if session_fingerprints is not None else [],
                headers=headers if headers is not None else [],
                decisions=decisions if decisions is not None else [],
                session_ips=session_ips if session_ips is not None else [],
                session_headers=(
                    session_headers
                    if session_headers is not None
                    else np.empty(0, dtype=np.int32)
                ),
                session_datadome=(
                    session_datadome
                    if session_datadome is not None
                    else np.empty(0, dtype=np.int32)
                ),
                session_botd=(
                    session_botd if session_botd is not None else np.empty(0, dtype=np.int32)
                ),
            )
        self.sessions = sessions

    @property
    def n_rows(self) -> int:
        return int(self.timestamps.size)

    @property
    def n_sessions(self) -> int:
        return self.sessions.n_sessions

    # -- compatibility views over the session block -----------------------

    @property
    def session_fingerprints(self) -> Sequence[Fingerprint]:
        return self.sessions.fingerprints

    @property
    def headers(self) -> Sequence[Mapping[str, str]]:
        return self.sessions.header_maps

    @property
    def decisions(self) -> Sequence[Decision]:
        return self.sessions.decision_objects

    @property
    def session_ips(self) -> List[str]:
        return self.sessions.session_ips

    @property
    def session_headers(self) -> np.ndarray:
        return self.sessions.session_headers

    @property
    def session_datadome(self) -> np.ndarray:
        return self.sessions.session_datadome

    @property
    def session_botd(self) -> np.ndarray:
        return self.sessions.session_botd

    def renumbered(self, start: int = 1) -> "RecordColumns":
        """Copy with sequential request ids ``start..start+n-1``.

        The coordinator calls this after merging shards, restoring the
        serial-path invariant that ids are 1..N in store order regardless
        of executor and worker count.
        """

        clone = self.take(np.arange(self.n_rows, dtype=np.int64))
        clone.request_ids = np.arange(start, start + self.n_rows, dtype=np.int64)
        return clone

    def take(self, rows: np.ndarray) -> "RecordColumns":
        """Row-sliced copy sharing the session/value dictionaries."""

        rows = np.asarray(rows, dtype=np.int64)
        return RecordColumns(
            timestamps=self.timestamps[rows],
            session_codes=self.session_codes[rows],
            presented_codes=self.presented_codes[rows],
            served_codes=self.served_codes[rows],
            source_codes=self.source_codes[rows],
            request_ids=None if self.request_ids is None else self.request_ids[rows],
            cookie_values=self.cookie_values,
            sources=self.sources,
            url_paths=self.url_paths,
            sessions=self.sessions,
        )

    @classmethod
    def concat(cls, parts: Iterable["RecordColumns"]) -> "RecordColumns":
        """Merge shard columns in order into one columnar record sequence.

        Shard-local codes are offset into the merged dictionaries.  Cookie
        values never repeat across shards (each shard issues from its own
        stream) so cookie offsets are pure concatenation; sources *do*
        repeat across sub-shards of one split service and are deduplicated
        by name (their URL paths must agree).
        """

        parts = list(parts)
        if not parts:
            raise ValueError("cannot concatenate zero record column sets")
        timestamps, session_codes = [], []
        presented_codes, served_codes, source_codes = [], [], []
        cookie_values: List[str] = []
        sources: List[str] = []
        url_paths: List[str] = []
        source_index: Dict[str, int] = {}
        session_offset = 0
        for part in parts:
            cookie_offset = len(cookie_values)
            source_map = np.empty(len(part.sources), dtype=np.int32)
            for local, (name, url_path) in enumerate(zip(part.sources, part.url_paths)):
                code = source_index.get(name)
                if code is None:
                    code = len(sources)
                    source_index[name] = code
                    sources.append(name)
                    url_paths.append(url_path)
                elif url_paths[code] != url_path:
                    raise ValueError(
                        f"source {name!r} maps to conflicting URL paths "
                        f"{url_paths[code]!r} and {url_path!r}"
                    )
                source_map[local] = code
            timestamps.append(part.timestamps)
            session_codes.append(part.session_codes + session_offset)
            presented = part.presented_codes.copy()
            presented[presented >= 0] += cookie_offset
            presented_codes.append(presented)
            served_codes.append(part.served_codes + cookie_offset)
            source_codes.append(
                source_map[part.source_codes] if len(part.sources) else part.source_codes
            )
            cookie_values.extend(part.cookie_values)
            session_offset += part.n_sessions
        return cls(
            timestamps=np.concatenate(timestamps),
            session_codes=np.concatenate(session_codes),
            presented_codes=np.concatenate(presented_codes),
            served_codes=np.concatenate(served_codes),
            source_codes=np.concatenate(source_codes),
            cookie_values=cookie_values,
            sources=sources,
            url_paths=url_paths,
            sessions=SessionArrays.concat([part.sessions for part in parts]),
        )

    # -- decoded row views ------------------------------------------------------

    def row_cookies(self) -> List[str]:
        """Served cookie value per row (what ``record.cookie`` holds)."""

        values = self.cookie_values
        return [values[code] for code in self.served_codes.tolist()]

    def row_ips(self) -> List[str]:
        """Source address per row (``record.request.ip_address``)."""

        ips = self.session_ips
        return [ips[code] for code in self.session_codes.tolist()]

    def cookie_columns(self) -> Tuple[np.ndarray, List[str]]:
        """Served-cookie column re-coded in row first-occurrence order —
        exactly what factorizing :meth:`row_cookies` would produce, without
        decoding a string per row."""

        return _first_occurrence_recode(self.served_codes, self.cookie_values)

    def ip_columns(self) -> Tuple[np.ndarray, List[str]]:
        """Source-address column re-coded in row first-occurrence order."""

        return _first_occurrence_recode(self.session_codes, self.session_ips)

    def attribute_rows(self, attribute) -> Tuple[np.ndarray, List[Any]]:
        """Per-row raw-value codes of fingerprint *attribute*.

        ``codes[row]`` indexes the returned decode list, or is ``-1`` when
        the row's session does not carry the attribute — the columnar
        counterpart of reading ``record.attribute(attribute)`` per row.
        The per-session column is computed once per attribute and shared
        by every row subset (:meth:`take` shares the session block).
        """

        name = attribute.value if isinstance(attribute, Attribute) else str(attribute)
        codes, values = self.sessions.attribute_value_codes(name)
        return codes[self.session_codes], values

    def evaded_rows(self, detector: str) -> np.ndarray:
        """Boolean per-row evasion column of *detector*, straight from the
        session-deduplicated decision arrays (``evaded == not is_bot``) —
        no decision object is ever decoded."""

        if detector == "DataDome":
            per_session_decision = self.sessions.session_datadome
        elif detector == "BotD":
            per_session_decision = self.sessions.session_botd
        else:
            raise KeyError(f"unknown detector {detector!r}")
        if not self.n_sessions:
            return np.zeros(self.n_rows, dtype=bool)
        evaded = ~np.asarray(self.sessions.decision_is_bot, dtype=bool)
        return evaded[per_session_decision][self.session_codes]

    # -- persistence ------------------------------------------------------------

    def to_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Split into a (numeric arrays, JSON-able meta) pair for ``.npz``
        persistence; inverse of :meth:`from_payload`.

        Format v4: every session dictionary travels as code arrays; the
        JSON meta holds only the decode lists (strings and raw scalar
        values), never a serialised object.  Fingerprint value tables are
        JSON-safe because every canonical value is a scalar or a tuple
        (tuples round-trip as lists, restored on read).
        """

        if self.request_ids is None:
            raise ValueError("only renumbered record columns can be persisted")
        sessions = self.sessions
        arrays = {
            "timestamps": self.timestamps,
            "session_codes": self.session_codes,
            "presented_codes": self.presented_codes,
            "served_codes": self.served_codes,
            "source_codes": self.source_codes,
            "request_ids": self.request_ids,
            "session_headers": sessions.session_headers,
            "session_datadome": sessions.session_datadome,
            "session_botd": sessions.session_botd,
            "fp_attr_codes": sessions.fp_attr_codes,
            "fp_value_codes": sessions.fp_value_codes,
            "fp_offsets": sessions.fp_offsets,
            "header_key_codes": sessions.header_key_codes,
            "header_value_codes": sessions.header_value_codes,
            "header_offsets": sessions.header_offsets,
            "decision_detectors": sessions.decision_detectors,
            "decision_is_bot": sessions.decision_is_bot,
            "decision_scores": sessions.decision_scores,
            "decision_signal_codes": sessions.decision_signal_codes,
            "decision_signal_offsets": sessions.decision_signal_offsets,
        }
        meta = {
            "cookie_values": list(self.cookie_values),
            "sources": list(self.sources),
            "url_paths": list(self.url_paths),
            "session_ips": list(sessions.session_ips),
            "fp_attribute_names": list(sessions.fp_attribute_names),
            "fp_values": [
                [list(value) if isinstance(value, tuple) else value for value in values]
                for values in sessions.fp_values
            ],
            "header_keys": list(sessions.header_keys),
            "header_values": list(sessions.header_values),
            "decision_detector_names": list(sessions.decision_detector_names),
            "decision_signal_values": list(sessions.decision_signal_values),
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays: Mapping[str, Any], meta: Mapping[str, Any]) -> "RecordColumns":
        """Rebuild record columns persisted by :meth:`to_payload`.

        Dispatches on the meta layout: a ``session_fingerprints`` key marks
        the version-3 object layout (decoded through the legacy constructor
        path), otherwise the arrays are adopted directly — matching dtypes
        make every ``asarray`` a zero-copy view, so a memory-mapped archive
        stays on disk.  Raises :class:`StoreFormatError` on any internal
        inconsistency (ragged arrays, out-of-range codes) so a truncated or
        corrupt archive reads as a cache miss, never as a silently wrong
        corpus.
        """

        def _typed(name: str, dtype) -> np.ndarray:
            return np.asarray(arrays[name], dtype=dtype)

        shared = dict(
            timestamps=_typed("timestamps", np.float64),
            session_codes=_typed("session_codes", np.int64),
            presented_codes=_typed("presented_codes", np.int32),
            served_codes=_typed("served_codes", np.int32),
            source_codes=_typed("source_codes", np.int32),
            request_ids=_typed("request_ids", np.int64),
            cookie_values=[str(value) for value in meta["cookie_values"]],
            sources=[str(value) for value in meta["sources"]],
            url_paths=[str(value) for value in meta["url_paths"]],
        )
        if "session_fingerprints" in meta:
            columns = cls(
                **shared,
                session_fingerprints=[
                    Fingerprint.from_dict(entry) for entry in meta["session_fingerprints"]
                ],
                session_headers=_typed("session_headers", np.int32),
                session_datadome=_typed("session_datadome", np.int32),
                session_botd=_typed("session_botd", np.int32),
                session_ips=[str(value) for value in meta["session_ips"]],
                headers=[
                    {str(key): str(value) for key, value in entry.items()}
                    for entry in meta["headers"]
                ],
                decisions=[
                    Decision(
                        detector=str(entry["detector"]),
                        is_bot=bool(entry["is_bot"]),
                        score=float(entry["score"]),
                        signals=tuple(entry.get("signals", ())),
                    )
                    for entry in meta["decisions"]
                ],
            )
        else:
            # Code and offset arrays adopt whatever (minimal) dtype the
            # encoder packed them to — an as-is ``asarray`` is a zero-copy
            # view, which keeps a memory-mapped archive on disk.
            sessions = SessionArrays(
                fp_attr_codes=np.asarray(arrays["fp_attr_codes"]),
                fp_value_codes=np.asarray(arrays["fp_value_codes"]),
                fp_offsets=np.asarray(arrays["fp_offsets"]),
                fp_attribute_names=[str(name) for name in meta["fp_attribute_names"]],
                fp_values=[
                    [tuple(value) if isinstance(value, list) else value for value in values]
                    for values in meta["fp_values"]
                ],
                header_key_codes=np.asarray(arrays["header_key_codes"]),
                header_value_codes=np.asarray(arrays["header_value_codes"]),
                header_offsets=np.asarray(arrays["header_offsets"]),
                header_keys=[str(key) for key in meta["header_keys"]],
                header_values=[str(value) for value in meta["header_values"]],
                session_headers=np.asarray(arrays["session_headers"]),
                session_datadome=np.asarray(arrays["session_datadome"]),
                session_botd=np.asarray(arrays["session_botd"]),
                session_ips=[str(value) for value in meta["session_ips"]],
                decision_detectors=np.asarray(arrays["decision_detectors"]),
                decision_is_bot=_typed("decision_is_bot", bool),
                decision_scores=_typed("decision_scores", np.float64),
                decision_signal_codes=np.asarray(arrays["decision_signal_codes"]),
                decision_signal_offsets=np.asarray(arrays["decision_signal_offsets"]),
                decision_detector_names=[
                    str(name) for name in meta["decision_detector_names"]
                ],
                decision_signal_values=[
                    str(value) for value in meta["decision_signal_values"]
                ],
            )
            columns = cls(**shared, sessions=sessions)
        columns.validate()
        return columns

    def validate(self) -> None:
        """Check internal consistency; raises :class:`StoreFormatError`."""

        n = self.n_rows
        per_row = (
            self.session_codes,
            self.presented_codes,
            self.served_codes,
            self.source_codes,
        ) + (() if self.request_ids is None else (self.request_ids,))
        if any(column.size != n for column in per_row):
            raise StoreFormatError("record columns are ragged")
        if len(self.sources) != len(self.url_paths):
            raise StoreFormatError("source and URL dictionaries disagree")
        self.sessions.validate()

        def _in_range(codes: np.ndarray, size: int, allow_missing: bool = False) -> bool:
            if not codes.size:
                return True
            low = -1 if allow_missing else 0
            return int(codes.min()) >= low and int(codes.max()) < size

        if not (
            _in_range(self.session_codes, self.n_sessions)
            and _in_range(self.presented_codes, len(self.cookie_values), allow_missing=True)
            and _in_range(self.served_codes, len(self.cookie_values))
            and _in_range(self.source_codes, len(self.sources))
        ):
            raise StoreFormatError("record columns contain out-of-range codes")


def _first_occurrence_recode(
    row_codes: np.ndarray, values: Sequence
) -> Tuple[np.ndarray, List]:
    """Re-code a (non-missing) row column into value codes assigned in row
    first-occurrence order.

    Byte-identical to factorizing the decoded per-row values — equal
    values under different input codes collapse onto one output code, and
    output codes count up in the order their values first appear in row
    order — but works on the ``int`` code column directly instead of
    allocating one Python string per row.
    """

    n_values = len(values)
    row_codes = np.asarray(row_codes, dtype=np.int64)
    if not row_codes.size:
        return np.empty(0, dtype=np.int32), []
    canonical: Dict[object, int] = {}
    canon = np.empty(n_values, dtype=np.int64)
    for code, value in enumerate(values):
        canon[code] = canonical.setdefault(value, code)
    canon_rows = canon[row_codes]
    first_row = np.full(n_values, row_codes.size, dtype=np.int64)
    np.minimum.at(first_row, canon_rows, np.arange(row_codes.size, dtype=np.int64))
    used = np.nonzero(first_row < row_codes.size)[0]
    used = used[np.argsort(first_row[used], kind="stable")]
    remap = np.full(n_values, -1, dtype=np.int64)
    remap[used] = np.arange(used.size, dtype=np.int64)
    return remap[canon_rows].astype(np.int32), [values[int(code)] for code in used]


class RecordColumnsBuilder:
    """Shard-side accumulator filling a :class:`RecordColumns`.

    A :class:`~repro.honeysite.site.SessionRecorder` whose ``sink`` is a
    builder appends one row per emitted request here instead of
    constructing record objects; session-constant objects register once
    (the builder's dictionaries pin every registered object, so identity
    keys can never alias a collected object).
    """

    def __init__(self):
        self._timestamps: List[float] = []
        self._session_rows: List[int] = []
        self._presented: List[int] = []
        self._served: List[int] = []
        self._source_rows: List[int] = []
        self._cookie_index: Dict[str, int] = {}
        self.cookie_values: List[str] = []
        self._source_index: Dict[str, int] = {}
        self.sources: List[str] = []
        self.url_paths: List[str] = []
        self.session_fingerprints: List[Fingerprint] = []
        self._session_headers: List[int] = []
        self._session_datadome: List[int] = []
        self._session_botd: List[int] = []
        self.session_ips: List[str] = []
        self._headers_index: Dict[int, int] = {}
        self.headers: List[Mapping[str, str]] = []
        self._decisions_index: Dict[int, int] = {}
        self.decisions: List[Decision] = []

    def _cookie_code(self, value: Optional[str]) -> int:
        if not value:
            return -1
        code = self._cookie_index.get(value)
        if code is None:
            code = len(self.cookie_values)
            self._cookie_index[value] = code
            self.cookie_values.append(value)
        return code

    def _decision_code(self, decision: Decision) -> int:
        code = self._decisions_index.get(id(decision))
        if code is None:
            code = len(self.decisions)
            self._decisions_index[id(decision)] = code
            self.decisions.append(decision)
        return code

    def _session_code(self, material) -> int:
        code = material.payload_code
        if code is None:
            code = len(self.session_fingerprints)
            material.payload_code = code
            self.session_fingerprints.append(material.fingerprint)
            headers_code = self._headers_index.get(id(material.headers))
            if headers_code is None:
                headers_code = len(self.headers)
                self._headers_index[id(material.headers)] = headers_code
                self.headers.append(material.headers)
            self._session_headers.append(headers_code)
            self._session_datadome.append(self._decision_code(material.datadome))
            self._session_botd.append(self._decision_code(material.botd))
            self.session_ips.append(material.ip_address)
        return code

    def append(
        self,
        material,
        *,
        url_path: str,
        source: str,
        timestamp: float,
        presented: Optional[str],
        served: str,
    ) -> None:
        """Record one request of *material*'s session."""

        source_code = self._source_index.get(source)
        if source_code is None:
            source_code = len(self.sources)
            self._source_index[source] = source_code
            self.sources.append(source)
            self.url_paths.append(url_path)
        self._session_rows.append(self._session_code(material))
        self._timestamps.append(timestamp)
        self._presented.append(self._cookie_code(presented))
        self._served.append(self._cookie_code(served))
        self._source_rows.append(source_code)

    def columns(self) -> RecordColumns:
        """Freeze the accumulated rows into a :class:`RecordColumns`."""

        return RecordColumns(
            timestamps=np.array(self._timestamps, dtype=np.float64),
            session_codes=np.array(self._session_rows, dtype=np.int64),
            presented_codes=np.array(self._presented, dtype=np.int32),
            served_codes=np.array(self._served, dtype=np.int32),
            source_codes=np.array(self._source_rows, dtype=np.int32),
            cookie_values=self.cookie_values,
            sources=self.sources,
            url_paths=self.url_paths,
            session_fingerprints=self.session_fingerprints,
            session_headers=np.array(self._session_headers, dtype=np.int32),
            session_datadome=np.array(self._session_datadome, dtype=np.int32),
            session_botd=np.array(self._session_botd, dtype=np.int32),
            session_ips=self.session_ips,
            headers=self.headers,
            decisions=self.decisions,
        )


class RequestStore:
    """In-memory store of recorded requests with the query helpers the
    analyses need, plus JSONL persistence."""

    def __init__(self, records: Optional[Iterable[RecordedRequest]] = None):
        self._records: List[RecordedRequest] = list(records) if records is not None else []

    # -- collection protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RecordedRequest]:
        return iter(self._records)

    def __getitem__(self, index: int) -> RecordedRequest:
        return self._records[index]

    def add(self, record: RecordedRequest) -> None:
        """Append one record."""

        self._records.append(record)

    def extend(self, records: Iterable[RecordedRequest]) -> None:
        """Append many records."""

        self._records.extend(records)

    @property
    def records(self) -> Tuple[RecordedRequest, ...]:
        return tuple(self._records)

    # -- filtering ---------------------------------------------------------------

    def filter(self, predicate: Callable[[RecordedRequest], bool]) -> "RequestStore":
        """New store containing the records satisfying *predicate*."""

        return RequestStore(record for record in self._records if predicate(record))

    def by_source(self, source: str) -> "RequestStore":
        """Records attributed to *source*."""

        return self.filter(lambda record: record.source == source)

    def by_sources(self, sources: Iterable[str]) -> "RequestStore":
        """Records attributed to any source in *sources*.

        :class:`LazyRequestStore` answers this from its source-code column
        without materialising a single record, which is why the corpus
        subsets (:attr:`~repro.analysis.corpus.Corpus.bot_store` et al.)
        route through it instead of :meth:`filter`.
        """

        names = frozenset(sources)
        return self.filter(lambda record: record.source in names)

    def request_id_array(self) -> np.ndarray:
        """Request ids in store order as an ``int64`` array.

        Consumers that only need ids (table/store binding checks, verdict
        joins) should prefer this over iterating records: the lazy store
        serves it straight from its columns.
        """

        return np.fromiter(
            (record.request.request_id for record in self._records),
            dtype=np.int64,
            count=len(self._records),
        )

    def sources(self) -> Tuple[str, ...]:
        """Source labels present, ordered by descending request count."""

        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.source] = counts.get(record.source, 0) + 1
        return tuple(sorted(counts, key=lambda source: counts[source], reverse=True))

    def evading(self, detector: str) -> "RequestStore":
        """Records that evaded *detector*."""

        return self.filter(lambda record: record.evaded(detector))

    def detected_by(self, detector: str) -> "RequestStore":
        """Records flagged by *detector*."""

        return self.filter(lambda record: not record.evaded(detector))

    # -- aggregate statistics -------------------------------------------------------

    def evasion_rate(self, detector: str) -> float:
        """Fraction of records that evaded *detector* (0 when empty)."""

        if not self._records:
            return 0.0
        return sum(1 for record in self._records if record.evaded(detector)) / len(self._records)

    def evaded_rows(self, detector: str) -> np.ndarray:
        """Boolean per-row evasion column of *detector* in store order.

        The vectorized evaluation tables consume this; the lazy store
        computes it from its decision dictionary without materialising."""

        return np.fromiter(
            (record.evaded(detector) for record in self._records),
            dtype=bool,
            count=len(self._records),
        )

    def source_rows(self) -> Tuple[np.ndarray, List[str], Dict[str, int]]:
        """``(codes, names, name → code)`` of the per-row source column."""

        codes = np.empty(len(self._records), dtype=np.int32)
        names: List[str] = []
        index: Dict[str, int] = {}
        for position, record in enumerate(self._records):
            code = index.get(record.source)
            if code is None:
                code = len(names)
                index[record.source] = code
                names.append(record.source)
            codes[position] = code
        return codes, names, index

    def detection_rate(self, detector: str) -> float:
        """Fraction of records flagged by *detector* (0 when empty)."""

        if not self._records:
            return 0.0
        return 1.0 - self.evasion_rate(detector)

    def unique_values(self, attribute: Attribute) -> Dict[object, int]:
        """Histogram of grouping values of *attribute* across the store."""

        histogram: Dict[object, int] = {}
        for record in self._records:
            value = record.request.fingerprint.value_for_grouping(attribute)
            histogram[value] = histogram.get(value, 0) + 1
        return histogram

    def unique_ips(self) -> int:
        """Number of distinct source IP addresses."""

        return len({record.request.ip_address for record in self._records})

    def unique_cookies(self) -> int:
        """Number of distinct first-party cookie values."""

        return len({record.cookie for record in self._records})

    def unique_fingerprints(self) -> int:
        """Number of distinct fingerprint hashes."""

        return len({record.request.fingerprint.stable_hash() for record in self._records})

    def daily_series(self) -> Dict[int, Dict[str, int]]:
        """Per-day counts backing Figure 9.

        Returns ``{day: {"requests", "unique_ips", "unique_cookies",
        "unique_fingerprints"}}`` keyed by day index.
        """

        per_day: Dict[int, List[RecordedRequest]] = {}
        for record in self._records:
            per_day.setdefault(record.day, []).append(record)
        series: Dict[int, Dict[str, int]] = {}
        for day, records in sorted(per_day.items()):
            series[day] = {
                "requests": len(records),
                "unique_ips": len({r.request.ip_address for r in records}),
                "unique_cookies": len({r.cookie for r in records}),
                "unique_fingerprints": len(
                    {r.request.fingerprint.stable_hash() for r in records}
                ),
            }
        return series

    def group_by_cookie(self) -> Dict[str, List[RecordedRequest]]:
        """Records grouped by first-party cookie value."""

        groups: Dict[str, List[RecordedRequest]] = {}
        for record in self._records:
            groups.setdefault(record.cookie, []).append(record)
        return groups

    def group_by_ip(self) -> Dict[str, List[RecordedRequest]]:
        """Records grouped by source IP address."""

        groups: Dict[str, List[RecordedRequest]] = {}
        for record in self._records:
            groups.setdefault(record.request.ip_address, []).append(record)
        return groups

    def sorted_by_time(self) -> "RequestStore":
        """New store with records ordered by timestamp."""

        return RequestStore(sorted(self._records, key=lambda record: record.timestamp))

    def columnar(self, attributes=None):
        """Extract the store into a columnar fingerprint table.

        Returns a :class:`repro.core.columnar.ColumnarTable`: per-attribute
        code arrays plus request metadata, the layout the vectorized
        detection engine consumes.  *attributes* optionally restricts or
        reorders the extracted attribute set.
        """

        # Imported lazily: repro.core depends on this module.
        from repro.core.columnar import ColumnarTable

        return ColumnarTable.from_store(self, attributes=attributes)

    def split(
        self, fraction: float, rng
    ) -> Tuple["RequestStore", "RequestStore"]:
        """Random split into two stores of sizes ``fraction`` / ``1-fraction``."""

        first, second = split_rows(len(self._records), fraction, rng)
        return (
            RequestStore(self._records[int(i)] for i in first),
            RequestStore(self._records[int(i)] for i in second),
        )

    # -- persistence -------------------------------------------------------------------

    def save_jsonl(self, path) -> None:
        """Write the store to *path* as one JSON object per line.

        Paths ending in ``.gz`` are gzip-compressed.  The first line is a
        version header so readers can reject archives written by an
        incompatible format revision.
        """

        path = Path(path)
        with _open_text(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "format": _STORE_HEADER_MARKER,
                        "version": CORPUS_FORMAT_VERSION,
                        "count": len(self._records),
                    }
                )
                + "\n"
            )
            for record in self._records:
                handle.write(json.dumps(record.to_dict()) + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "RequestStore":
        """Load a store written by :meth:`save_jsonl`.

        Accepts gzip-compressed files (``.gz`` suffix) and tolerates legacy
        header-less files; a header from a newer format version raises
        :class:`StoreFormatError`.
        """

        path = Path(path)
        records = []
        expected: Optional[int] = None
        with _open_text(path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("format") == _STORE_HEADER_MARKER:
                    version = int(data.get("version", 0))
                    if version > CORPUS_FORMAT_VERSION:
                        raise StoreFormatError(
                            f"store {path} has format version {version}; "
                            f"this build reads up to {CORPUS_FORMAT_VERSION}"
                        )
                    expected = data.get("count")
                    continue
                records.append(RecordedRequest.from_dict(data))
        if expected is not None and expected != len(records):
            raise StoreFormatError(
                f"store {path} is truncated: header promises {expected} records, "
                f"found {len(records)}"
            )
        return cls(records)


#: Process-wide total of record objects built out of lazy stores.  The
#: registry counter is the single source of truth (always on, so the
#: materialisation contract stays checkable in untraced runs);
#: :func:`materialized_record_count` remains the back-compat read.
_MATERIALIZED_RECORDS = obs.counter(
    "repro_records_materialized_total",
    "Record objects materialised out of lazy columnar stores.",
    always=True,
)


def materialized_record_count() -> int:
    """Total record objects materialised out of :class:`LazyRequestStore`
    instances since process start.

    Fully columnar consumers (the figure/table ports, ``repro report``)
    snapshot this before and after a run and assert a delta of zero —
    the observable form of the "no record objects" contract.  Reads the
    ``repro_records_materialized_total`` counter of the
    :mod:`repro.obs` registry.
    """

    return int(_MATERIALIZED_RECORDS.value())


class LazyRequestStore(RequestStore):
    """A :class:`RequestStore` backed by :class:`RecordColumns`.

    Columnar consumers — lengths, source subsets, splits, the vectorized
    evaluation columns — are answered straight from the arrays; record
    objects are materialised (once, lazily, byte-identical to the
    object-at-a-time path) only when a consumer actually iterates them.
    The store is immutable: the corpus coordinator builds it after the
    merge, and mutating it would desynchronise objects and columns.
    """

    def __init__(self, columns: RecordColumns):
        if columns.request_ids is None:
            raise ValueError(
                "a lazy store needs renumbered columns (RecordColumns.renumbered)"
            )
        self._columns = columns
        self._cache: Optional[List[RecordedRequest]] = None

    @property
    def columns(self) -> RecordColumns:
        return self._columns

    # Base-class methods read ``self._records``; route them through lazy
    # materialisation so every inherited query keeps working unchanged.
    @property
    def _records(self) -> List[RecordedRequest]:
        if self._cache is None:
            self._cache = self._materialize()
        return self._cache

    @property
    def materialized(self) -> bool:
        """Whether record objects have been built (observability/tests)."""

        return self._cache is not None

    def _materialize(self) -> List[RecordedRequest]:
        columns = self._columns
        sources = columns.sources
        url_paths = columns.url_paths
        cookie_values = columns.cookie_values
        fingerprints = columns.session_fingerprints
        headers_list = columns.headers
        decisions = columns.decisions
        session_headers = columns.session_headers.tolist()
        session_datadome = columns.session_datadome.tolist()
        session_botd = columns.session_botd.tolist()
        session_ips = columns.session_ips
        records: List[RecordedRequest] = []
        append = records.append
        # Construct both frozen records through ``__new__`` + ``__dict__``
        # (as SessionRecorder.emit does): the columns were produced by
        # generators that already guaranteed the __post_init__ invariants,
        # and the guarded per-field ``object.__setattr__`` of a frozen
        # dataclass dominates bulk materialisation cost.
        for timestamp, session, presented, served, source_code, request_id in zip(
            columns.timestamps.tolist(),
            columns.session_codes.tolist(),
            columns.presented_codes.tolist(),
            columns.served_codes.tolist(),
            columns.source_codes.tolist(),
            columns.request_ids.tolist(),
        ):
            request = WebRequest.__new__(WebRequest)
            object.__setattr__(
                request,
                "__dict__",
                {
                    "url_path": url_paths[source_code],
                    "timestamp": timestamp,
                    "ip_address": session_ips[session],
                    "fingerprint": fingerprints[session],
                    "cookie": cookie_values[presented] if presented >= 0 else None,
                    "headers": headers_list[session_headers[session]],
                    "request_id": request_id,
                },
            )
            record = RecordedRequest.__new__(RecordedRequest)
            object.__setattr__(
                record,
                "__dict__",
                {
                    "request": request,
                    "source": sources[source_code],
                    "cookie": cookie_values[served],
                    "datadome": decisions[session_datadome[session]],
                    "botd": decisions[session_botd[session]],
                },
            )
            append(record)
        _MATERIALIZED_RECORDS.inc(len(records))
        return records

    # -- immutability ----------------------------------------------------------

    def add(self, record: RecordedRequest) -> None:
        raise TypeError(
            "LazyRequestStore is immutable; copy it into a RequestStore "
            "(RequestStore(store)) to mutate"
        )

    def extend(self, records: Iterable[RecordedRequest]) -> None:
        raise TypeError(
            "LazyRequestStore is immutable; copy it into a RequestStore "
            "(RequestStore(store)) to mutate"
        )

    # -- columnar fast paths ---------------------------------------------------

    def __len__(self) -> int:
        return self._columns.n_rows

    def request_id_array(self) -> np.ndarray:
        return self._columns.request_ids

    def evaded_rows(self, detector: str) -> np.ndarray:
        return self._columns.evaded_rows(detector)

    def source_rows(self) -> Tuple[np.ndarray, List[str], Dict[str, int]]:
        columns = self._columns
        index = {name: code for code, name in enumerate(columns.sources)}
        return columns.source_codes, list(columns.sources), index

    def evasion_rate(self, detector: str) -> float:
        if not len(self):
            return 0.0
        return int(np.count_nonzero(self._columns.evaded_rows(detector))) / len(self)

    def detection_rate(self, detector: str) -> float:
        # The base implementation's emptiness check touches ``_records``
        # and would materialise; same arithmetic off the decision column.
        if not len(self):
            return 0.0
        return 1.0 - self.evasion_rate(detector)

    def _take(self, rows: np.ndarray) -> "LazyRequestStore":
        return LazyRequestStore(self._columns.take(rows))

    def by_sources(self, sources: Iterable[str]) -> "LazyRequestStore":
        names = frozenset(sources)
        columns = self._columns
        wanted = np.fromiter(
            (name in names for name in columns.sources),
            dtype=bool,
            count=len(columns.sources),
        )
        if not wanted.size:
            rows = np.empty(0, dtype=np.int64)
        else:
            rows = np.nonzero(wanted[columns.source_codes])[0]
        return self._take(rows)

    def by_source(self, source: str) -> "LazyRequestStore":
        return self.by_sources((source,))

    def evading(self, detector: str) -> "LazyRequestStore":
        return self._take(np.nonzero(self._columns.evaded_rows(detector))[0])

    def detected_by(self, detector: str) -> "LazyRequestStore":
        return self._take(np.nonzero(~self._columns.evaded_rows(detector))[0])

    def split(self, fraction: float, rng) -> Tuple["LazyRequestStore", "LazyRequestStore"]:
        first, second = split_rows(len(self), fraction, rng)
        return self._take(first), self._take(second)

    def sources(self) -> Tuple[str, ...]:
        columns = self._columns
        codes = columns.source_codes
        counts = np.bincount(codes, minlength=len(columns.sources))
        first_row = np.full(counts.size, codes.size, dtype=np.int64)
        np.minimum.at(first_row, codes, np.arange(codes.size, dtype=np.int64))
        present = np.nonzero(counts)[0].tolist()
        # First-occurrence order, then a stable sort by descending count —
        # exactly the tie-breaking of the dict-insertion reference path.
        present.sort(key=lambda code: int(first_row[code]))
        present.sort(key=lambda code: int(counts[code]), reverse=True)
        return tuple(columns.sources[code] for code in present)

    def unique_ips(self) -> int:
        columns = self._columns
        used = np.unique(columns.session_codes).tolist()
        return len({columns.session_ips[code] for code in used})

    def unique_cookies(self) -> int:
        return int(np.unique(self._columns.served_codes).size)

    def unique_fingerprints(self) -> int:
        columns = self._columns
        used = np.unique(columns.session_codes).tolist()
        return len({columns.session_fingerprints[code].stable_hash() for code in used})
