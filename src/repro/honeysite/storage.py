"""Recorded requests and the request store.

Every request the honey site attributes to a known source is stored as a
:class:`RecordedRequest`: the raw request, the source label, the cookie
value after issuance and the decisions of both anti-bot services (mirroring
Figure 3 — "decisions from DataDome and BotD are stored in the database
alongside other request data").  The :class:`RequestStore` is the query
surface every analysis in Sections 5–7 runs against.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.antibot.base import Decision
from repro.fingerprint.attributes import Attribute
from repro.network.request import WebRequest

SECONDS_PER_DAY = 86_400.0

#: Version of the on-disk request-store / corpus archive format.  Bump on
#: any change to the serialised record layout — or to the generated corpus
#: content itself — so the content-addressed cache rebuilds stale entries
#: rather than mis-parsing (or silently serving outdated) archives.
#: Version 2: sub-sharded generation of large services changed default
#: corpora, and archives gained the ``columnar_*.npz`` sidecars.
CORPUS_FORMAT_VERSION = 2

#: Marker identifying the header line of a versioned store file.
_STORE_HEADER_MARKER = "repro-request-store"


class StoreFormatError(ValueError):
    """Raised when a persisted store cannot be read back."""


def split_rows(n: int, fraction: float, rng) -> Tuple:
    """Permutation split of ``range(n)`` into (``fraction``, rest) index arrays.

    The single source of randomness behind :meth:`RequestStore.split`; the
    generalisation evaluation uses the same helper to slice an extracted
    :class:`~repro.core.columnar.ColumnarTable` with ``take`` instead of
    re-extracting the split stores, so both views of one split always
    agree row for row.
    """

    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    indices = rng.permutation(n)
    cut = int(round(n * fraction))
    return indices[:cut], indices[cut:]


def _open_text(path: Path, mode: str):
    """Open *path* for text I/O, transparently gzipped for ``.gz`` files."""

    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


@dataclass(frozen=True)
class RecordedRequest:
    """One attributed request with both detector decisions."""

    request: WebRequest
    source: str
    cookie: str
    datadome: Decision
    botd: Decision

    @property
    def timestamp(self) -> float:
        return self.request.timestamp

    @property
    def day(self) -> int:
        """Day index (0-based) within the measurement campaign."""

        return int(self.request.timestamp // SECONDS_PER_DAY)

    def decision_for(self, detector: str) -> Decision:
        """Decision of *detector* ("DataDome" or "BotD")."""

        if detector == "DataDome":
            return self.datadome
        if detector == "BotD":
            return self.botd
        raise KeyError(f"unknown detector {detector!r}")

    def evaded(self, detector: str) -> bool:
        """Whether the request evaded *detector*."""

        return self.decision_for(detector).evaded

    def attribute(self, attribute: Attribute, default=None):
        """Convenience accessor for a fingerprint attribute."""

        return self.request.fingerprint.get(attribute, default)

    def to_dict(self) -> Dict:
        """Serialise for the JSONL persistence layer."""

        return {
            "request": self.request.to_dict(),
            "source": self.source,
            "cookie": self.cookie,
            "datadome": {
                "is_bot": self.datadome.is_bot,
                "score": self.datadome.score,
                "signals": list(self.datadome.signals),
            },
            "botd": {
                "is_bot": self.botd.is_bot,
                "score": self.botd.score,
                "signals": list(self.botd.signals),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RecordedRequest":
        """Reconstruct a record serialised by :meth:`to_dict`."""

        return cls(
            request=WebRequest.from_dict(data["request"]),
            source=str(data["source"]),
            cookie=str(data["cookie"]),
            datadome=Decision(
                detector="DataDome",
                is_bot=bool(data["datadome"]["is_bot"]),
                score=float(data["datadome"]["score"]),
                signals=tuple(data["datadome"].get("signals", ())),
            ),
            botd=Decision(
                detector="BotD",
                is_bot=bool(data["botd"]["is_bot"]),
                score=float(data["botd"]["score"]),
                signals=tuple(data["botd"].get("signals", ())),
            ),
        )


class RequestStore:
    """In-memory store of recorded requests with the query helpers the
    analyses need, plus JSONL persistence."""

    def __init__(self, records: Optional[Iterable[RecordedRequest]] = None):
        self._records: List[RecordedRequest] = list(records) if records is not None else []

    # -- collection protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RecordedRequest]:
        return iter(self._records)

    def __getitem__(self, index: int) -> RecordedRequest:
        return self._records[index]

    def add(self, record: RecordedRequest) -> None:
        """Append one record."""

        self._records.append(record)

    def extend(self, records: Iterable[RecordedRequest]) -> None:
        """Append many records."""

        self._records.extend(records)

    @property
    def records(self) -> Tuple[RecordedRequest, ...]:
        return tuple(self._records)

    # -- filtering ---------------------------------------------------------------

    def filter(self, predicate: Callable[[RecordedRequest], bool]) -> "RequestStore":
        """New store containing the records satisfying *predicate*."""

        return RequestStore(record for record in self._records if predicate(record))

    def by_source(self, source: str) -> "RequestStore":
        """Records attributed to *source*."""

        return self.filter(lambda record: record.source == source)

    def sources(self) -> Tuple[str, ...]:
        """Source labels present, ordered by descending request count."""

        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.source] = counts.get(record.source, 0) + 1
        return tuple(sorted(counts, key=lambda source: counts[source], reverse=True))

    def evading(self, detector: str) -> "RequestStore":
        """Records that evaded *detector*."""

        return self.filter(lambda record: record.evaded(detector))

    def detected_by(self, detector: str) -> "RequestStore":
        """Records flagged by *detector*."""

        return self.filter(lambda record: not record.evaded(detector))

    # -- aggregate statistics -------------------------------------------------------

    def evasion_rate(self, detector: str) -> float:
        """Fraction of records that evaded *detector* (0 when empty)."""

        if not self._records:
            return 0.0
        return sum(1 for record in self._records if record.evaded(detector)) / len(self._records)

    def detection_rate(self, detector: str) -> float:
        """Fraction of records flagged by *detector* (0 when empty)."""

        if not self._records:
            return 0.0
        return 1.0 - self.evasion_rate(detector)

    def unique_values(self, attribute: Attribute) -> Dict[object, int]:
        """Histogram of grouping values of *attribute* across the store."""

        histogram: Dict[object, int] = {}
        for record in self._records:
            value = record.request.fingerprint.value_for_grouping(attribute)
            histogram[value] = histogram.get(value, 0) + 1
        return histogram

    def unique_ips(self) -> int:
        """Number of distinct source IP addresses."""

        return len({record.request.ip_address for record in self._records})

    def unique_cookies(self) -> int:
        """Number of distinct first-party cookie values."""

        return len({record.cookie for record in self._records})

    def unique_fingerprints(self) -> int:
        """Number of distinct fingerprint hashes."""

        return len({record.request.fingerprint.stable_hash() for record in self._records})

    def daily_series(self) -> Dict[int, Dict[str, int]]:
        """Per-day counts backing Figure 9.

        Returns ``{day: {"requests", "unique_ips", "unique_cookies",
        "unique_fingerprints"}}`` keyed by day index.
        """

        per_day: Dict[int, List[RecordedRequest]] = {}
        for record in self._records:
            per_day.setdefault(record.day, []).append(record)
        series: Dict[int, Dict[str, int]] = {}
        for day, records in sorted(per_day.items()):
            series[day] = {
                "requests": len(records),
                "unique_ips": len({r.request.ip_address for r in records}),
                "unique_cookies": len({r.cookie for r in records}),
                "unique_fingerprints": len(
                    {r.request.fingerprint.stable_hash() for r in records}
                ),
            }
        return series

    def group_by_cookie(self) -> Dict[str, List[RecordedRequest]]:
        """Records grouped by first-party cookie value."""

        groups: Dict[str, List[RecordedRequest]] = {}
        for record in self._records:
            groups.setdefault(record.cookie, []).append(record)
        return groups

    def group_by_ip(self) -> Dict[str, List[RecordedRequest]]:
        """Records grouped by source IP address."""

        groups: Dict[str, List[RecordedRequest]] = {}
        for record in self._records:
            groups.setdefault(record.request.ip_address, []).append(record)
        return groups

    def sorted_by_time(self) -> "RequestStore":
        """New store with records ordered by timestamp."""

        return RequestStore(sorted(self._records, key=lambda record: record.timestamp))

    def columnar(self, attributes=None):
        """Extract the store into a columnar fingerprint table.

        Returns a :class:`repro.core.columnar.ColumnarTable`: per-attribute
        code arrays plus request metadata, the layout the vectorized
        detection engine consumes.  *attributes* optionally restricts or
        reorders the extracted attribute set.
        """

        # Imported lazily: repro.core depends on this module.
        from repro.core.columnar import ColumnarTable

        return ColumnarTable.from_store(self, attributes=attributes)

    def split(
        self, fraction: float, rng
    ) -> Tuple["RequestStore", "RequestStore"]:
        """Random split into two stores of sizes ``fraction`` / ``1-fraction``."""

        first, second = split_rows(len(self._records), fraction, rng)
        return (
            RequestStore(self._records[int(i)] for i in first),
            RequestStore(self._records[int(i)] for i in second),
        )

    # -- persistence -------------------------------------------------------------------

    def save_jsonl(self, path) -> None:
        """Write the store to *path* as one JSON object per line.

        Paths ending in ``.gz`` are gzip-compressed.  The first line is a
        version header so readers can reject archives written by an
        incompatible format revision.
        """

        path = Path(path)
        with _open_text(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "format": _STORE_HEADER_MARKER,
                        "version": CORPUS_FORMAT_VERSION,
                        "count": len(self._records),
                    }
                )
                + "\n"
            )
            for record in self._records:
                handle.write(json.dumps(record.to_dict()) + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "RequestStore":
        """Load a store written by :meth:`save_jsonl`.

        Accepts gzip-compressed files (``.gz`` suffix) and tolerates legacy
        header-less files; a header from a newer format version raises
        :class:`StoreFormatError`.
        """

        path = Path(path)
        records = []
        expected: Optional[int] = None
        with _open_text(path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("format") == _STORE_HEADER_MARKER:
                    version = int(data.get("version", 0))
                    if version > CORPUS_FORMAT_VERSION:
                        raise StoreFormatError(
                            f"store {path} has format version {version}; "
                            f"this build reads up to {CORPUS_FORMAT_VERSION}"
                        )
                    expected = data.get("count")
                    continue
                records.append(RecordedRequest.from_dict(data))
        if expected is not None and expected != len(records):
            raise StoreFormatError(
                f"store {path} is truncated: header promises {expected} records, "
                f"found {len(records)}"
            )
        return cls(records)
