"""Versioned honey-site URLs.

The honey site deploys multiple versions of the same page under one domain,
differing only by an arbitrary string in the URL (Figure 1).  Each traffic
source (bot service, real-user share, privacy-browser experiment) receives
its own string, which is what gives the study its ground truth: a request
is attributed to the source whose string its URL carries, and requests
without a known string are dropped.
"""

from __future__ import annotations

import string
from typing import Dict, Optional

import numpy as np

_TOKEN_ALPHABET = string.ascii_letters + string.digits
_TOKEN_LENGTH = 10


def generate_url_token(rng: np.random.Generator, length: int = _TOKEN_LENGTH) -> str:
    """Generate one arbitrary URL string such as ``"Byxxodkxn3"``."""

    if length < 4:
        raise ValueError("URL tokens shorter than 4 characters risk collisions")
    indices = rng.integers(0, len(_TOKEN_ALPHABET), size=length)
    return "".join(_TOKEN_ALPHABET[int(index)] for index in indices)


class UrlRegistry:
    """Mapping between traffic sources and their versioned URL paths."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._path_by_source: Dict[str, str] = {}
        self._source_by_path: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._path_by_source)

    def register(self, source: str) -> str:
        """Register *source* and return its unique URL path.

        Registering the same source twice returns the same path.
        """

        if source in self._path_by_source:
            return self._path_by_source[source]
        while True:
            path = "/" + generate_url_token(self._rng)
            if path not in self._source_by_path:
                break
        self._path_by_source[source] = path
        self._source_by_path[path] = source
        return path

    def adopt(self, source: str, path: str) -> str:
        """Register *source* under a pre-generated *path*.

        The sharded corpus engine mints every source's URL token up front in
        the coordinating process, then hands each shard its ``(source,
        path)`` pair so that shard-local records and the merged registry
        agree.  Adopting an existing identical mapping is a no-op; trying to
        remap either side raises ``ValueError``.
        """

        if not path.startswith("/"):
            raise ValueError(f"URL path must start with '/', got {path!r}")
        existing_path = self._path_by_source.get(source)
        if existing_path is not None:
            if existing_path != path:
                raise ValueError(f"source {source!r} already registered at {existing_path!r}")
            return existing_path
        existing_source = self._source_by_path.get(path)
        if existing_source is not None and existing_source != source:
            raise ValueError(f"path {path!r} already owned by {existing_source!r}")
        self._path_by_source[source] = path
        self._source_by_path[path] = source
        return path

    def path_of(self, source: str) -> Optional[str]:
        """The URL path registered for *source*, or ``None``."""

        return self._path_by_source.get(source)

    def source_of(self, path: str) -> Optional[str]:
        """The traffic source owning *path*, or ``None`` for unknown paths."""

        return self._source_by_path.get(path)

    def sources(self):
        """Iterate over registered source names."""

        return iter(self._path_by_source)
