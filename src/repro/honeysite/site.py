"""The honey site.

Ties the pieces of Section 4 together: versioned URLs provide ground-truth
attribution, a first-party cookie identifies devices across requests, the
fingerprint collector validates submissions, and both anti-bot services are
consulted for every attributed request.  Requests whose URL path is unknown
are dropped (never recorded), exactly as the paper's design dictates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.antibot.base import BotDetector
from repro.antibot.botd import BotDModel
from repro.antibot.datadome import DataDomeModel
from repro.geo.geolite import GeoDatabase
from repro.honeysite.collector import FingerprintCollector
from repro.honeysite.storage import RecordedRequest, RequestStore
from repro.honeysite.urls import UrlRegistry
from repro.network.cookies import CookieIssuer
from repro.network.request import WebRequest


class HoneySite:
    """A honey site instance with versioned URLs and two anti-bot services.

    Parameters
    ----------
    geo:
        IP-intelligence database shared with the DataDome model (and the
        downstream analyses).  A fresh one is created when omitted.
    rng:
        Source of randomness for URL tokens and cookie values.
    datadome, botd:
        Detector overrides, mainly for tests; defaults build the standard
        models.
    """

    def __init__(
        self,
        *,
        geo: Optional[GeoDatabase] = None,
        rng: Optional[np.random.Generator] = None,
        datadome: Optional[BotDetector] = None,
        botd: Optional[BotDetector] = None,
    ):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.geo = geo if geo is not None else GeoDatabase()
        self.urls = UrlRegistry(np.random.default_rng(self._rng.integers(0, 2 ** 32)))
        self.cookies = CookieIssuer(np.random.default_rng(self._rng.integers(0, 2 ** 32)))
        self.collector = FingerprintCollector()
        self.store = RequestStore()
        self.datadome = datadome if datadome is not None else DataDomeModel(self.geo)
        self.botd = botd if botd is not None else BotDModel(self.geo)
        self._dropped = 0

    # -- source management ----------------------------------------------------

    def register_source(self, source: str) -> str:
        """Register a traffic source and return its versioned URL path."""

        return self.urls.register(source)

    @property
    def dropped_requests(self) -> int:
        """Requests received on unknown paths (real users / stray crawlers)."""

        return self._dropped

    # -- request handling -------------------------------------------------------

    def handle(self, request: WebRequest) -> Optional[RecordedRequest]:
        """Process one incoming request.

        Returns the stored :class:`RecordedRequest`, or ``None`` when the
        request's URL path carries no known version string (such requests
        are dropped without recording, per Section 4.1).  The cookie the
        server set (new or echoed) is available on the returned record so
        the client model can persist it.
        """

        source = self.urls.source_of(request.url_path)
        if source is None:
            self._dropped += 1
            return None

        collected = self.collector.collect(request.fingerprint)
        cookie = self.cookies.ensure(request.cookie)
        datadome_decision = self.datadome.evaluate(request)
        botd_decision = self.botd.evaluate(request)

        # Enrich the stored fingerprint with the server-side IP intelligence
        # (country, region, ASN) the analyses of Sections 5.1 and 6.2 use.
        geo_record = self.geo.lookup(request.ip_address)
        stored_request = request
        if geo_record is not None:
            enriched = collected.fingerprint.replace(
                ip_country=geo_record.country,
                ip_region=geo_record.region,
                asn=geo_record.asn,
            )
            stored_request = replace(request, fingerprint=enriched)

        record = RecordedRequest(
            request=stored_request,
            source=source,
            cookie=cookie,
            datadome=datadome_decision,
            botd=botd_decision,
        )
        self.store.add(record)
        return record
