"""The honey site.

Ties the pieces of Section 4 together: versioned URLs provide ground-truth
attribution, a first-party cookie identifies devices across requests, the
fingerprint collector validates submissions, and both anti-bot services are
consulted for every attributed request.  Requests whose URL path is unknown
are dropped (never recorded), exactly as the paper's design dictates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.antibot.base import BotDetector, Decision
from repro.antibot.botd import BotDModel
from repro.antibot.datadome import DataDomeModel
from repro.geo.asn import TOR_EXIT_ASNS
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.geo.geolite import GeoDatabase
from repro.honeysite.collector import FingerprintCollector
from repro.honeysite.storage import RecordedRequest, RequestStore
from repro.honeysite.urls import UrlRegistry
from repro.network.cookies import CookieIssuer
from repro.network.headers import build_headers
from repro.network.request import WebRequest, _next_request_id


class HoneySite:
    """A honey site instance with versioned URLs and two anti-bot services.

    Parameters
    ----------
    geo:
        IP-intelligence database shared with the DataDome model (and the
        downstream analyses).  A fresh one is created when omitted.
    rng:
        Source of randomness for URL tokens and cookie values.
    datadome, botd:
        Detector overrides, mainly for tests; defaults build the standard
        models.
    """

    def __init__(
        self,
        *,
        geo: Optional[GeoDatabase] = None,
        rng: Optional[np.random.Generator] = None,
        datadome: Optional[BotDetector] = None,
        botd: Optional[BotDetector] = None,
    ):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.geo = geo if geo is not None else GeoDatabase()
        self.urls = UrlRegistry(np.random.default_rng(self._rng.integers(0, 2 ** 32)))
        self.cookies = CookieIssuer(np.random.default_rng(self._rng.integers(0, 2 ** 32)))
        self.collector = FingerprintCollector()
        self.store = RequestStore()
        self.datadome = datadome if datadome is not None else DataDomeModel(self.geo)
        self.botd = botd if botd is not None else BotDModel(self.geo)
        self._dropped = 0

    # -- source management ----------------------------------------------------

    def register_source(self, source: str) -> str:
        """Register a traffic source and return its versioned URL path."""

        return self.urls.register(source)

    @property
    def dropped_requests(self) -> int:
        """Requests received on unknown paths (real users / stray crawlers)."""

        return self._dropped

    # -- request handling -------------------------------------------------------

    def handle(self, request: WebRequest) -> Optional[RecordedRequest]:
        """Process one incoming request.

        Returns the stored :class:`RecordedRequest`, or ``None`` when the
        request's URL path carries no known version string (such requests
        are dropped without recording, per Section 4.1).  The cookie the
        server set (new or echoed) is available on the returned record so
        the client model can persist it.
        """

        source = self.urls.source_of(request.url_path)
        if source is None:
            self._dropped += 1
            return None

        collected = self.collector.collect(request.fingerprint)
        cookie = self.cookies.ensure(request.cookie)
        datadome_decision = self.datadome.evaluate(request)
        botd_decision = self.botd.evaluate(request)

        # Enrich the stored fingerprint with the server-side IP intelligence
        # (country, region, ASN) the analyses of Sections 5.1 and 6.2 use.
        geo_record = self.geo.lookup(request.ip_address)
        stored_request = request
        if geo_record is not None:
            enriched = collected.fingerprint.replace(
                ip_country=geo_record.country,
                ip_region=geo_record.region,
                asn=geo_record.asn,
            )
            stored_request = replace(request, fingerprint=enriched)

        record = RecordedRequest(
            request=stored_request,
            source=source,
            cookie=cookie,
            datadome=datadome_decision,
            botd=botd_decision,
        )
        self.store.add(record)
        return record


class SessionMaterial:
    """Everything about one client session that is constant per request.

    A traffic-generator session keeps one (fingerprint, source address)
    configuration across a stretch of requests; every per-request quantity
    :meth:`HoneySite.handle` derives from that configuration — the enriched
    fingerprint, the synthesised headers, both detector decisions — is
    therefore computed once here and shared by all of the session's
    records.  Sharing the objects is output-invisible: records serialise by
    value, and the legacy per-request path produces equal values.
    """

    __slots__ = (
        "fingerprint",
        "values",
        "headers",
        "datadome",
        "botd",
        "ip_address",
        "codes",
        "request_proto",
        "record_proto",
        "payload_code",
    )

    def __init__(
        self,
        *,
        fingerprint: Fingerprint,
        values: Mapping[Attribute, Any],
        headers: Mapping[str, str],
        datadome: Decision,
        botd: Decision,
        ip_address: str,
    ):
        self.fingerprint = fingerprint
        #: canonical attribute values of the *stored* (enriched) fingerprint
        self.values = values
        self.headers = headers
        self.datadome = datadome
        self.botd = botd
        self.ip_address = ip_address
        #: per-attribute table codes, filled lazily by a table emitter
        self.codes: Optional[np.ndarray] = None
        #: per-session field prototypes for the two record objects, filled
        #: lazily on the session's first emit
        self.request_proto: Optional[Dict[str, Any]] = None
        self.record_proto: Optional[Dict[str, Any]] = None
        #: session index assigned by a columnar payload sink
        #: (:class:`~repro.honeysite.storage.RecordColumnsBuilder`)
        self.payload_code: Optional[int] = None


class SessionRecorder:
    """Bulk, session-cached counterpart of :meth:`HoneySite.handle`.

    The vectorized traffic generators plan sessions and timestamps first,
    then materialise records through this recorder: session-constant work
    runs once per session (:meth:`materialize` / :meth:`materialize_values`)
    and :meth:`emit` only issues the cookie, builds the two per-request
    record objects and appends to the store.  Detector decisions are
    additionally memoized across sessions on the exact signal surface the
    models read, because thousands of sessions share a handful of signal
    combinations.

    Byte-for-byte equivalence with :meth:`HoneySite.handle` for every
    emitted record is the contract (``tests/test_vectorized.py`` pins it).

    *sink* optionally redirects emission into a
    :class:`~repro.honeysite.storage.RecordColumnsBuilder`: instead of
    constructing the two frozen record objects per request and appending
    them to the site's store, :meth:`emit` appends one row of codes to the
    builder (cookie issuance still runs — it consumes the site's cookie
    stream).  The builder's columns are what shard workers ship back to
    the corpus coordinator; materialising them through
    :class:`~repro.honeysite.storage.LazyRequestStore` reproduces the
    object path byte for byte.
    """

    def __init__(self, site: HoneySite, *, sink=None):
        self._site = site
        self._sink = sink
        self._decisions: Dict[Tuple, Tuple[Decision, Decision]] = {}
        self._headers: Dict[Tuple, Mapping[str, str]] = {}
        #: /16-prefix string → GeoRecord (or None): every address of a
        #: prefix shares its country/region/ASN facts, so one lookup per
        #: block replaces one per session
        self._geo_facts: Dict[str, Any] = {}

    # -- session-constant work -------------------------------------------------

    def materialize_values(
        self, values: Mapping[Attribute, Any], ip_address: str
    ) -> SessionMaterial:
        """Materialise a session from a canonical attribute dict.

        *values* must already be coerced (the vectorized bot planner builds
        it from the coerced template plus strategy changes) and in the
        attribute order the legacy constructor would produce — serialised
        fingerprints preserve insertion order.
        """

        # All facts the recorder needs (country, region, ASN, datacenter
        # membership) are per-/16-block properties, so the lookup result is
        # shared across every session inside one block.
        second_dot = ip_address.find(".", ip_address.find(".") + 1)
        prefix = ip_address[:second_dot]
        try:
            geo_record = self._geo_facts[prefix]
        except KeyError:
            geo_record = self._site.geo.lookup(ip_address)
            self._geo_facts[prefix] = geo_record
        if geo_record is not None:
            stored_values: Dict[Attribute, Any] = dict(values)
            # Appended in the exact keyword order HoneySite.handle's
            # enrichment replace() uses, so serialised key order matches.
            stored_values[Attribute.IP_COUNTRY] = str(geo_record.country)
            stored_values[Attribute.IP_REGION] = str(geo_record.region)
            stored_values[Attribute.ASN] = int(geo_record.asn)
        else:
            stored_values = dict(values)
        fingerprint = Fingerprint._from_coerced(stored_values)
        # Headers depend only on the User-Agent and the language list; the
        # shared dict is never mutated and records serialise it by value.
        headers_key = (
            stored_values.get(Attribute.USER_AGENT),
            stored_values.get(Attribute.LANGUAGES),
        )
        headers = self._headers.get(headers_key)
        if headers is None:
            headers = build_headers(fingerprint)
            self._headers[headers_key] = headers
        datadome, botd = self._decisions_for(fingerprint, headers, ip_address, geo_record)
        return SessionMaterial(
            fingerprint=fingerprint,
            values=stored_values,
            headers=headers,
            datadome=datadome,
            botd=botd,
            ip_address=ip_address,
        )

    def materialize(self, fingerprint: Fingerprint, ip_address: str) -> SessionMaterial:
        """Materialise a session from an existing :class:`Fingerprint`."""

        return self.materialize_values(fingerprint._values, ip_address)

    def _decisions_for(
        self, fingerprint: Fingerprint, headers, ip_address: str, geo_record
    ) -> Tuple[Decision, Decision]:
        values = fingerprint._values
        # Key on the *normalised* signal surface the models read — presence
        # of plugins rather than the exact plugin tuple, the touch boolean
        # rather than the raw string, Tor/datacenter membership rather than
        # the ASN — so thousands of sessions collapse onto a handful of
        # cache entries.  Anything the models distinguish, the key
        # distinguishes; the memoized decisions are therefore exact.
        touch = values.get(Attribute.TOUCH_SUPPORT)
        languages = values.get(Attribute.LANGUAGES)
        cores = values.get(Attribute.HARDWARE_CONCURRENCY)
        frame = values.get(Attribute.SCREEN_FRAME)
        key = (
            values.get(Attribute.USER_AGENT),
            bool(values.get(Attribute.WEBDRIVER, False)),
            bool(values.get(Attribute.FORCED_COLORS, False)),
            not languages,
            bool(values.get(Attribute.PLUGINS) or ()),
            touch is not None and str(touch) not in ("", "None"),
            None if cores is None else int(cores),
            None if frame is None else int(frame),
            geo_record is not None and geo_record.asn in TOR_EXIT_ASNS,
            geo_record is not None and geo_record.is_datacenter,
            geo_record is None,
        )
        cached = self._decisions.get(key)
        if cached is None:
            probe = WebRequest(
                url_path="/",
                timestamp=0.0,
                ip_address=ip_address,
                fingerprint=fingerprint,
                headers=headers,
            )
            cached = (self._site.datadome.evaluate(probe), self._site.botd.evaluate(probe))
            self._decisions[key] = cached
        return cached

    # -- per-request work --------------------------------------------------------

    def emit(
        self,
        material: SessionMaterial,
        *,
        url_path: str,
        source: str,
        timestamp: float,
        presented_cookie: Optional[str],
    ) -> str:
        """Record one request of a session; returns the served cookie."""

        site = self._site
        cookie = site.cookies.ensure(presented_cookie)
        sink = self._sink
        if sink is not None:
            sink.append(
                material,
                url_path=url_path,
                source=source,
                timestamp=timestamp,
                presented=presented_cookie,
                served=cookie,
            )
            return cookie
        # Construct both frozen records directly from per-session field
        # prototypes: the generator guarantees the invariants __post_init__
        # would re-check (the url path is a registered "/..."-path,
        # timestamps are non-negative by construction), and the dataclass
        # __init__ of a frozen class pays one guarded object.__setattr__
        # per field per request.
        request_proto = material.request_proto
        if request_proto is None:
            request_proto = material.request_proto = {
                "url_path": url_path,
                "timestamp": 0.0,
                "ip_address": material.ip_address,
                "fingerprint": material.fingerprint,
                "cookie": None,
                "headers": material.headers,
                "request_id": 0,
            }
            material.record_proto = {
                "request": None,
                "source": source,
                "cookie": "",
                "datadome": material.datadome,
                "botd": material.botd,
            }
        fields = dict(request_proto)
        fields["timestamp"] = timestamp
        fields["cookie"] = presented_cookie
        fields["request_id"] = _next_request_id()
        request = WebRequest.__new__(WebRequest)
        object.__setattr__(request, "__dict__", fields)
        fields = dict(material.record_proto)
        fields["request"] = request
        fields["cookie"] = cookie
        record = RecordedRequest.__new__(RecordedRequest)
        object.__setattr__(record, "__dict__", fields)
        site.store.add(record)
        return cookie
