"""Deterministic seeding helpers shared by the traffic generators.

The sharded corpus engine derives one ``numpy.random.SeedSequence`` per
traffic shard via ``SeedSequence.spawn`` and hands it to the generator
running inside the worker.  Spawned sequences are reproducible functions of
the master seed and the spawn index alone, which is what makes corpus
output independent of worker count or scheduling order.
"""

from __future__ import annotations

import numpy as np


def derive_rng(seed) -> np.random.Generator:
    """Build a generator from a seed, ``SeedSequence`` or existing generator.

    Accepts anything ``numpy.random.default_rng`` accepts, plus an already
    constructed ``Generator`` (returned unchanged), so call sites can take
    one ``rng`` argument serving both the legacy API (generator instances)
    and the sharded engine (spawned ``SeedSequence`` objects).
    """

    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed, count: int) -> list:
    """Spawn *count* independent child ``SeedSequence`` objects from *seed*.

    *seed* may be an integer or an existing ``SeedSequence``.
    """

    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return seed.spawn(count)
