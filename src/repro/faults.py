"""Deterministic fault injection for the execution layer.

A production detection pipeline must degrade gracefully — a crashed shard
process, a worker exception mid-batch, a failed background re-mine or a
truncated archive write must never take the run down or corrupt its
output.  The only way to trust those recovery paths is to exercise them
systematically, so this module gives every resilient layer a **named
fault point** and a **seeded plan** that decides, deterministically,
which invocations of each point fail and how.

A plan is configured through ``REPRO_FAULTS`` as comma-separated
``point:mode:probability`` rules::

    REPRO_FAULTS="shard_run:raise:0.1,refresh_mine:raise:1,checkpoint_write:truncate:0.5"

* **point** — one of :data:`FAULT_POINTS`; each call site documents its
  own key scheme (shard index + attempt, batch + worker + attempt, …).
* **mode** — ``raise`` (raise :class:`InjectedFault`), ``kill``
  (``os._exit`` the worker process — only honoured where the call site
  marks a kill as survivable, i.e. inside a process-pool worker;
  elsewhere it downgrades to ``raise``) or ``truncate`` (truncate the
  file being written, then raise — the "crashed mid-write" model).
* **probability** — per-invocation trigger chance in ``[0, 1]``.

Every decision is a pure function of ``(seed, point, key)``: the seed
comes from ``REPRO_FAULTS_SEED`` (default 0) and the key from the call
site, which includes the attempt number — so a retried operation draws a
fresh decision, a re-run of the same configuration fails in exactly the
same places, and the decision is identical no matter which worker
process or thread evaluates it.

When ``REPRO_FAULTS`` is unset, :func:`check` is a single dictionary
lookup returning immediately — the fault machinery costs nothing on the
production path.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment variable holding the fault plan (unset → no injection).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable seeding the plan's deterministic draws (default 0).
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: The registered fault points (see ``docs/robustness.md`` for the map of
#: call sites and key schemes).
FAULT_POINTS = (
    "shard_run",        # analysis.engine.map_shards worker execution
    "worker_classify",  # serve.gateway per-worker batch scoring
    "refresh_mine",     # stream.refresh mining (gateway background/sync)
    "checkpoint_write", # stream.checkpoint snapshot writes
    "cache_write",      # analysis.cache columnar-archive writes
)

#: Supported failure modes.
FAULT_MODES = ("raise", "kill", "truncate")

#: Exit status used by ``kill``-mode faults, so a dead worker is
#: attributable in process listings and core-dump-free.
KILL_EXIT_STATUS = 73


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


class FaultPlanError(ValueError):
    """``REPRO_FAULTS`` (or an explicit spec) could not be parsed."""


@dataclass(frozen=True)
class FaultRule:
    """One ``point:mode:probability`` entry of a plan."""

    point: str
    mode: str
    probability: float


def _uniform(seed: int, point: str, key: str) -> float:
    """A deterministic draw in ``[0, 1)`` from ``(seed, point, key)``."""

    digest = hashlib.sha256(f"{seed}|{point}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """A parsed, seeded set of fault rules (at most one per point)."""

    def __init__(self, rules: Tuple[FaultRule, ...], *, seed: int = 0):
        by_point = {}
        for rule in rules:
            if rule.point in by_point:
                raise FaultPlanError(f"duplicate fault point {rule.point!r}")
            by_point[rule.point] = rule
        self._rules = by_point
        self.seed = int(seed)

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse a ``point:mode:probability[,...]`` spec string."""

        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise FaultPlanError(
                    f"fault rule {part!r} is not of the form point:mode:probability"
                )
            point, mode, raw_probability = (piece.strip() for piece in pieces)
            if point not in FAULT_POINTS:
                raise FaultPlanError(
                    f"unknown fault point {point!r}; registered points: {FAULT_POINTS}"
                )
            if mode not in FAULT_MODES:
                raise FaultPlanError(
                    f"unknown fault mode {mode!r}; supported modes: {FAULT_MODES}"
                )
            try:
                probability = float(raw_probability)
            except ValueError as exc:
                raise FaultPlanError(
                    f"fault probability {raw_probability!r} is not a number"
                ) from exc
            if not 0.0 <= probability <= 1.0:
                raise FaultPlanError(
                    f"fault probability must be in [0, 1], got {probability}"
                )
            rules.append(FaultRule(point=point, mode=mode, probability=probability))
        return cls(tuple(rules), seed=seed)

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return tuple(self._rules.values())

    def decide(self, point: str, key: str) -> Optional[FaultRule]:
        """The rule that fires for this ``(point, key)``, or ``None``.

        Pure: the same plan, point and key always decide the same way,
        in any process.
        """

        rule = self._rules.get(point)
        if rule is None:
            return None
        if rule.probability >= 1.0 or _uniform(self.seed, point, key) < rule.probability:
            return rule
        return None

    def check(self, point: str, key: str, *, path=None, allow_kill: bool = False) -> None:
        """Fire the configured fault for ``(point, key)``, if any.

        ``path`` names the file a ``truncate`` fault mutilates (required
        for that mode to have its mid-write-crash effect; without one it
        degrades to ``raise``).  ``allow_kill`` marks the calling context
        as surviving a process kill (a process-pool worker); elsewhere
        ``kill`` downgrades to ``raise`` so a fault never takes down the
        coordinator itself.
        """

        rule = self.decide(point, key)
        if rule is None:
            return
        if rule.mode == "kill" and allow_kill:
            os._exit(KILL_EXIT_STATUS)
        if rule.mode == "truncate" and path is not None:
            _truncate_file(path)
        raise InjectedFault(f"injected {rule.mode} fault at {point} ({key})")


def _truncate_file(path) -> None:
    """Cut the file at *path* to half its size — a torn, mid-crash write."""

    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    except OSError:
        pass  # the fault still raises; a missing file is already "torn"


# -- the process-wide active plan -------------------------------------------------

_cache_key: Optional[Tuple[str, str]] = None
_cache_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan configured through ``REPRO_FAULTS``, or ``None``.

    Parsed once per distinct ``(REPRO_FAULTS, REPRO_FAULTS_SEED)`` value,
    so tests can flip the environment between cases and workers forked
    with the environment inherit the exact coordinator plan.
    """

    raw = os.environ.get(FAULTS_ENV_VAR)
    if not raw:
        return None
    raw_seed = os.environ.get(FAULTS_SEED_ENV_VAR, "0")
    global _cache_key, _cache_plan
    if _cache_key != (raw, raw_seed):
        try:
            seed = int(raw_seed or "0")
        except ValueError as exc:
            raise FaultPlanError(
                f"{FAULTS_SEED_ENV_VAR} must be an integer, got {raw_seed!r}"
            ) from exc
        _cache_plan = FaultPlan.parse(raw, seed=seed)
        _cache_key = (raw, raw_seed)
    return _cache_plan


def check(point: str, key: str, *, path=None, allow_kill: bool = False) -> None:
    """Fire the active plan's fault for ``(point, key)``, if any.

    The call sites' one-line entry point: a no-op returning after one
    environment lookup when no plan is configured.
    """

    plan = active_plan()
    if plan is not None:
        plan.check(point, key, path=path, allow_kill=allow_kill)
