"""Real-world screen geometry knowledge.

Section 6.1 of the paper keys on the fact that iPhones ship with a fixed,
small set of screen resolutions (12 at the time of the study, citing the
iOS Ref catalogue) and that 9 of the top-10 "iPhone" resolutions observed
from evasive bots do not exist in the real world.  This module records the
real resolution sets per device family and exposes validity checks used by
both the device knowledge base and the Figure 7 analysis.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

Resolution = Tuple[int, int]

#: Logical (CSS-pixel) portrait resolutions of real iPhones — the "fixed set
#: of 12 resolutions" referenced in Section 6.1.
IPHONE_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (320, 480),   # iPhone 4 family
        (320, 568),   # iPhone 5 / SE (1st gen)
        (375, 667),   # iPhone 6/7/8 / SE (2nd, 3rd gen)
        (375, 812),   # iPhone X / XS / 11 Pro / 13 mini
        (360, 780),   # iPhone 12 mini
        (390, 844),   # iPhone 12 / 13 / 14
        (393, 852),   # iPhone 14 Pro / 15
        (414, 736),   # iPhone 6/7/8 Plus
        (414, 896),   # iPhone XR / XS Max / 11
        (428, 926),   # iPhone 12/13 Pro Max / 14 Plus
        (430, 932),   # iPhone 14 Pro Max / 15 Plus
        (402, 874),   # iPhone 16 Pro class
    }
)

#: Logical portrait resolutions of real iPads.
IPAD_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (768, 1024),
        (744, 1133),
        (810, 1080),
        (820, 1180),
        (834, 1112),
        (834, 1194),
        (954, 1373),  # iPad Pro 11" (M4)
        (1024, 1366),
    }
)

#: Common Mac display logical resolutions (scaled retina "looks-like" sizes
#: plus common external monitors).
MAC_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (1280, 800),
        (1440, 900),
        (1512, 982),
        (1536, 960),
        (1680, 1050),
        (1728, 1117),
        (1792, 1120),
        (1920, 1080),
        (1920, 1200),
        (2560, 1440),
        (2560, 1600),
        (3008, 1692),
        (3440, 1440),
        (3840, 2160),
    }
)

#: Common Windows / Linux desktop and laptop resolutions (including the 3:2
#: Surface line).
DESKTOP_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (1280, 720),
        (1280, 800),
        (1280, 853),
        (1280, 1024),
        (1368, 912),
        (1920, 1280),
        (1366, 768),
        (1440, 900),
        (1536, 864),
        (1600, 900),
        (1680, 1050),
        (1920, 1080),
        (1920, 1200),
        (2560, 1080),
        (2560, 1440),
        (3440, 1440),
        (3840, 2160),
    }
)

#: Common Android phone logical resolutions (portrait).
ANDROID_PHONE_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (320, 640),
        (320, 693),
        (360, 640),
        (360, 740),
        (360, 760),
        (360, 780),
        (360, 800),
        (384, 832),
        (393, 786),
        (393, 851),
        (411, 731),
        (411, 823),
        (412, 883),
        (412, 892),
        (412, 915),
        (414, 896),
        (480, 854),
    }
)

#: Common Android tablet logical resolutions (portrait).
ANDROID_TABLET_RESOLUTIONS: FrozenSet[Resolution] = frozenset(
    {
        (600, 960),
        (602, 962),
        (712, 1138),
        (753, 1205),
        (768, 1024),
        (800, 1280),
        (962, 601),
        (1280, 800),
    }
)


def _normalise(resolution: Resolution) -> Resolution:
    """Return the portrait orientation of *resolution* (shorter side first)."""

    width, height = resolution
    return (width, height) if width <= height else (height, width)


def is_real_iphone_resolution(resolution: Resolution) -> bool:
    """``True`` when *resolution* (either orientation) exists on a real iPhone."""

    return _normalise(resolution) in IPHONE_RESOLUTIONS


def is_real_ipad_resolution(resolution: Resolution) -> bool:
    """``True`` when *resolution* (either orientation) exists on a real iPad."""

    return _normalise(resolution) in IPAD_RESOLUTIONS


def is_real_resolution_for_device(ua_device: str, resolution: Resolution) -> Optional[bool]:
    """Whether *resolution* is plausible for the device family *ua_device*.

    Returns ``None`` when the library has no authoritative resolution list
    for the device family (Android models are too numerous to enumerate, so
    only a plausibility band is applied there); the spatial miner treats
    ``None`` as "unknown — do not flag".
    """

    normalised = _normalise(resolution)
    if ua_device == "iPhone":
        return normalised in IPHONE_RESOLUTIONS
    if ua_device == "iPad":
        return normalised in IPAD_RESOLUTIONS
    if ua_device == "Mac":
        return resolution in MAC_RESOLUTIONS or normalised in MAC_RESOLUTIONS
    if ua_device in ("Windows PC", "Linux PC", "Chromebook"):
        return resolution in DESKTOP_RESOLUTIONS or normalised in DESKTOP_RESOLUTIONS
    width, height = normalised
    if width <= 0 or height <= 0:
        return False
    # Android phones/tablets: accept anything inside a generous plausibility
    # band (portrait logical widths up to ~1000 CSS px exist on tablets);
    # reject desktop-like geometries reported by "phones".
    if width < 300 or width > 1000:
        return False
    return None
