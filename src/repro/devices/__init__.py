"""Catalogue of real hardware/software configurations."""

from repro.devices.catalog import DeviceCatalog, build_default_catalog
from repro.devices.profiles import (
    CHROMIUM_PDF_PLUGINS,
    DeviceProfile,
    TOUCH_EVENTS,
    TOUCH_NONE,
)
from repro.devices.screens import (
    ANDROID_PHONE_RESOLUTIONS,
    ANDROID_TABLET_RESOLUTIONS,
    DESKTOP_RESOLUTIONS,
    IPAD_RESOLUTIONS,
    IPHONE_RESOLUTIONS,
    MAC_RESOLUTIONS,
    is_real_ipad_resolution,
    is_real_iphone_resolution,
    is_real_resolution_for_device,
)

__all__ = [
    "ANDROID_PHONE_RESOLUTIONS",
    "ANDROID_TABLET_RESOLUTIONS",
    "CHROMIUM_PDF_PLUGINS",
    "DESKTOP_RESOLUTIONS",
    "DeviceCatalog",
    "DeviceProfile",
    "IPAD_RESOLUTIONS",
    "IPHONE_RESOLUTIONS",
    "MAC_RESOLUTIONS",
    "TOUCH_EVENTS",
    "TOUCH_NONE",
    "build_default_catalog",
    "is_real_ipad_resolution",
    "is_real_iphone_resolution",
    "is_real_resolution_for_device",
]
