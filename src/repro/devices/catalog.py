"""Catalogue of real device configurations.

The catalogue is the library's model of the *limited* hardware/software
configuration space that real devices occupy (the central premise of
FP-Inconsistent, Section 7.1).  Profiles cover the device families that
appear in the paper's dataset: iPhones, iPads, Macs, Windows PCs, Linux
desktops and a selection of Android phones and tablets named in Table 6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.profiles import (
    CHROMIUM_PDF_PLUGINS,
    DeviceProfile,
    TOUCH_EVENTS,
    TOUCH_NONE,
)

_APPLE_VENDOR = "Apple Computer, Inc."
_GOOGLE_VENDOR = "Google Inc."
_EMPTY_VENDOR = ""

_IPHONE_RESOLUTIONS: Tuple[Tuple[int, int], ...] = (
    (390, 844),
    (393, 852),
    (375, 812),
    (414, 896),
    (428, 926),
    (430, 932),
    (375, 667),
    (320, 568),
)

_IPAD_RESOLUTIONS: Tuple[Tuple[int, int], ...] = (
    (768, 1024),
    (810, 1080),
    (820, 1180),
    (834, 1194),
    (1024, 1366),
)


def _iphone(name: str, os_version: str, resolutions: Sequence[Tuple[int, int]], weight: float) -> DeviceProfile:
    return DeviceProfile(
        name=name,
        ua_device="iPhone",
        ua_os="iOS",
        ua_browser="Mobile Safari",
        platform="iPhone",
        vendor=_APPLE_VENDOR,
        vendor_flavors=("safari",),
        screen_resolutions=tuple(resolutions),
        color_depth=32,
        color_gamut="p3",
        max_touch_points=5,
        touch_support=TOUCH_EVENTS,
        hardware_concurrency_options=(4, 6),
        device_memory_options=(4.0,),
        plugins=(),
        product_sub="20030107",
        os_version=os_version,
        weight=weight,
        languages_options=(("en-US", "en"), ("fr-FR", "fr"), ("es-MX", "es")),
    )


def _ipad(name: str, os_version: str, resolutions: Sequence[Tuple[int, int]], weight: float) -> DeviceProfile:
    return DeviceProfile(
        name=name,
        ua_device="iPad",
        ua_os="iOS",
        ua_browser="Mobile Safari",
        platform="iPad",
        vendor=_APPLE_VENDOR,
        vendor_flavors=("safari",),
        screen_resolutions=tuple(resolutions),
        color_depth=32,
        color_gamut="p3",
        max_touch_points=5,
        touch_support=TOUCH_EVENTS,
        hardware_concurrency_options=(4, 8),
        device_memory_options=(4.0, 8.0),
        plugins=(),
        product_sub="20030107",
        os_version=os_version,
        weight=weight,
    )


def _android_phone(
    name: str,
    model: str,
    browser: str,
    resolutions: Sequence[Tuple[int, int]],
    cores: Sequence[int],
    memory: Sequence[float],
    weight: float,
    platform: str = "Linux armv8l",
) -> DeviceProfile:
    vendor = _GOOGLE_VENDOR if browser in ("Chrome Mobile", "Samsung Internet", "MiuiBrowser") else _EMPTY_VENDOR
    return DeviceProfile(
        name=name,
        ua_device=model,
        ua_os="Android",
        ua_browser=browser,
        platform=platform,
        vendor=vendor,
        vendor_flavors=("chrome",) if vendor == _GOOGLE_VENDOR else (),
        screen_resolutions=tuple(resolutions),
        color_depth=24,
        color_gamut="srgb",
        max_touch_points=5,
        touch_support=TOUCH_EVENTS,
        hardware_concurrency_options=tuple(cores),
        device_memory_options=tuple(memory),
        plugins=(),
        product_sub="20030107",
        os_version="13",
        model=model,
        weight=weight,
    )


def build_default_catalog() -> Tuple[DeviceProfile, ...]:
    """Build the default catalogue of real device profiles."""

    profiles: List[DeviceProfile] = []

    # ------------------------------------------------------------------ iOS
    profiles.append(_iphone("iphone-14", "16_6", _IPHONE_RESOLUTIONS[:6], weight=5.0))
    profiles.append(_iphone("iphone-se", "15_7", ((375, 667), (320, 568)), weight=1.5))
    profiles.append(_ipad("ipad-air", "16_6", _IPAD_RESOLUTIONS[:4], weight=2.0))
    profiles.append(_ipad("ipad-pro-12", "16_6", ((1024, 1366),), weight=1.0))

    # ------------------------------------------------------------------ Mac
    profiles.append(
        DeviceProfile(
            name="macbook-pro-safari",
            ua_device="Mac",
            ua_os="Mac OS X",
            ua_browser="Safari",
            platform="MacIntel",
            vendor=_APPLE_VENDOR,
            vendor_flavors=("safari",),
            screen_resolutions=((1512, 982), (1728, 1117), (1440, 900), (2560, 1440)),
            color_depth=30,
            color_gamut="p3",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(8, 10, 12),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            os_version="10_15_7",
            weight=3.0,
        )
    )
    profiles.append(
        DeviceProfile(
            name="macbook-pro-chrome",
            ua_device="Mac",
            ua_os="Mac OS X",
            ua_browser="Chrome",
            platform="MacIntel",
            vendor=_GOOGLE_VENDOR,
            vendor_flavors=("chrome",),
            screen_resolutions=((1512, 982), (1728, 1117), (1680, 1050), (2560, 1600), (1920, 1080)),
            color_depth=30,
            color_gamut="p3",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(8, 10, 12),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            os_version="10_15_7",
            weight=3.0,
        )
    )

    # ------------------------------------------------------------------ Windows
    profiles.append(
        DeviceProfile(
            name="windows-desktop-chrome",
            ua_device="Windows PC",
            ua_os="Windows",
            ua_browser="Chrome",
            platform="Win32",
            vendor=_GOOGLE_VENDOR,
            vendor_flavors=("chrome",),
            screen_resolutions=((1920, 1080), (1366, 768), (2560, 1440), (1536, 864), (1600, 900)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(4, 6, 8, 12, 16),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            weight=6.0,
        )
    )
    profiles.append(
        DeviceProfile(
            name="windows-laptop-edge",
            ua_device="Windows PC",
            ua_os="Windows",
            ua_browser="Edge",
            platform="Win32",
            vendor=_GOOGLE_VENDOR,
            vendor_flavors=("chrome", "edge"),
            screen_resolutions=((1920, 1080), (1366, 768), (1536, 864)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(4, 8, 12),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            weight=2.0,
        )
    )
    profiles.append(
        DeviceProfile(
            name="windows-desktop-firefox",
            ua_device="Windows PC",
            ua_os="Windows",
            ua_browser="Firefox",
            platform="Win32",
            vendor=_EMPTY_VENDOR,
            vendor_flavors=(),
            screen_resolutions=((1920, 1080), (2560, 1440), (1366, 768)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(4, 8, 16),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20100101",
            weight=1.5,
        )
    )
    profiles.append(
        DeviceProfile(
            name="surface-touch-chrome",
            ua_device="Windows PC",
            ua_os="Windows",
            ua_browser="Chrome",
            platform="Win32",
            vendor=_GOOGLE_VENDOR,
            vendor_flavors=("chrome",),
            screen_resolutions=((1280, 853), (1368, 912), (1920, 1280)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=10,
            touch_support=TOUCH_EVENTS,
            hardware_concurrency_options=(4, 8),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            weight=0.5,
        )
    )

    # ------------------------------------------------------------------ Linux
    profiles.append(
        DeviceProfile(
            name="linux-desktop-chrome",
            ua_device="Linux PC",
            ua_os="Linux",
            ua_browser="Chrome",
            platform="Linux x86_64",
            vendor=_GOOGLE_VENDOR,
            vendor_flavors=("chrome",),
            screen_resolutions=((1920, 1080), (2560, 1440), (1680, 1050)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(4, 8, 12, 16),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20030107",
            weight=1.0,
        )
    )
    profiles.append(
        DeviceProfile(
            name="linux-desktop-firefox",
            ua_device="Linux PC",
            ua_os="Linux",
            ua_browser="Firefox",
            platform="Linux x86_64",
            vendor=_EMPTY_VENDOR,
            vendor_flavors=(),
            screen_resolutions=((1920, 1080), (2560, 1440)),
            color_depth=24,
            color_gamut="srgb",
            max_touch_points=0,
            touch_support=TOUCH_NONE,
            hardware_concurrency_options=(4, 8, 16),
            device_memory_options=(8.0,),
            plugins=CHROMIUM_PDF_PLUGINS,
            product_sub="20100101",
            weight=0.5,
        )
    )

    # ------------------------------------------------------------------ Android
    profiles.append(
        _android_phone(
            "pixel-7",
            "Pixel 7",
            "Chrome Mobile",
            ((412, 915),),
            cores=(8,),
            memory=(8.0,),
            weight=2.0,
        )
    )
    profiles.append(
        _android_phone(
            "samsung-s906n",
            "SM-S906N",
            "Samsung Internet",
            ((360, 780),),
            cores=(8,),
            memory=(8.0,),
            weight=2.0,
        )
    )
    profiles.append(
        _android_phone(
            "samsung-a515f",
            "SM-A515F",
            "Chrome Mobile",
            ((412, 892),),
            cores=(8,),
            memory=(4.0,),
            weight=2.0,
        )
    )
    profiles.append(
        _android_phone(
            "samsung-a127f",
            "SM-A127F",
            "Chrome Mobile",
            ((412, 915),),
            cores=(8,),
            memory=(4.0,),
            weight=1.0,
        )
    )
    profiles.append(
        _android_phone(
            "redmi-9c",
            "M2006C3MG",
            "MiuiBrowser",
            ((360, 800),),
            cores=(8,),
            memory=(2.0,),
            weight=1.0,
            platform="Linux armv7l",
        )
    )
    profiles.append(
        _android_phone(
            "redmi-note-9",
            "M2004J19C",
            "Chrome Mobile",
            ((393, 851),),
            cores=(8,),
            memory=(4.0,),
            weight=1.0,
        )
    )
    profiles.append(
        _android_phone(
            "infinix-x652b",
            "Infinix X652B",
            "Chrome Mobile",
            ((393, 851),),
            cores=(8,),
            memory=(4.0,),
            weight=0.5,
        )
    )
    profiles.append(
        _android_phone(
            "galaxy-tab-s7",
            "SM-T875",
            "Samsung Internet",
            ((753, 1205), (800, 1280)),
            cores=(8,),
            memory=(4.0, 8.0),
            weight=0.5,
        )
    )
    return tuple(profiles)


class DeviceCatalog:
    """Queryable collection of real device profiles."""

    def __init__(self, profiles: Optional[Iterable[DeviceProfile]] = None):
        self._profiles: Tuple[DeviceProfile, ...] = (
            tuple(profiles) if profiles is not None else build_default_catalog()
        )
        if not self._profiles:
            raise ValueError("device catalogue cannot be empty")
        self._by_name: Dict[str, DeviceProfile] = {p.name: p for p in self._profiles}
        if len(self._by_name) != len(self._profiles):
            raise ValueError("device profile names must be unique")

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles)

    @property
    def profiles(self) -> Tuple[DeviceProfile, ...]:
        return self._profiles

    def get(self, name: str) -> DeviceProfile:
        """Return the profile called *name*.

        Raises
        ------
        KeyError
            If no profile with that name exists.
        """

        return self._by_name[name]

    def by_device(self, ua_device: str) -> Tuple[DeviceProfile, ...]:
        """Return every profile whose UA device family equals *ua_device*."""

        return tuple(p for p in self._profiles if p.ua_device == ua_device)

    def mobile_profiles(self) -> Tuple[DeviceProfile, ...]:
        return tuple(p for p in self._profiles if p.is_mobile)

    def desktop_profiles(self) -> Tuple[DeviceProfile, ...]:
        return tuple(p for p in self._profiles if not p.is_mobile)

    def sample(self, rng: np.random.Generator) -> DeviceProfile:
        """Sample a profile proportionally to its market-share weight."""

        weights = np.array([p.weight for p in self._profiles], dtype=float)
        weights /= weights.sum()
        index = int(rng.choice(len(self._profiles), p=weights))
        return self._profiles[index]

    def sample_fingerprint(
        self,
        rng: np.random.Generator,
        *,
        timezone: str = "America/Los_Angeles",
    ):
        """Sample a profile and build one of its consistent fingerprints."""

        profile = self.sample(rng)
        resolution = profile.screen_resolutions[int(rng.integers(len(profile.screen_resolutions)))]
        cores = profile.hardware_concurrency_options[
            int(rng.integers(len(profile.hardware_concurrency_options)))
        ]
        memory = profile.device_memory_options[
            int(rng.integers(len(profile.device_memory_options)))
        ]
        languages = profile.languages_options[int(rng.integers(len(profile.languages_options)))]
        return profile, profile.fingerprint(
            screen_resolution=resolution,
            hardware_concurrency=cores,
            device_memory=memory,
            timezone=timezone,
            languages=languages,
        )
