"""Timezone ↔ UTC-offset ↔ region knowledge.

Section 6.2 of the paper compares the location implied by a request's IP
address against the location implied by the browser's timezone, using a
conservative "same UTC offset" match.  This module records, for the regions
used in the study (and a few extra), the IANA timezones observed there and
the UTC offsets each of those zones can take, and exposes the conservative
matching predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class TimezoneInfo:
    """An IANA timezone with the UTC offsets (minutes) it can exhibit."""

    name: str
    offsets_minutes: Tuple[int, ...]
    country: str

    @property
    def canonical_offset(self) -> int:
        """The standard-time offset (the first registered offset)."""

        return self.offsets_minutes[0]


_TZ = TimezoneInfo

#: Registry of IANA timezones used by the traffic generators and analyses.
TIMEZONES: Dict[str, TimezoneInfo] = {
    tz.name: tz
    for tz in (
        _TZ("America/Los_Angeles", (-480, -420), "United States of America"),
        _TZ("America/Denver", (-420, -360), "United States of America"),
        _TZ("America/Chicago", (-360, -300), "United States of America"),
        _TZ("America/New_York", (-300, -240), "United States of America"),
        _TZ("America/Phoenix", (-420,), "United States of America"),
        _TZ("America/Toronto", (-300, -240), "Canada"),
        _TZ("America/Vancouver", (-480, -420), "Canada"),
        _TZ("America/Winnipeg", (-360, -300), "Canada"),
        _TZ("America/Halifax", (-240, -180), "Canada"),
        _TZ("America/Mexico_City", (-360,), "Mexico"),
        _TZ("America/Sao_Paulo", (-180,), "Brazil"),
        _TZ("Europe/London", (0, 60), "United Kingdom"),
        _TZ("Europe/Paris", (60, 120), "France"),
        _TZ("Europe/Berlin", (60, 120), "Germany"),
        _TZ("Europe/Madrid", (60, 120), "Spain"),
        _TZ("Europe/Rome", (60, 120), "Italy"),
        _TZ("Europe/Amsterdam", (60, 120), "Netherlands"),
        _TZ("Europe/Warsaw", (60, 120), "Poland"),
        _TZ("Europe/Kyiv", (120, 180), "Ukraine"),
        _TZ("Europe/Moscow", (180,), "Russia"),
        _TZ("Asia/Shanghai", (480,), "China"),
        _TZ("Asia/Singapore", (480,), "Singapore"),
        _TZ("Asia/Tokyo", (540,), "Japan"),
        _TZ("Asia/Kolkata", (330,), "India"),
        _TZ("Asia/Karachi", (300,), "Pakistan"),
        _TZ("Asia/Dubai", (240,), "United Arab Emirates"),
        _TZ("Australia/Sydney", (600, 660), "Australia"),
        _TZ("Pacific/Auckland", (720, 780), "New Zealand"),
        # Tor Browser standardises the reported zone to UTC; no country.
        _TZ("UTC", (0,), ""),
    )
}

#: Countries → the IANA timezones observed in that country (derived view).
COUNTRY_TIMEZONES: Dict[str, Tuple[str, ...]] = {}
for _tz_info in TIMEZONES.values():
    COUNTRY_TIMEZONES.setdefault(_tz_info.country, ())
    COUNTRY_TIMEZONES[_tz_info.country] = COUNTRY_TIMEZONES[_tz_info.country] + (_tz_info.name,)

#: Coarse advertised regions used by bot services (Section 6.2) → countries.
ADVERTISED_REGIONS: Dict[str, FrozenSet[str]] = {
    "United States": frozenset({"United States of America"}),
    "Canada": frozenset({"Canada"}),
    "France": frozenset({"France"}),
    "Europe": frozenset(
        {
            "United Kingdom",
            "France",
            "Germany",
            "Spain",
            "Italy",
            "Netherlands",
            "Poland",
            "Ukraine",
        }
    ),
    "Mexico": frozenset({"Mexico"}),
    "Asia": frozenset({"China", "Singapore", "Japan", "India", "Pakistan", "United Arab Emirates"}),
}


def timezone_info(name: str) -> TimezoneInfo:
    """Return the :class:`TimezoneInfo` for IANA zone *name*.

    Raises
    ------
    KeyError
        If the zone is not registered.
    """

    return TIMEZONES[name]


def utc_offsets_of(timezone_name: str) -> Tuple[int, ...]:
    """UTC offsets (minutes east of UTC) zone *timezone_name* can take."""

    return TIMEZONES[timezone_name].offsets_minutes


def country_of_timezone(timezone_name: str) -> Optional[str]:
    """Country a timezone is observed in, or ``None`` if unknown."""

    info = TIMEZONES.get(timezone_name)
    return info.country if info else None


def offsets_of_region(region: str) -> FrozenSet[int]:
    """Every UTC offset that occurs inside an advertised *region*."""

    countries = ADVERTISED_REGIONS.get(region)
    if countries is None:
        raise KeyError(f"unknown advertised region {region!r}")
    offsets = set()
    for country in countries:
        for zone_name in COUNTRY_TIMEZONES.get(country, ()):
            offsets.update(TIMEZONES[zone_name].offsets_minutes)
    return frozenset(offsets)


def offsets_of_country(country: str) -> FrozenSet[int]:
    """Every UTC offset that occurs inside *country* (empty if unknown)."""

    offsets = set()
    for zone_name in COUNTRY_TIMEZONES.get(country, ()):
        offsets.update(TIMEZONES[zone_name].offsets_minutes)
    return frozenset(offsets)


def offset_matches_region(offset_minutes: int, region: str) -> bool:
    """Conservative match used in Section 6.2.

    A UTC offset is considered to "match" an advertised region when any
    location inside that region can exhibit the offset (e.g. Europe/Berlin
    overlaps France).
    """

    return offset_minutes in offsets_of_region(region)


def timezone_matches_region(timezone_name: str, region: str) -> bool:
    """Whether any offset of *timezone_name* overlaps the region's offsets."""

    region_offsets = offsets_of_region(region)
    return any(offset in region_offsets for offset in utc_offsets_of(timezone_name))


def country_matches_region(country: str, region: str) -> bool:
    """Conservative country-vs-region match via overlapping UTC offsets."""

    region_offsets = offsets_of_region(region)
    return any(offset in region_offsets for offset in offsets_of_country(country))


def offsets_overlap(timezone_a: str, timezone_b: str) -> bool:
    """Whether two IANA zones can ever share a UTC offset."""

    return bool(set(utc_offsets_of(timezone_a)) & set(utc_offsets_of(timezone_b)))
