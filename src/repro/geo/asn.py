"""Autonomous-system registry and block lists.

Section 5.1 of the paper checks the ASN of every request against public
"datacenter ASN" block lists (82.54% of bot requests originated from
flagged ASNs) and the IP address against MaxMind's minFraud list (15.86%
coverage).  The real lists are proprietary or change over time, so this
module ships a synthetic registry with the same structure: a set of ASNs
split into residential / mobile carriers and cloud or hosting providers,
plus a block list over the hosting ASNs and a partial IP-level block list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple


class AsnKind(enum.Enum):
    """Coarse business category of an autonomous system."""

    RESIDENTIAL_ISP = "residential_isp"
    MOBILE_CARRIER = "mobile_carrier"
    CLOUD_PROVIDER = "cloud_provider"
    HOSTING_PROVIDER = "hosting_provider"


@dataclass(frozen=True)
class AsnRecord:
    """One autonomous system."""

    number: int
    name: str
    kind: AsnKind
    country: str

    @property
    def is_datacenter(self) -> bool:
        """Cloud and hosting ASNs are the ones public block lists flag."""

        return self.kind in (AsnKind.CLOUD_PROVIDER, AsnKind.HOSTING_PROVIDER)


_A = AsnRecord

#: Synthetic but realistically named ASN registry.
ASN_REGISTRY: Dict[int, AsnRecord] = {
    record.number: record
    for record in (
        # Residential ISPs.
        _A(7922, "Comcast Cable", AsnKind.RESIDENTIAL_ISP, "United States of America"),
        _A(701, "Verizon", AsnKind.RESIDENTIAL_ISP, "United States of America"),
        _A(7018, "AT&T", AsnKind.RESIDENTIAL_ISP, "United States of America"),
        _A(812, "Rogers Communications", AsnKind.RESIDENTIAL_ISP, "Canada"),
        _A(577, "Bell Canada", AsnKind.RESIDENTIAL_ISP, "Canada"),
        _A(3215, "Orange", AsnKind.RESIDENTIAL_ISP, "France"),
        _A(12322, "Free SAS", AsnKind.RESIDENTIAL_ISP, "France"),
        _A(3320, "Deutsche Telekom", AsnKind.RESIDENTIAL_ISP, "Germany"),
        _A(12430, "Vodafone Spain", AsnKind.RESIDENTIAL_ISP, "Spain"),
        _A(3269, "Telecom Italia", AsnKind.RESIDENTIAL_ISP, "Italy"),
        _A(1136, "KPN", AsnKind.RESIDENTIAL_ISP, "Netherlands"),
        _A(5089, "Virgin Media", AsnKind.RESIDENTIAL_ISP, "United Kingdom"),
        _A(4134, "China Telecom", AsnKind.RESIDENTIAL_ISP, "China"),
        _A(9808, "China Mobile", AsnKind.MOBILE_CARRIER, "China"),
        _A(45609, "Bharti Airtel", AsnKind.MOBILE_CARRIER, "India"),
        _A(8151, "Telmex", AsnKind.RESIDENTIAL_ISP, "Mexico"),
        _A(28573, "Claro Brasil", AsnKind.RESIDENTIAL_ISP, "Brazil"),
        _A(4773, "Singtel Mobile", AsnKind.MOBILE_CARRIER, "Singapore"),
        _A(2516, "KDDI", AsnKind.RESIDENTIAL_ISP, "Japan"),
        _A(1221, "Telstra", AsnKind.RESIDENTIAL_ISP, "Australia"),
        _A(9500, "Spark New Zealand", AsnKind.RESIDENTIAL_ISP, "New Zealand"),
        _A(12389, "Rostelecom", AsnKind.RESIDENTIAL_ISP, "Russia"),
        _A(13335, "T-Mobile US", AsnKind.MOBILE_CARRIER, "United States of America"),
        # Cloud providers (flagged by ASN block lists).
        _A(16509, "Amazon Web Services", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(14618, "Amazon AES", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(15169, "Google Cloud", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(8075, "Microsoft Azure", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(14061, "DigitalOcean", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(16276, "OVH", AsnKind.CLOUD_PROVIDER, "France"),
        _A(24940, "Hetzner Online", AsnKind.CLOUD_PROVIDER, "Germany"),
        _A(63949, "Linode", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(20473, "Vultr", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(45102, "Alibaba Cloud", AsnKind.CLOUD_PROVIDER, "China"),
        # Hosting / proxy providers (flagged).
        _A(9009, "M247", AsnKind.HOSTING_PROVIDER, "United Kingdom"),
        _A(212238, "Datacamp", AsnKind.HOSTING_PROVIDER, "United Kingdom"),
        _A(60068, "CDN77", AsnKind.HOSTING_PROVIDER, "United Kingdom"),
        _A(206092, "IPXO", AsnKind.HOSTING_PROVIDER, "United States of America"),
        _A(42831, "UK Dedicated Servers", AsnKind.HOSTING_PROVIDER, "United Kingdom"),
        _A(46606, "Unified Layer", AsnKind.HOSTING_PROVIDER, "United States of America"),
        _A(55286, "Server Mania", AsnKind.HOSTING_PROVIDER, "Canada"),
        _A(49981, "WorldStream", AsnKind.HOSTING_PROVIDER, "Netherlands"),
        _A(51167, "Contabo", AsnKind.HOSTING_PROVIDER, "Germany"),
        _A(396982, "Google Cloud Platform", AsnKind.CLOUD_PROVIDER, "United States of America"),
        _A(208323, "Foundation for Applied Privacy (Tor exit)", AsnKind.HOSTING_PROVIDER, "Germany"),
        _A(53667, "FranTech Solutions (Tor exit)", AsnKind.HOSTING_PROVIDER, "United States of America"),
    )
}

#: ASNs that predominantly host Tor exit relays in the synthetic registry.
TOR_EXIT_ASNS: FrozenSet[int] = frozenset({208323, 53667})

#: ASNs present on the public "bad ASN" block lists the paper checks against.
BLOCKED_ASNS: FrozenSet[int] = frozenset(
    number for number, record in ASN_REGISTRY.items() if record.is_datacenter
)


def asn_record(number: int) -> Optional[AsnRecord]:
    """Return the registry record for ASN *number*, or ``None`` if unknown."""

    return ASN_REGISTRY.get(number)


def is_datacenter_asn(number: int) -> bool:
    """``True`` when *number* belongs to a cloud or hosting provider."""

    record = ASN_REGISTRY.get(number)
    return record.is_datacenter if record else False


@lru_cache(maxsize=None)
def residential_asns(country: Optional[str] = None) -> Tuple[int, ...]:
    """Residential / mobile ASNs, optionally filtered by *country*.

    Cached: the registry is a module constant and the traffic generators
    call this once per session reset.
    """

    return tuple(
        number
        for number, record in ASN_REGISTRY.items()
        if not record.is_datacenter and (country is None or record.country == country)
    )


@lru_cache(maxsize=None)
def datacenter_asns(country: Optional[str] = None) -> Tuple[int, ...]:
    """Cloud / hosting ASNs, optionally filtered by *country*.

    Cached: the registry is a module constant and the traffic generators
    call this once per session reset.
    """

    return tuple(
        number
        for number, record in ASN_REGISTRY.items()
        if record.is_datacenter and (country is None or record.country == country)
    )


class AsnBlocklist:
    """Block list of autonomous system numbers (bad-ASN list model)."""

    def __init__(self, blocked: Iterable[int] = BLOCKED_ASNS):
        self._blocked: FrozenSet[int] = frozenset(int(number) for number in blocked)

    def __contains__(self, number: int) -> bool:
        return int(number) in self._blocked

    def __len__(self) -> int:
        return len(self._blocked)

    @property
    def blocked(self) -> FrozenSet[int]:
        return self._blocked

    def is_blocked(self, number: Optional[int]) -> bool:
        """Whether ASN *number* is on the list (``None`` → not blocked)."""

        return number is not None and int(number) in self._blocked


class IpBlocklist:
    """Partial IP-level block list (minFraud model).

    The paper reports that IP-level lists only cover 15.86% of the bot
    requests; the traffic benchmarks construct this list by sampling a
    fraction of the bot IP pool, reproducing the partial-coverage property.
    """

    def __init__(self, addresses: Iterable[str] = ()):
        self._blocked: Set[str] = {str(address) for address in addresses}

    def __contains__(self, address: str) -> bool:
        return str(address) in self._blocked

    def __len__(self) -> int:
        return len(self._blocked)

    def add(self, address: str) -> None:
        """Add *address* to the list."""

        self._blocked.add(str(address))

    def update(self, addresses: Iterable[str]) -> None:
        """Add every address in *addresses*."""

        for address in addresses:
            self.add(address)

    def is_blocked(self, address: Optional[str]) -> bool:
        """Whether *address* is on the list (``None`` → not blocked)."""

        return address is not None and str(address) in self._blocked

    def coverage(self, addresses: Iterable[str]) -> float:
        """Fraction of *addresses* present on the list (0 when empty input)."""

        addresses = list(addresses)
        if not addresses:
            return 0.0
        hits = sum(1 for address in addresses if self.is_blocked(address))
        return hits / len(addresses)
