"""Synthetic IPv4 address space.

The reproduction needs a deterministic way to hand out IP addresses whose
geolocation and ASN can later be looked up (the honey site stores hashed
addresses, but the analyses in Sections 5.1 and 6.2 rely on the mapping
address → country / region / timezone / ASN).  Address space is organised
as /16 blocks, each owned by one autonomous system and located in one
region, mirroring how GeoLite2 maps prefixes to locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.asn import AsnKind, ASN_REGISTRY


@dataclass(frozen=True)
class GeoRegion:
    """A sub-national region with its primary IANA timezone."""

    country: str
    region: str
    timezone: str


#: Regions used by the traffic generators; the Table 6 location examples
#: (France/Hauts-de-France, Germany/Sachsen, US/California, ...) all appear.
GEO_REGIONS: Tuple[GeoRegion, ...] = (
    GeoRegion("United States of America", "California", "America/Los_Angeles"),
    GeoRegion("United States of America", "Virginia", "America/New_York"),
    GeoRegion("United States of America", "Texas", "America/Chicago"),
    GeoRegion("United States of America", "Oregon", "America/Los_Angeles"),
    GeoRegion("United States of America", "New York", "America/New_York"),
    GeoRegion("Canada", "Ontario", "America/Toronto"),
    GeoRegion("Canada", "British Columbia", "America/Vancouver"),
    GeoRegion("Canada", "Quebec", "America/Toronto"),
    GeoRegion("France", "Hauts-de-France", "Europe/Paris"),
    GeoRegion("France", "Île-de-France", "Europe/Paris"),
    GeoRegion("Germany", "Sachsen", "Europe/Berlin"),
    GeoRegion("Germany", "Hessen", "Europe/Berlin"),
    GeoRegion("United Kingdom", "England", "Europe/London"),
    GeoRegion("Netherlands", "North Holland", "Europe/Amsterdam"),
    GeoRegion("Spain", "Madrid", "Europe/Madrid"),
    GeoRegion("Italy", "Lombardy", "Europe/Rome"),
    GeoRegion("Poland", "Mazovia", "Europe/Warsaw"),
    GeoRegion("Ukraine", "Kyiv", "Europe/Kyiv"),
    GeoRegion("Russia", "Moscow", "Europe/Moscow"),
    GeoRegion("Mexico", "Mexico City", "America/Mexico_City"),
    GeoRegion("Brazil", "São Paulo", "America/Sao_Paulo"),
    GeoRegion("China", "Shanghai", "Asia/Shanghai"),
    GeoRegion("Singapore", "Singapore", "Asia/Singapore"),
    GeoRegion("Japan", "Tokyo", "Asia/Tokyo"),
    GeoRegion("India", "Maharashtra", "Asia/Kolkata"),
    GeoRegion("Pakistan", "Sindh", "Asia/Karachi"),
    GeoRegion("United Arab Emirates", "Dubai", "Asia/Dubai"),
    GeoRegion("Australia", "New South Wales", "Australia/Sydney"),
    GeoRegion("New Zealand", "Auckland", "Pacific/Auckland"),
)

_REGIONS_BY_COUNTRY: Dict[str, Tuple[GeoRegion, ...]] = {}
for _region in GEO_REGIONS:
    _REGIONS_BY_COUNTRY.setdefault(_region.country, ())
    _REGIONS_BY_COUNTRY[_region.country] = _REGIONS_BY_COUNTRY[_region.country] + (_region,)


def regions_of_country(country: str) -> Tuple[GeoRegion, ...]:
    """Regions registered for *country* (empty tuple when unknown)."""

    return _REGIONS_BY_COUNTRY.get(country, ())


@dataclass(frozen=True)
class PrefixAssignment:
    """One /16 prefix with its owner ASN and location."""

    first_octet: int
    second_octet: int
    asn: int
    region: GeoRegion

    @property
    def prefix(self) -> str:
        return f"{self.first_octet}.{self.second_octet}.0.0/16"


def format_ipv4(first: int, second: int, third: int, fourth: int) -> str:
    """Format four octets as a dotted-quad string."""

    return f"{first}.{second}.{third}.{fourth}"


def parse_ipv4(address: str) -> Tuple[int, int, int, int]:
    """Parse a dotted-quad IPv4 address into its octets.

    Raises
    ------
    ValueError
        If *address* is not a valid IPv4 dotted quad.
    """

    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {address!r}")
    octets = []
    for part in parts:
        value = int(part)
        if not 0 <= value <= 255:
            raise ValueError(f"invalid IPv4 address {address!r}")
        octets.append(value)
    return octets[0], octets[1], octets[2], octets[3]


class AddressSpaceExhausted(RuntimeError):
    """A kind's configured first-octet segments are fully allocated."""


#: Default first-octet segments per ASN kind, as ``(base, span)`` pairs
#: (``span`` first octets starting at ``base``).  The *primary* segment of
#: each kind keeps its historical base — residential ``100.x``–``109.x``,
#: mobile ``110.x``–``119.x``, cloud ``34.x``–``44.x``, hosting
#: ``45.x``–``54.x`` — so every address any previous revision allocated is
#: unchanged; the *extension* segments only come into play once the
#: primary segment is full, giving ``--scale`` values well beyond 1.0 (and
#: wider shard fan-outs) 3–4× the historical block capacity per kind.
DEFAULT_KIND_OCTET_RANGES: Dict[AsnKind, Tuple[Tuple[int, int], ...]] = {
    AsnKind.RESIDENTIAL_ISP: ((100, 10), (160, 32)),
    AsnKind.MOBILE_CARRIER: ((110, 10), (192, 32)),
    AsnKind.CLOUD_PROVIDER: ((34, 11), (120, 20)),
    AsnKind.HOSTING_PROVIDER: ((45, 10), (140, 20)),
}


def _validate_kind_ranges(
    kind_ranges: Dict[AsnKind, Tuple[Tuple[int, int], ...]],
) -> Dict[AsnKind, Tuple[Tuple[int, int], ...]]:
    """Check segment sanity and global disjointness across kinds."""

    claimed: Dict[int, AsnKind] = {}
    validated: Dict[AsnKind, Tuple[Tuple[int, int], ...]] = {}
    for kind, segments in kind_ranges.items():
        normalized = tuple((int(base), int(span)) for base, span in segments)
        if not normalized:
            raise ValueError(f"{kind} needs at least one octet segment")
        for base, span in normalized:
            if span < 1 or base < 1 or base + span > 256:
                raise ValueError(
                    f"invalid octet segment ({base}, {span}) for {kind}: "
                    f"need 1 <= base and base + span <= 256"
                )
            for octet in range(base, base + span):
                owner = claimed.get(octet)
                if owner is not None:
                    raise ValueError(
                        f"octet {octet} claimed by both {owner} and {kind}; "
                        f"kind segments must be disjoint"
                    )
                claimed[octet] = kind
        validated[kind] = normalized
    return validated


class IpAddressSpace:
    """Deterministic allocator of synthetic IPv4 addresses.

    The space assigns a distinct /16 to every (ASN, region) combination as
    blocks are requested, drawing from disjoint per-kind first-octet
    segments (:data:`DEFAULT_KIND_OCTET_RANGES`) so that block kinds never
    collide.

    Parameters
    ----------
    partition:
        ``(index, count)`` pair carving the per-kind block sequence into
        ``count`` disjoint interleaved slices.  Shard *index* of a sharded
        corpus build allocates blocks ``index, index + count, ...`` so that
        independently generated shards can later be merged (via
        :meth:`adopt`) into one space without prefix collisions.  The
        default ``(0, 1)`` reproduces the legacy demand-ordered sequence.
    kind_ranges:
        Optional override of the per-kind octet segments (merged over the
        defaults; segments must be disjoint across kinds).  Widening a
        kind's segments never changes already-allocatable addresses — it
        only raises the point at which :class:`AddressSpaceExhausted` is
        raised.
    """

    def __init__(
        self,
        partition: Tuple[int, int] = (0, 1),
        kind_ranges: Optional[Dict[AsnKind, Tuple[Tuple[int, int], ...]]] = None,
    ) -> None:
        index, count = int(partition[0]), int(partition[1])
        if count < 1 or not 0 <= index < count:
            raise ValueError(f"invalid partition {partition!r}; need 0 <= index < count")
        self._partition = (index, count)
        merged = dict(DEFAULT_KIND_OCTET_RANGES)
        if kind_ranges:
            merged.update(kind_ranges)
        self._kind_ranges = _validate_kind_ranges(merged)
        self._assignments: Dict[Tuple[int, str, str], PrefixAssignment] = {}
        self._by_prefix: Dict[Tuple[int, int], PrefixAssignment] = {}
        #: per-kind count of blocks this partition has allocated so far
        self._allocated: Dict[AsnKind, int] = {}

    @property
    def partition(self) -> Tuple[int, int]:
        return self._partition

    @property
    def assignments(self) -> List[PrefixAssignment]:
        return list(self._by_prefix.values())

    def kind_capacity(self, kind: AsnKind) -> int:
        """Total /16 blocks the configured segments give *kind*."""

        return sum(span * 256 for _base, span in self._kind_ranges[kind])

    def _block_octets(self, kind: AsnKind, global_index: int) -> Tuple[int, int]:
        remaining = int(global_index)
        for base, span in self._kind_ranges[kind]:
            segment_blocks = span * 256
            if remaining < segment_blocks:
                return base + remaining // 256, remaining % 256
            remaining -= segment_blocks
        index, count = self._partition
        raise AddressSpaceExhausted(
            f"synthetic address space for {kind.value!r} is exhausted: block "
            f"{global_index} requested but the configured segments "
            f"{self._kind_ranges[kind]} hold only {self.kind_capacity(kind)} /16 "
            f"blocks (partition {index}/{count}).  Widen the kind's segments via "
            f"IpAddressSpace(kind_ranges=...) or reduce the shard count / scale."
        )

    def assignment_for(self, asn: int, region: GeoRegion) -> PrefixAssignment:
        """Return (allocating if needed) the /16 owned by *asn* in *region*."""

        key = (asn, region.country, region.region)
        existing = self._assignments.get(key)
        if existing is not None:
            return existing
        record = ASN_REGISTRY.get(asn)
        if record is None:
            raise KeyError(f"ASN {asn} is not in the registry")
        index, count = self._partition
        ordinal = self._allocated.get(record.kind, 0)
        # Skip over blocks already taken by adopted foreign assignments.
        while True:
            first_octet, second_octet = self._block_octets(record.kind, index + ordinal * count)
            ordinal += 1
            if (first_octet, second_octet) not in self._by_prefix:
                break
        self._allocated[record.kind] = ordinal
        assignment = PrefixAssignment(
            first_octet=first_octet,
            second_octet=second_octet,
            asn=asn,
            region=region,
        )
        self._assignments[key] = assignment
        self._by_prefix[(first_octet, second_octet)] = assignment
        return assignment

    def adopt(self, assignment: PrefixAssignment) -> None:
        """Import an assignment allocated by another (shard) space.

        Adopting the same assignment twice is a no-op; adopting a different
        assignment for an already-claimed prefix raises ``ValueError``.
        Several adopted prefixes may share one (ASN, region) pair — shards
        allocate independently, and real autonomous systems announce many
        prefixes per region — so lookups stay prefix-keyed while local
        allocation reuses the first block adopted for a pair.
        """

        key = (assignment.asn, assignment.region.country, assignment.region.region)
        prefix = (assignment.first_octet, assignment.second_octet)
        if self._by_prefix.get(prefix, assignment) != assignment:
            raise ValueError(f"prefix {assignment.prefix} already assigned differently")
        self._assignments.setdefault(key, assignment)
        self._by_prefix[prefix] = assignment

    def allocate(self, asn: int, region: GeoRegion, rng: np.random.Generator) -> str:
        """Allocate a random host address inside the (asn, region) block."""

        assignment = self.assignment_for(asn, region)
        third = int(rng.integers(0, 256))
        fourth = int(rng.integers(1, 255))
        return format_ipv4(assignment.first_octet, assignment.second_octet, third, fourth)

    def lookup_prefix(self, address: str) -> Optional[PrefixAssignment]:
        """Find the /16 assignment containing *address* (``None`` if outside)."""

        first, second, _third, _fourth = parse_ipv4(address)
        return self._by_prefix.get((first, second))
