"""GeoLite-style IP intelligence lookups.

Combines the synthetic address space, the ASN registry and the timezone
knowledge into the single lookup interface the analyses consume: given an
IP address, return country, region, primary timezone, ASN and whether the
address sits in datacenter space.  This substitutes MaxMind's GeoLite2 and
minFraud products used in the paper (Sections 5.1 and 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.geo.asn import (
    AsnBlocklist,
    ASN_REGISTRY,
    IpBlocklist,
    TOR_EXIT_ASNS,
    datacenter_asns,
    residential_asns,
)
from repro.geo.ipaddr import GeoRegion, IpAddressSpace, regions_of_country
from repro.geo.timezones import offsets_of_country, utc_offsets_of


@dataclass(frozen=True)
class GeoRecord:
    """Result of an IP-intelligence lookup."""

    ip_address: str
    country: str
    region: str
    timezone: str
    asn: int
    asn_name: str
    is_datacenter: bool

    @property
    def location_label(self) -> str:
        """Label formatted the way Table 6 prints locations."""

        return f"{self.country}/{self.region}"


class GeoDatabase:
    """Synthetic GeoLite2-like database over an :class:`IpAddressSpace`."""

    def __init__(self, space: Optional[IpAddressSpace] = None):
        self._space = space if space is not None else IpAddressSpace()

    @property
    def space(self) -> IpAddressSpace:
        return self._space

    # -- allocation ---------------------------------------------------------

    def allocate_address(
        self,
        rng: np.random.Generator,
        *,
        country: str,
        datacenter: bool = False,
        region_name: Optional[str] = None,
    ) -> str:
        """Allocate an address located in *country*.

        ``datacenter=True`` draws from cloud/hosting ASNs (falling back to
        United States cloud space when the country hosts no datacenter ASN
        in the registry, which mirrors reality for most small countries).
        """

        candidate_asns: Sequence[int]
        if datacenter:
            candidate_asns = datacenter_asns(country) or datacenter_asns("United States of America")
            # Tor exit ASNs live in hosting address space but are not part
            # of the commodity proxy pools bot services rent; Tor traffic is
            # generated explicitly by the privacy-technology models.
            candidate_asns = [asn for asn in candidate_asns if asn not in TOR_EXIT_ASNS] or list(
                candidate_asns
            )
            if country not in {r.country for r in _regions_or_default(country)} and candidate_asns:
                country = ASN_REGISTRY[candidate_asns[0]].country
        else:
            candidate_asns = residential_asns(country) or residential_asns()
        if not candidate_asns:
            raise RuntimeError("no candidate ASNs available")
        asn = int(candidate_asns[int(rng.integers(len(candidate_asns)))])
        regions = _regions_or_default(country)
        if region_name is not None:
            matching = [r for r in regions if r.region == region_name]
            regions = tuple(matching) or regions
        region = regions[int(rng.integers(len(regions)))]
        return self._space.allocate(asn, region, rng)

    # -- lookup ------------------------------------------------------------

    def lookup(self, address: str) -> Optional[GeoRecord]:
        """Look up *address*; ``None`` when the address is outside the space."""

        assignment = self._space.lookup_prefix(address)
        if assignment is None:
            return None
        record = ASN_REGISTRY[assignment.asn]
        return GeoRecord(
            ip_address=address,
            country=assignment.region.country,
            region=assignment.region.region,
            timezone=assignment.region.timezone,
            asn=assignment.asn,
            asn_name=record.name,
            is_datacenter=record.is_datacenter,
        )

    def country_of(self, address: str) -> Optional[str]:
        """Country of *address* or ``None`` when unknown."""

        record = self.lookup(address)
        return record.country if record else None

    def asn_of(self, address: str) -> Optional[int]:
        """ASN of *address* or ``None`` when unknown."""

        record = self.lookup(address)
        return record.asn if record else None

    def timezone_of(self, address: str) -> Optional[str]:
        """Primary IANA timezone at the location of *address*."""

        record = self.lookup(address)
        return record.timezone if record else None

    def is_consistent_with_timezone(self, address: str, browser_timezone: str) -> Optional[bool]:
        """Whether the browser timezone can coexist with the IP location.

        Uses the paper's conservative UTC-offset overlap test.  Returns
        ``None`` when either side is unknown to the database.
        """

        record = self.lookup(address)
        if record is None:
            return None
        try:
            browser_offsets = set(utc_offsets_of(browser_timezone))
        except KeyError:
            return None
        country_offsets = offsets_of_country(record.country)
        if not country_offsets:
            return None
        return bool(browser_offsets & country_offsets)


def _regions_or_default(country: str) -> Tuple[GeoRegion, ...]:
    regions = regions_of_country(country)
    if regions:
        return regions
    return regions_of_country("United States of America")


def build_ip_blocklist(
    addresses: Iterable[str],
    rng: np.random.Generator,
    coverage: float,
) -> IpBlocklist:
    """Build a partial IP block list over *addresses*.

    The paper found minFraud covered 15.86% of the bot addresses; the
    benchmarks call this with ``coverage≈0.16`` over the distinct bot IPs.
    """

    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be within [0, 1]")
    unique = sorted(set(addresses))
    count = int(round(len(unique) * coverage))
    if count == 0:
        return IpBlocklist()
    chosen = rng.choice(len(unique), size=count, replace=False)
    return IpBlocklist(unique[int(index)] for index in chosen)


__all__ = [
    "AsnBlocklist",
    "GeoDatabase",
    "GeoRecord",
    "IpBlocklist",
    "build_ip_blocklist",
]
