"""Web request model.

A :class:`WebRequest` is the unit stored by the honey site: one page load
carrying HTTP headers, the source IP address, the first-party cookie (if
the device retained one) and the browser fingerprint collected client-side.
Timestamps are seconds since the start of the measurement campaign so that
the temporal analyses (Figure 9, Section 7.2) can order requests without
depending on wall-clock time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint

_request_counter = itertools.count(1)


def _next_request_id() -> int:
    return next(_request_counter)


@dataclass(frozen=True)
class WebRequest:
    """One request recorded by the honey site.

    Attributes
    ----------
    url_path:
        The path component of the requested URL, e.g. ``"/Byxxodkxn3"``.
        The honey site uses it to attribute the request to a traffic source.
    timestamp:
        Seconds since the start of the measurement campaign.
    ip_address:
        Source address of the connection.
    cookie:
        Value of the honey site's first-party identifier cookie, or ``None``
        when the client presented no cookie.
    fingerprint:
        Browser fingerprint collected by the client-side script.
    headers:
        HTTP request headers.
    request_id:
        Monotonically increasing identifier assigned at construction.
    """

    url_path: str
    timestamp: float
    ip_address: str
    fingerprint: Fingerprint
    cookie: Optional[str] = None
    headers: Mapping[str, str] = field(default_factory=dict)
    request_id: int = field(default_factory=_next_request_id)

    def __post_init__(self) -> None:
        if not self.url_path.startswith("/"):
            raise ValueError(f"url_path must start with '/', got {self.url_path!r}")
        if self.timestamp < 0:
            raise ValueError("timestamp cannot be negative")

    @property
    def user_agent(self) -> Optional[str]:
        """The User-Agent header (falling back to the fingerprint value)."""

        header = self.headers.get("User-Agent") if self.headers else None
        if header:
            return header
        value = self.fingerprint.get(Attribute.USER_AGENT)
        return str(value) if value is not None else None

    def attribute(self, attribute: Attribute, default: Any = None) -> Any:
        """Convenience accessor for a fingerprint attribute."""

        return self.fingerprint.get(attribute, default)

    def with_cookie(self, cookie: Optional[str]) -> "WebRequest":
        """Return a copy of the request with the cookie replaced."""

        return replace(self, cookie=cookie)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the request (used by the persistent request store)."""

        return {
            "request_id": self.request_id,
            "url_path": self.url_path,
            "timestamp": self.timestamp,
            "ip_address": self.ip_address,
            "cookie": self.cookie,
            "headers": dict(self.headers),
            "fingerprint": self.fingerprint.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WebRequest":
        """Reconstruct a request from :meth:`to_dict` output."""

        return cls(
            url_path=str(data["url_path"]),
            timestamp=float(data["timestamp"]),
            ip_address=str(data["ip_address"]),
            cookie=data.get("cookie"),
            headers=dict(data.get("headers", {})),
            fingerprint=Fingerprint.from_dict(data["fingerprint"]),
            request_id=int(data.get("request_id", _next_request_id())),
        )
