"""First-party identifier cookies.

The honey site stores a large random number in a first-party cookie on
first visit (Section 6.3).  Requests that present the same cookie value can
therefore be attributed to the same device — the keystone of the temporal
inconsistency analysis.  Whether a client *retains* the cookie is up to the
client model: real users usually do, bots frequently clear cookies, and
Brave retains them even while randomising other attributes (Section 7.5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

COOKIE_NAME = "hs_device_id"
_COOKIE_BITS = 96


class CookieIssuer:
    """Server-side issuer of first-party identifier cookies."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._issued: set = set()

    @property
    def issued_count(self) -> int:
        """Number of distinct cookie values issued so far."""

        return len(self._issued)

    def issue(self) -> str:
        """Issue a fresh, never-before-seen cookie value."""

        while True:
            value = format(int(self._rng.integers(0, 2 ** 63 - 1)), "d") + format(
                int(self._rng.integers(0, 2 ** 33)), "d"
            )
            if value not in self._issued:
                self._issued.add(value)
                return value

    def ensure(self, presented: Optional[str]) -> str:
        """Return *presented* when the client sent a cookie, else a new one."""

        if presented:
            return presented
        return self.issue()


class ClientCookieStore:
    """Client-side cookie retention model.

    Each client (real device or bot worker) owns one store per honey-site
    origin.  ``retention`` is the probability the client still holds the
    cookie on its next visit: 1.0 models a normal browser profile, 0.0 a
    bot that clears state between visits.
    """

    def __init__(self, retention: float = 1.0, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= retention <= 1.0:
            raise ValueError("retention must be within [0, 1]")
        self._retention = retention
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._value: Optional[str] = None

    @property
    def value(self) -> Optional[str]:
        """The currently stored cookie value (``None`` when empty)."""

        return self._value

    def outgoing(self) -> Optional[str]:
        """The cookie value to attach to the next request.

        With probability ``1 - retention`` the store is cleared first,
        modelling a bot wiping its profile between visits.
        """

        if self._value is not None and self._rng.random() > self._retention:
            self._value = None
        return self._value

    def receive(self, value: str) -> None:
        """Store the cookie set by the server response."""

        if not value:
            raise ValueError("cannot store an empty cookie value")
        self._value = value

    def clear(self) -> None:
        """Explicitly clear the stored cookie."""

        self._value = None
