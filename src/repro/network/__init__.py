"""Web request, header and cookie models."""

from repro.network.cookies import COOKIE_NAME, ClientCookieStore, CookieIssuer
from repro.network.headers import accept_language_for, build_headers, parse_accept_language
from repro.network.request import WebRequest

__all__ = [
    "COOKIE_NAME",
    "ClientCookieStore",
    "CookieIssuer",
    "WebRequest",
    "accept_language_for",
    "build_headers",
    "parse_accept_language",
]
