"""HTTP header synthesis.

The honey site receives ordinary page-load requests; the headers relevant
to the paper's analyses are ``User-Agent`` and ``Accept-Language`` (which
feeds the Location attribute category).  Headers are synthesised from the
fingerprint so that consistent clients produce consistent headers and
altered fingerprints propagate into altered headers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint


def accept_language_for(languages: Optional[Sequence[str]]) -> str:
    """Build an ``Accept-Language`` header value from a language list.

    Quality values decrease by 0.1 per entry as browsers do, e.g.
    ``("fr-FR", "fr", "en-US")`` → ``"fr-FR,fr;q=0.9,en-US;q=0.8"``.
    """

    if not languages:
        return "en-US,en;q=0.9"
    parts = []
    for index, language in enumerate(languages):
        if index == 0:
            parts.append(str(language))
        else:
            quality = max(0.1, 1.0 - 0.1 * index)
            parts.append(f"{language};q={quality:.1f}")
    return ",".join(parts)


def build_headers(fingerprint: Fingerprint, *, referer: Optional[str] = None) -> Dict[str, str]:
    """Synthesise request headers consistent with *fingerprint*."""

    headers: Dict[str, str] = {
        "Accept": "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
        "Accept-Encoding": "gzip, deflate, br",
        "Connection": "keep-alive",
    }
    user_agent = fingerprint.get(Attribute.USER_AGENT)
    if user_agent:
        headers["User-Agent"] = str(user_agent)
    languages = fingerprint.get(Attribute.LANGUAGES)
    headers["Accept-Language"] = accept_language_for(languages)
    if referer:
        headers["Referer"] = referer
    return headers


def parse_accept_language(value: str) -> tuple:
    """Parse an ``Accept-Language`` header back into a language tuple."""

    languages = []
    for part in value.split(","):
        token = part.split(";")[0].strip()
        if token:
            languages.append(token)
    return tuple(languages)
