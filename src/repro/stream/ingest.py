"""Incremental encoding of arriving traffic into columnar micro-batches.

The batch detection engine extracts a whole :class:`RequestStore` into one
:class:`~repro.core.columnar.ColumnarTable` up front.  A live deployment
never has "the whole store": requests arrive in micro-batches, and every
batch may carry attribute values the vocabulary has never seen.  The
:class:`StreamIngestor` closes that gap — it owns a **growing** per-attribute
code vocabulary (value → ``int32`` code, assigned in stream
first-occurrence order, never remapped) and encodes each incoming batch
against it, emitting a :class:`ColumnarTable` whose decode lists are live
views of the shared vocabulary.

Because codes are append-only, everything the batch engine already does
with a table works unchanged on a batch: the filter list compiles against
it, the temporal detector streams it, and the refresher can mine a window
of concatenated batch columns.  Ingesting an entire store in one batch
produces exactly the table :meth:`ColumnarTable.from_store` would — the
stream tests pin it.

Two ingestion paths mirror the two physical record representations:

* :meth:`StreamIngestor.ingest_records` — object form (one
  :class:`RecordedRequest` at a time), the path a live endpoint would use;
* :meth:`StreamIngestor.ingest_rows` — a row slice of a
  :class:`~repro.honeysite.storage.RecordColumns`, the replay path: no
  record object is materialised, and per-session encodings are memoized so
  a session's grouping transformation runs once per session, not once per
  request.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.columnar import ColumnarTable, default_table_attributes
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint, grouping_value
from repro.honeysite.storage import RecordColumns, RecordedRequest

_ROWS_INGESTED = obs.counter(
    "repro_stream_rows_ingested_total", "Rows encoded into micro-batches."
)
_BATCHES_EMITTED = obs.counter(
    "repro_stream_batches_total", "Micro-batches emitted by stream ingestors."
)
_VOCABULARY_VALUES = obs.gauge(
    "repro_stream_vocabulary_values",
    "Total decode-list entries across attributes (grows monotonically).",
)


class StreamIngestor:
    """Encodes arriving rows against a growing attribute-code vocabulary.

    The emitted batches share the ingestor's decode lists *by reference*:
    they keep growing as later batches arrive, but existing codes never
    change meaning, so a batch stays decodable forever.  Consumers that
    compile against a batch (the filter-list index keys on vocabulary
    sizes) must do so per batch — which is exactly what the online
    classifier does.
    """

    def __init__(self, attributes: Optional[Iterable[Attribute]] = None):
        self.attributes: Tuple[Attribute, ...] = (
            tuple(attributes) if attributes is not None else default_table_attributes()
        )
        #: grouping value → code, and the matching decode lists; these are
        #: the live objects every emitted batch references.
        self._indexes: Dict[Attribute, Dict[object, int]] = {
            attribute: {} for attribute in self.attributes
        }
        self._values: Dict[Attribute, List[object]] = {
            attribute: [] for attribute in self.attributes
        }
        #: raw value → code per attribute, so the grouping transformation
        #: runs once per distinct raw value — the same memo the batch
        #: extractor keeps, but persistent across the whole stream.
        self._raw_codes: Dict[Attribute, Dict[object, int]] = {
            attribute: {} for attribute in self.attributes
        }
        self._cookie_index: Dict[str, int] = {}
        self.cookie_values: List[str] = []
        self._ip_index: Dict[str, int] = {}
        self.ip_values: List[str] = []
        self._rows_ingested = 0
        self._batches_emitted = 0
        # Memos of the column-slice path, scoped to one RecordColumns
        # instance (codes are meaningless across instances).
        self._memo_columns: Optional[RecordColumns] = None
        self._session_rows: Dict[int, np.ndarray] = {}
        self._session_ips: Dict[int, int] = {}
        self._cookie_map: Dict[int, int] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def rows_ingested(self) -> int:
        return self._rows_ingested

    @property
    def batches_emitted(self) -> int:
        return self._batches_emitted

    def vocabulary_sizes(self) -> Dict[Attribute, int]:
        """Current decode-list length per attribute (monotonically growing)."""

        return {attribute: len(values) for attribute, values in self._values.items()}

    # -- checkpointing ---------------------------------------------------------

    def export_state(self) -> Dict:
        """The ingestor's durable state, as a picklable mapping.

        Only the vocabulary (decode lists, in code order) and the row
        counters are durable.  The raw-value memo, the grouped-value
        indexes and the column-slice session memos are pure caches derived
        from them — :meth:`restore_state` rebuilds the indexes and lets
        the memos refill lazily, so a restored ingestor encodes every
        future batch exactly as the original would have.
        """

        return {
            "attributes": self.attributes,
            "values": {
                attribute: list(values) for attribute, values in self._values.items()
            },
            "cookie_values": list(self.cookie_values),
            "ip_values": list(self.ip_values),
            "rows_ingested": self._rows_ingested,
            "batches_emitted": self._batches_emitted,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt a vocabulary exported by :meth:`export_state`.

        Decode lists are mutated in place (emitted batches hold them by
        reference) and the value → code indexes are rebuilt from code
        order; every cache resets empty.
        """

        if tuple(state["attributes"]) != self.attributes:
            raise ValueError(
                "checkpointed attribute set does not match this ingestor's attributes"
            )
        for attribute in self.attributes:
            values = self._values[attribute]
            values.clear()
            values.extend(state["values"][attribute])
            index = self._indexes[attribute]
            index.clear()
            index.update({value: code for code, value in enumerate(values)})
            self._raw_codes[attribute].clear()
        self.cookie_values.clear()
        self.cookie_values.extend(state["cookie_values"])
        self._cookie_index = {value: code for code, value in enumerate(self.cookie_values)}
        self.ip_values.clear()
        self.ip_values.extend(state["ip_values"])
        self._ip_index = {value: code for code, value in enumerate(self.ip_values)}
        self._rows_ingested = int(state["rows_ingested"])
        self._batches_emitted = int(state["batches_emitted"])
        self._memo_columns = None
        self._session_rows = {}
        self._session_ips = {}
        self._cookie_map = {}

    # -- encoding helpers ------------------------------------------------------

    def _encode_value(self, attribute: Attribute, raw: object) -> int:
        raw_codes = self._raw_codes[attribute]
        code = raw_codes.get(raw)
        if code is None:
            grouped = grouping_value(attribute, raw)
            index = self._indexes[attribute]
            code = index.get(grouped)
            if code is None:
                values = self._values[attribute]
                code = len(values)
                index[grouped] = code
                values.append(grouped)
            raw_codes[raw] = code
        return code

    def _encode_fingerprint(self, fingerprint: Fingerprint) -> np.ndarray:
        row = np.empty(len(self.attributes), dtype=np.int32)
        get = fingerprint._values.get
        for position, attribute in enumerate(self.attributes):
            raw = get(attribute)
            row[position] = -1 if raw is None else self._encode_value(attribute, raw)
        return row

    @staticmethod
    def _intern(value: Optional[str], index: Dict[str, int], values: List[str]) -> int:
        if value is None:
            return -1
        code = index.get(value)
        if code is None:
            code = len(values)
            index[value] = code
            values.append(value)
        return code

    def _emit(
        self,
        matrix: np.ndarray,
        *,
        request_ids: np.ndarray,
        timestamps: np.ndarray,
        cookie_codes: np.ndarray,
        ip_codes: np.ndarray,
    ) -> ColumnarTable:
        n_rows = int(timestamps.size)
        table = ColumnarTable(
            codes={
                attribute: np.ascontiguousarray(matrix[:, position])
                for position, attribute in enumerate(self.attributes)
            },
            values=self._values,
            indexes=self._indexes,
            n_rows=n_rows,
            request_ids=request_ids,
            timestamps=timestamps,
            cookie_codes=cookie_codes,
            cookie_values=self.cookie_values,
            ip_codes=ip_codes,
            ip_values=self.ip_values,
        )
        self._rows_ingested += n_rows
        self._batches_emitted += 1
        _ROWS_INGESTED.inc(n_rows)
        _BATCHES_EMITTED.inc()
        # Decode lists only grow, so summing lengths here keeps the gauge
        # exact without a per-row cost.
        _VOCABULARY_VALUES.set(
            sum(len(values) for values in self._values.values())
        )
        return table

    # -- ingestion -------------------------------------------------------------

    def ingest_records(self, records: Sequence[RecordedRequest]) -> ColumnarTable:
        """Encode one micro-batch of record objects.

        Rows come out in the given order; the caller owns arrival ordering
        (the replay driver feeds timestamp order).
        """

        records = list(records)
        n = len(records)
        matrix = np.empty((n, len(self.attributes)), dtype=np.int32)
        request_ids = np.empty(n, dtype=np.int64)
        timestamps = np.empty(n, dtype=np.float64)
        cookie_codes = np.empty(n, dtype=np.int32)
        ip_codes = np.empty(n, dtype=np.int32)
        for position, record in enumerate(records):
            request = record.request
            matrix[position] = self._encode_fingerprint(request.fingerprint)
            request_ids[position] = request.request_id
            timestamps[position] = record.timestamp
            cookie_codes[position] = self._intern(
                record.cookie, self._cookie_index, self.cookie_values
            )
            ip_codes[position] = self._intern(
                request.ip_address, self._ip_index, self.ip_values
            )
        return self._emit(
            matrix,
            request_ids=request_ids,
            timestamps=timestamps,
            cookie_codes=cookie_codes,
            ip_codes=ip_codes,
        )

    def ingest_rows(self, columns: RecordColumns, rows) -> ColumnarTable:
        """Encode a row slice of *columns* without materialising records.

        Per-session encodings (attribute code row, source-address code) and
        per-cookie translations are memoized for the lifetime of *columns*,
        so replaying a corpus costs one fingerprint encoding per *session*.
        The columns must be renumbered (request ids present) — a corpus
        store always is.

        The code arrays here are only indexed, never mutated, and the
        compat views (``session_fingerprints`` et al.) decode one session
        at a time on demand — so a read-only memory-mapped corpus (a warm
        ``REPRO_CORPUS_MMAP`` cache hit) streams through unchanged, paging
        in exactly the rows each micro-batch touches.
        """

        if columns.request_ids is None:
            raise ValueError(
                "streaming ingestion needs renumbered record columns "
                "(RecordColumns.renumbered assigns request ids)"
            )
        if columns is not self._memo_columns:
            self._memo_columns = columns
            self._session_rows = {}
            self._session_ips = {}
            self._cookie_map = {}

        rows = np.asarray(rows, dtype=np.int64)
        session_codes = columns.session_codes[rows]
        unique_sessions, inverse = np.unique(session_codes, return_inverse=True)
        session_matrix = np.empty((unique_sessions.size, len(self.attributes)), dtype=np.int32)
        session_ip_codes = np.empty(unique_sessions.size, dtype=np.int32)
        for position, session in enumerate(unique_sessions.tolist()):
            row = self._session_rows.get(session)
            if row is None:
                row = self._encode_fingerprint(columns.session_fingerprints[session])
                self._session_rows[session] = row
                self._session_ips[session] = self._intern(
                    columns.session_ips[session], self._ip_index, self.ip_values
                )
            session_matrix[position] = row
            session_ip_codes[position] = self._session_ips[session]

        served = columns.served_codes[rows]
        unique_cookies = np.unique(served)
        cookie_map = self._cookie_map
        for local in unique_cookies.tolist():
            if local not in cookie_map:
                cookie_map[local] = self._intern(
                    columns.cookie_values[local], self._cookie_index, self.cookie_values
                )
        translate = np.empty(int(unique_cookies.max()) + 1 if unique_cookies.size else 0,
                             dtype=np.int32)
        for local in unique_cookies.tolist():
            translate[local] = cookie_map[local]

        return self._emit(
            session_matrix[inverse] if rows.size else
            np.empty((0, len(self.attributes)), dtype=np.int32),
            request_ids=columns.request_ids[rows],
            timestamps=columns.timestamps[rows],
            cookie_codes=translate[served] if rows.size else np.empty(0, dtype=np.int32),
            ip_codes=session_ip_codes[inverse] if rows.size else np.empty(0, dtype=np.int32),
        )
