"""Periodic filter-list refresh over a sliding window of ingested rows.

A deployed filter list ages: bot services rotate configurations, so the
rule set mined from last month's traffic slowly loses coverage.  The
:class:`FilterListRefresher` keeps the most recent ``window_rows`` rows of
every observed batch (just the attribute code columns — the decode lists
are the ingestor's live vocabulary, shared by reference) and periodically
re-mines a fresh :class:`~repro.core.rules.FilterList` over that window
with the exact batch miner (:meth:`SpatialInconsistencyMiner.mine_table`),
optionally fanned out over the shard worker pool.

Two refresh schedules are supported, selected by exactly one constructor
knob:

* ``interval_batches`` — every N observed batches, the original replay
  cadence (``repro stream --refresh-every``);
* ``interval_days`` — every N days of **stream time** (batch timestamps
  are seconds since campaign start), which models filter-list staleness
  faithfully: a deployment re-mines on wall-clock cadence, not on a
  traffic-volume-dependent batch count.  The serving gateway
  (``repro serve --refresh-days``) uses this mode.

Mining over window columns encoded in the stream's global vocabulary is
equivalent to mining a fresh extraction of the same rows: co-occurrence
counts are code-numbering-independent, and
:func:`~repro.core.spatial.columnar_pair_statistics` rebuilds its value
dictionaries in window-row first-occurrence order either way
(``tests/test_stream.py`` pins the equivalence).

Synchronous callers drive the refresher with
:meth:`FilterListRefresher.maybe_refresh` (observe → due-check → mine in
one call, as :class:`~repro.stream.replay.ReplayDriver` does).  The
serving gateway mines **off the scoring path** instead: it calls
:meth:`poll_due` after each observed batch, snapshots
:meth:`window_table`, and runs :meth:`mine` on a background worker,
hot-swapping the result at a later batch boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.columnar import ColumnarTable
from repro.core.rules import FilterList
from repro.core.spatial import SpatialInconsistencyMiner
from repro.honeysite.storage import SECONDS_PER_DAY

_WINDOW_ROWS = obs.gauge(
    "repro_stream_window_rows", "Rows currently retained in the refresh window."
)
_REFRESH_MINES = obs.counter(
    "repro_stream_refresh_mines_total", "Filter-list re-mines over the window."
)


class FilterListRefresher:
    """Re-mines the filter list over the last ``window_rows`` ingested rows.

    Exactly one of ``interval_batches`` (refresh every N batches) and
    ``interval_days`` (refresh every N days of stream time) must be given;
    ``window_rows`` bounds the sliding re-mining window, and ``workers`` /
    ``executor`` fan the mining itself out over the shard worker pool.
    """

    def __init__(
        self,
        miner: Optional[SpatialInconsistencyMiner] = None,
        *,
        interval_batches: Optional[int] = None,
        interval_days: Optional[float] = None,
        window_rows: int,
        workers: int = 1,
        executor: Optional[str] = None,
    ):
        if (interval_batches is None) == (interval_days is None):
            raise ValueError(
                "set exactly one of interval_batches (refresh every N batches) "
                "or interval_days (refresh every N stream days)"
            )
        if interval_batches is not None and interval_batches < 1:
            raise ValueError(f"interval_batches must be >= 1, got {interval_batches}")
        if interval_days is not None and interval_days <= 0:
            raise ValueError(f"interval_days must be positive, got {interval_days}")
        if window_rows < 1:
            raise ValueError(f"window_rows must be >= 1, got {window_rows}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._miner = miner if miner is not None else SpatialInconsistencyMiner()
        self.interval_batches = None if interval_batches is None else int(interval_batches)
        self.interval_days = None if interval_days is None else float(interval_days)
        self.window_rows = int(window_rows)
        self._workers = int(workers)
        self._executor = executor
        #: retained per-batch code columns, oldest first
        self._recent: List[Dict] = []
        self._rows_in_window = 0
        self._batches_seen = 0
        #: the latest observed batch: every batch shares the ingestor's
        #: live vocabulary, so any one of them can decode the window
        self._template: Optional[ColumnarTable] = None
        #: stream-clock bookkeeping (``interval_days`` mode only)
        self._latest_ts: Optional[float] = None
        self._next_due_ts: Optional[float] = None

    @property
    def rows_in_window(self) -> int:
        return self._rows_in_window

    @property
    def batches_seen(self) -> int:
        return self._batches_seen

    @property
    def stream_day(self) -> Optional[int]:
        """The latest observed stream day (0-based), ``None`` before any.

        Only tracked in ``interval_days`` mode, where batch timestamps
        drive the refresh schedule.
        """

        if self._latest_ts is None:
            return None
        return int(self._latest_ts // SECONDS_PER_DAY)

    # -- checkpointing ---------------------------------------------------------

    def export_state(self) -> Dict:
        """The refresher's durable state, as a picklable mapping.

        The retained window columns are copied (they may be views into
        emitted batch arrays), the schedule clock travels along, and the
        template batch is deliberately absent — it only serves to decode
        the window against the live vocabulary, and the first
        post-restore :meth:`observe_batch` re-establishes it before any
        refresh can fire.
        """

        return {
            "recent": [
                {attribute: np.array(column) for attribute, column in part.items()}
                for part in self._recent
            ],
            "rows_in_window": self._rows_in_window,
            "batches_seen": self._batches_seen,
            "latest_ts": self._latest_ts,
            "next_due_ts": self._next_due_ts,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt a window exported by :meth:`export_state`."""

        self._recent = [dict(part) for part in state["recent"]]
        self._rows_in_window = int(state["rows_in_window"])
        self._batches_seen = int(state["batches_seen"])
        self._latest_ts = state["latest_ts"]
        self._next_due_ts = state["next_due_ts"]
        self._template = None

    def observe_batch(self, batch: ColumnarTable) -> None:
        """Retain *batch*'s code columns and trim the window to size.

        The oldest retained batch is sliced — not just dropped whole — so
        the window is exactly the last ``window_rows`` rows regardless of
        how batch boundaries fall.  In ``interval_days`` mode the batch
        must carry timestamps (every ingestor-emitted batch does); they
        advance the stream clock the schedule runs on.
        """

        self._template = batch
        if self.interval_days is not None:
            if batch.timestamps is None:
                raise ValueError(
                    "day-driven refresh needs batches with timestamps "
                    "(tables built by the stream ingestor or from_store)"
                )
            if batch.n_rows:
                first = float(batch.timestamps.min())
                latest = float(batch.timestamps.max())
                if self._next_due_ts is None:
                    self._next_due_ts = first + self.interval_days * SECONDS_PER_DAY
                if self._latest_ts is None or latest > self._latest_ts:
                    self._latest_ts = latest
        if batch.n_rows:
            self._recent.append(
                {attribute: batch.codes_of(attribute) for attribute in batch.attributes}
            )
            self._rows_in_window += batch.n_rows
        overflow = self._rows_in_window - self.window_rows
        while overflow > 0:
            oldest = self._recent[0]
            oldest_rows = int(next(iter(oldest.values())).size)
            if overflow >= oldest_rows:
                self._recent.pop(0)
                self._rows_in_window -= oldest_rows
                overflow -= oldest_rows
            else:
                self._recent[0] = {
                    attribute: column[overflow:] for attribute, column in oldest.items()
                }
                self._rows_in_window -= overflow
                overflow = 0
        self._batches_seen += 1
        _WINDOW_ROWS.set(self._rows_in_window)

    def window_table(self) -> ColumnarTable:
        """The current window as one mineable columnar table.

        Columns are concatenations of the retained batch slices; decode
        lists are the ingestor's live vocabulary.  No request metadata —
        mining never reads it.  The concatenated arrays are fresh copies,
        so the snapshot stays valid while later batches keep arriving —
        which is what lets the gateway mine it on a background worker.
        """

        if not self._recent:
            raise ValueError("the refresh window is empty; observe at least one batch")
        attributes = list(self._recent[0])
        return self._template.with_columns(
            {
                attribute: np.concatenate([part[attribute] for part in self._recent])
                for attribute in attributes
            }
        )

    def poll_due(self) -> bool:
        """Whether a refresh interval just completed (call once per batch).

        ``interval_batches`` mode is a pure batch-count check.
        ``interval_days`` mode consumes the trigger: when the stream clock
        has crossed the next due time, the schedule advances to
        ``latest + interval`` so each crossing fires exactly once.
        """

        if self.interval_batches is not None:
            return bool(
                self._batches_seen and self._batches_seen % self.interval_batches == 0
            )
        if self._latest_ts is None or self._next_due_ts is None:
            return False
        if self._latest_ts >= self._next_due_ts:
            self._next_due_ts = self._latest_ts + self.interval_days * SECONDS_PER_DAY
            return True
        return False

    def mine(self, table: ColumnarTable) -> FilterList:
        """Mine a filter list over *table* with this refresher's miner knobs.

        Split out from :meth:`refresh` so a caller can snapshot
        :meth:`window_table` on the scoring path and run the expensive
        mining elsewhere (the serving gateway's background refresh worker).
        """

        with obs.tracer().span(
            "stream.refresh_mine", rows=table.n_rows, workers=self._workers
        ):
            filter_list = self._miner.mine_table(
                table, workers=self._workers, executor=self._executor
            )
        _REFRESH_MINES.inc()
        return filter_list

    def refresh(self) -> FilterList:
        """Mine a fresh filter list over the current window."""

        return self.mine(self.window_table())

    def maybe_refresh(self) -> Optional[FilterList]:
        """A fresh list when a refresh interval just completed, else ``None``.

        Call once per batch, after :meth:`observe_batch`; the driver swaps
        the returned list into the classifier before the next batch.  This
        mines synchronously, on the calling thread — the replay driver's
        cadence.  The serving gateway uses :meth:`poll_due` +
        :meth:`mine` instead to keep mining off the scoring path.
        """

        if self.poll_due():
            return self.refresh()
        return None
