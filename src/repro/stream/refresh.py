"""Periodic filter-list refresh over a sliding window of ingested rows.

A deployed filter list ages: bot services rotate configurations, so the
rule set mined from last month's traffic slowly loses coverage.  The
:class:`FilterListRefresher` keeps the most recent ``window_rows`` rows of
every observed batch (just the attribute code columns — the decode lists
are the ingestor's live vocabulary, shared by reference) and every
``interval_batches`` batches re-mines a fresh
:class:`~repro.core.rules.FilterList` over that window with the exact
batch miner (:meth:`SpatialInconsistencyMiner.mine_table`), optionally
fanned out over the shard worker pool.

Mining over window columns encoded in the stream's global vocabulary is
equivalent to mining a fresh extraction of the same rows: co-occurrence
counts are code-numbering-independent, and
:func:`~repro.core.spatial.columnar_pair_statistics` rebuilds its value
dictionaries in window-row first-occurrence order either way
(``tests/test_stream.py`` pins the equivalence).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.columnar import ColumnarTable
from repro.core.rules import FilterList
from repro.core.spatial import SpatialInconsistencyMiner


class FilterListRefresher:
    """Re-mines the filter list over the last ``window_rows`` ingested rows."""

    def __init__(
        self,
        miner: Optional[SpatialInconsistencyMiner] = None,
        *,
        interval_batches: int,
        window_rows: int,
        workers: int = 1,
        executor: Optional[str] = None,
    ):
        if interval_batches < 1:
            raise ValueError(f"interval_batches must be >= 1, got {interval_batches}")
        if window_rows < 1:
            raise ValueError(f"window_rows must be >= 1, got {window_rows}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._miner = miner if miner is not None else SpatialInconsistencyMiner()
        self.interval_batches = int(interval_batches)
        self.window_rows = int(window_rows)
        self._workers = int(workers)
        self._executor = executor
        #: retained per-batch code columns, oldest first
        self._recent: List[Dict] = []
        self._rows_in_window = 0
        self._batches_seen = 0
        #: the latest observed batch: every batch shares the ingestor's
        #: live vocabulary, so any one of them can decode the window
        self._template: Optional[ColumnarTable] = None

    @property
    def rows_in_window(self) -> int:
        return self._rows_in_window

    @property
    def batches_seen(self) -> int:
        return self._batches_seen

    def observe_batch(self, batch: ColumnarTable) -> None:
        """Retain *batch*'s code columns and trim the window to size.

        The oldest retained batch is sliced — not just dropped whole — so
        the window is exactly the last ``window_rows`` rows regardless of
        how batch boundaries fall.
        """

        self._template = batch
        if batch.n_rows:
            self._recent.append(
                {attribute: batch.codes_of(attribute) for attribute in batch.attributes}
            )
            self._rows_in_window += batch.n_rows
        overflow = self._rows_in_window - self.window_rows
        while overflow > 0:
            oldest = self._recent[0]
            oldest_rows = int(next(iter(oldest.values())).size)
            if overflow >= oldest_rows:
                self._recent.pop(0)
                self._rows_in_window -= oldest_rows
                overflow -= oldest_rows
            else:
                self._recent[0] = {
                    attribute: column[overflow:] for attribute, column in oldest.items()
                }
                self._rows_in_window -= overflow
                overflow = 0
        self._batches_seen += 1

    def window_table(self) -> ColumnarTable:
        """The current window as one mineable columnar table.

        Columns are concatenations of the retained batch slices; decode
        lists are the ingestor's live vocabulary.  No request metadata —
        mining never reads it.
        """

        if not self._recent:
            raise ValueError("the refresh window is empty; observe at least one batch")
        attributes = list(self._recent[0])
        return self._template.with_columns(
            {
                attribute: np.concatenate([part[attribute] for part in self._recent])
                for attribute in attributes
            }
        )

    def refresh(self) -> FilterList:
        """Mine a fresh filter list over the current window."""

        return self._miner.mine_table(
            self.window_table(), workers=self._workers, executor=self._executor
        )

    def maybe_refresh(self) -> Optional[FilterList]:
        """A fresh list when a refresh interval just completed, else ``None``.

        Call once per batch, after :meth:`observe_batch`; the driver swaps
        the returned list into the classifier before the next batch.
        """

        if self._batches_seen and self._batches_seen % self.interval_batches == 0:
            return self.refresh()
        return None
