"""Corpus replay through the streaming subsystem.

The :class:`ReplayDriver` feeds any request store — object-backed or
columnar/lazy — through the online pipeline in timestamp order:
micro-batches are encoded by a :class:`~repro.stream.ingest.StreamIngestor`,
scored by an :class:`~repro.stream.classifier.OnlineClassifier`, and
(optionally) observed by a
:class:`~repro.stream.refresh.FilterListRefresher` that hot-swaps a
re-mined filter list at batch boundaries.

The driver's core oracle, pinned by ``tests/test_stream.py`` and the CI
stream-replay smoke: a full replay with a **frozen** filter list produces
verdicts identical — byte-identical once serialised — to one batch
:meth:`FPInconsistent.classify_table` over the whole store, for any batch
size.  That is what makes the streaming subsystem a servable engine rather
than an approximation: going online costs nothing in detection quality.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.honeysite.storage import LazyRequestStore, RequestStore
from repro.stream.checkpoint import CheckpointError, StreamCheckpointer
from repro.stream.classifier import OnlineClassifier
from repro.stream.ingest import StreamIngestor
from repro.stream.refresh import FilterListRefresher

logger = logging.getLogger("repro.stream")

#: Default micro-batch size of the replay driver and the CLI.
DEFAULT_BATCH_SIZE = 1024

#: Per-batch wall-clock by stage (``ingest``/``classify``/``refresh``)
#: plus the end-to-end ``total``.  Shared with the serving gateway's
#: replay driver, whose batches run the same stages.
_BATCH_SECONDS = obs.histogram(
    "repro_stream_batch_seconds",
    "Per-batch latency in seconds, by stage (ingest, classify, refresh, total).",
)


class ArrivalStream:
    """A request store viewed in arrival (stable timestamp) order.

    Both replay front-ends — the single-stream :class:`ReplayDriver` and
    the parallel gateway's :class:`~repro.serve.GatewayReplayDriver` —
    present a store to the online pipeline the same way: rows sorted by
    timestamp (stable, so equal timestamps keep store order), sliced into
    micro-batches.  This helper owns that ordering once.  A
    :class:`LazyRequestStore` is replayed straight from its record columns
    (no record object is materialised); an object store feeds record
    micro-batches.

    The columns may be read-only memmaps over the cached ``.npz`` archive
    (a warm ``REPRO_CORPUS_MMAP`` hit): the argsort and every batch take
    copy only the slice being scored into fresh arrays, so the backing
    archive is never written and never fully resident.
    """

    def __init__(self, store: RequestStore):
        if isinstance(store, LazyRequestStore):
            self._columns = store.columns
            self._order = np.argsort(self._columns.timestamps, kind="stable")
            self._records = None
            self.total = int(self._columns.n_rows)
        else:
            self._columns = None
            self._order = None
            self._records = sorted(store, key=lambda record: record.timestamp)
            self.total = len(self._records)

    def ingest(self, ingestor: StreamIngestor, start: int, size: int) -> ColumnarTable:
        """Encode arrival rows ``[start, start + size)`` through *ingestor*."""

        if self._records is None:
            return ingestor.ingest_rows(self._columns, self._order[start : start + size])
        return ingestor.ingest_records(self._records[start : start + size])

    def submit(self, gateway, start: int, size: int) -> Dict[int, InconsistencyVerdict]:
        """Feed arrival rows ``[start, start + size)`` into a gateway."""

        if self._records is None:
            return gateway.submit_rows(self._columns, self._order[start : start + size])
        return gateway.submit_records(self._records[start : start + size])


@dataclass
class ReplayResult:
    """Everything one replay produced."""

    verdicts: Dict[int, InconsistencyVerdict]
    rows: int
    batches: int
    seconds: float
    #: wall-clock seconds per scored batch (ingest + classify), in order
    batch_seconds: List[float] = field(default_factory=list)
    #: one entry per filter-list hot-swap: {"batch", "rules"}
    refreshes: List[Dict] = field(default_factory=list)
    #: snapshots published / failed attempts (0 without a checkpointer)
    checkpoints_saved: int = 0
    checkpoint_failures: int = 0
    #: the batch index this run resumed from (``None`` for a fresh run)
    resumed_from_batch: Optional[int] = None

    @property
    def rows_per_second(self) -> float:
        """Sustained end-to-end throughput of the replay (0 when empty)."""

        return self.rows / self.seconds if self.seconds > 0 else 0.0

    def latency_quantile(self, quantile: float) -> float:
        """Per-batch latency quantile in seconds (0 with no batches).

        Nearest-rank on the sorted per-batch wall-clock times; p50/p99 are
        what the benchmark and the CLI report.
        """

        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self.batch_seconds:
            return 0.0
        ordered = sorted(self.batch_seconds)
        rank = min(len(ordered) - 1, max(0, int(np.ceil(quantile * len(ordered))) - 1))
        return ordered[rank]

    def latency_quantiles_ms(self) -> Dict[str, float]:
        """The reported batch-latency quantiles (p50/p95/p99), in ms.

        One definition shared by the CLI summaries (human-readable and
        ``--json``) and the scaling benches.
        """

        return {
            f"p{int(quantile * 100)}_batch_ms": self.latency_quantile(quantile) * 1000
            for quantile in (0.5, 0.95, 0.99)
        }

    def counts(self) -> Dict[str, int]:
        """Verdict tallies: spatial / temporal / combined inconsistency."""

        spatial = sum(1 for v in self.verdicts.values() if v.spatially_inconsistent)
        temporal = sum(1 for v in self.verdicts.values() if v.temporally_inconsistent)
        combined = sum(1 for v in self.verdicts.values() if v.is_inconsistent)
        return {"spatial": spatial, "temporal": temporal, "inconsistent": combined}


class ReplayDriver:
    """Replays a request store through the online pipeline in time order.

    The single-stream replay front-end: one
    :class:`~repro.stream.ingest.StreamIngestor` and one
    :class:`~repro.stream.classifier.OnlineClassifier` (built fresh per
    :meth:`replay` from the fitted *detector*, which is never mutated),
    scoring ``batch_size``-row micro-batches in stable timestamp order.
    An optional *refresher* re-mines the filter list synchronously at its
    due batch boundaries and hot-swaps the result.  The parallel
    counterpart is :class:`repro.serve.GatewayReplayDriver`.
    """

    def __init__(
        self,
        detector: FPInconsistent,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        refresher: Optional[FilterListRefresher] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._detector = detector
        self.batch_size = int(batch_size)
        self._refresher = refresher

    def replay(
        self,
        store: RequestStore,
        *,
        checkpointer: Optional[StreamCheckpointer] = None,
        resume: bool = False,
        max_batches: Optional[int] = None,
    ) -> ReplayResult:
        """Stream every record of *store* and collect the online verdicts.

        A :class:`LazyRequestStore` replays straight from its record
        columns (no record object is materialised); an object store feeds
        record micro-batches.  Either path presents rows in stable
        timestamp order — the arrival order a live deployment would see.

        With a *checkpointer*, the full online state (vocabulary,
        temporal seen-state, filter list, verdicts, cursor) is snapshotted
        crash-safely at each due batch boundary; ``resume=True`` restores
        the published snapshot first and continues the stream from its
        cursor — the combined run is byte-identical to an uninterrupted
        one.  *max_batches* bounds how many batches this invocation
        scores (the deterministic stand-in for a mid-replay kill in tests
        and the CI kill-and-resume smoke).
        """

        ingestor = StreamIngestor(attributes=self._detector.table_attributes())
        classifier = OnlineClassifier(self._detector)
        arrivals = ArrivalStream(store)
        total = arrivals.total

        verdicts: Dict[int, InconsistencyVerdict] = {}
        batch_seconds: List[float] = []
        refreshes: List[Dict] = []
        start_row = 0
        batches_done = 0
        resumed_from: Optional[int] = None
        if resume:
            if checkpointer is None:
                raise ValueError("resume=True requires a checkpointer")
            state = self._load_resume_state(checkpointer)
            if state is not None:
                if int(state["batch_size"]) != self.batch_size or int(state["rows_total"]) != total:
                    raise CheckpointError(
                        "checkpoint does not match this replay "
                        "(different batch size or store)"
                    )
                ingestor.restore_state(state["ingest"])
                classifier.restore(
                    filter_list=state["filter_list"],
                    temporal_state=state["temporal_state"],
                    rows_scored=state["rows_scored"],
                    swaps=state["swaps"],
                )
                if self._refresher is not None and state.get("refresher") is not None:
                    self._refresher.restore_state(state["refresher"])
                verdicts.update(state["verdicts"])
                refreshes = [dict(entry) for entry in state["refreshes"]]
                start_row = int(state["cursor_rows"])
                batches_done = int(state["batches"])
                resumed_from = batches_done

        scored_this_run = 0
        # One switch read per replay keeps the disabled path at exactly
        # the pre-telemetry cost; the enabled path adds two clock reads
        # and three histogram observes per batch (bench-gated ≤ 2%).
        telemetry_on = obs.telemetry_enabled()
        tracer = obs.tracer()
        started = time.perf_counter()
        for start in range(start_row, total, self.batch_size):
            if max_batches is not None and scored_this_run >= max_batches:
                break
            batch_wall = time.time() if telemetry_on else 0.0
            batch_started = time.perf_counter()
            batch = arrivals.ingest(ingestor, start, self.batch_size)
            ingested = time.perf_counter()
            verdicts.update(classifier.classify_batch(batch))
            elapsed = time.perf_counter() - batch_started
            batch_seconds.append(elapsed)
            index = batches_done
            batches_done += 1
            scored_this_run += 1
            if telemetry_on:
                _BATCH_SECONDS.observe(ingested - batch_started, stage="ingest")
                _BATCH_SECONDS.observe(elapsed - (ingested - batch_started), stage="classify")
                _BATCH_SECONDS.observe(elapsed, stage="total")
                tracer.record(
                    "stream.batch",
                    ts=batch_wall,
                    duration=elapsed,
                    index=index,
                    rows=batch.n_rows,
                )
            if self._refresher is not None:
                refresh_started = time.perf_counter() if telemetry_on else 0.0
                self._refresher.observe_batch(batch)
                refreshed = self._refresher.maybe_refresh()
                if telemetry_on:
                    _BATCH_SECONDS.observe(
                        time.perf_counter() - refresh_started, stage="refresh"
                    )
                if refreshed is not None:
                    classifier.swap_filter_list(refreshed)
                    refreshes.append({"batch": index, "rules": len(refreshed)})
            if checkpointer is not None and checkpointer.due(batches_done):
                checkpointer.save(
                    {
                        "batch_size": self.batch_size,
                        "rows_total": total,
                        "cursor_rows": min(start + self.batch_size, total),
                        "batches": batches_done,
                        "ingest": ingestor.export_state(),
                        "filter_list": classifier.filter_list,
                        "temporal_state": classifier.temporal_state,
                        "rows_scored": classifier.rows_scored,
                        "swaps": classifier.swaps,
                        "refresher": (
                            self._refresher.export_state()
                            if self._refresher is not None
                            else None
                        ),
                        "verdicts": dict(verdicts),
                        "refreshes": [dict(entry) for entry in refreshes],
                    }
                )
        seconds = time.perf_counter() - started
        return ReplayResult(
            verdicts=verdicts,
            rows=total,
            batches=batches_done,
            seconds=seconds,
            batch_seconds=batch_seconds,
            refreshes=refreshes,
            checkpoints_saved=0 if checkpointer is None else checkpointer.saves,
            checkpoint_failures=0 if checkpointer is None else checkpointer.failures,
            resumed_from_batch=resumed_from,
        )

    @staticmethod
    def _load_resume_state(checkpointer: StreamCheckpointer) -> Optional[Dict]:
        """The published snapshot, or ``None`` — unreadable counts as none.

        A corrupt snapshot (torn by a crash the atomic writer could not
        prevent, or tampered) must not block recovery: warn and replay
        from row zero.  A *mismatched* snapshot (wrong batch size or
        store) still raises — that is a configuration error, not damage.
        """

        try:
            return checkpointer.load()
        except CheckpointError as exc:
            logger.warning("checkpoint unreadable (%s); replaying from the start", exc)
            return None


# -- verdict serialisation ------------------------------------------------------


def verdicts_to_jsonable(verdicts: Dict[int, InconsistencyVerdict]) -> List[Dict]:
    """Canonical JSON-able form of a verdict mapping, sorted by request id.

    The byte-identity oracle between the streaming and batch engines runs
    over this serialisation (CI's stream-replay smoke and the CLI's
    ``--verify-batch`` both use it), so it captures everything a verdict
    carries: the winning spatial rule and every temporal flag with its
    full evidence.
    """

    document = []
    for request_id in sorted(verdicts):
        verdict = verdicts[request_id]
        document.append(
            {
                "request_id": int(request_id),
                "spatial_rule": (
                    None if verdict.spatial_rule is None else verdict.spatial_rule.to_dict()
                ),
                "temporal_flags": [
                    {
                        "key_kind": flag.key_kind,
                        "key": flag.key,
                        "attribute": flag.attribute.value,
                        "previous_values": list(flag.previous_values),
                        "new_value": flag.new_value,
                    }
                    for flag in verdict.temporal_flags
                ],
            }
        )
    return document


def verdicts_digest(verdicts: Dict[int, InconsistencyVerdict]) -> str:
    """SHA-256 over the canonical verdict serialisation."""

    payload = json.dumps(
        verdicts_to_jsonable(verdicts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
