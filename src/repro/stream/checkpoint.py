"""Crash-safe checkpoint/restore for stream replays.

A killed ``repro stream``/``repro serve`` process used to lose the whole
online state — ingest vocabulary, per-visitor temporal seen-state, the
deployed filter list and the stream cursor — and had to replay from row
zero.  This module persists that state periodically so a restarted
replay continues from the last snapshot and produces verdicts
byte-identical to an uninterrupted run from that batch onward
(``tests/test_checkpoint.py`` pins it).

The on-disk format is a single self-validating blob::

    RPCK | version (4 bytes, big-endian) | sha256(payload) | payload

where the payload is a pickle of the driver's state mapping.  Every
write is crash-safe: bytes land in a same-directory temporary file, are
fsynced, and only then atomically replace the published
``stream_checkpoint`` — a crash mid-write leaves the previous snapshot
intact, never a torn file, and the checksum catches any corruption that
slips through anyway (:class:`CheckpointError` on load).  The
``checkpoint_write`` fault point fires between fsync and rename, which
is how the fault matrix models a crash at the worst possible moment.

Checkpointing is **best-effort by design**: :meth:`StreamCheckpointer.save`
never raises into the scoring loop.  A failed snapshot is counted and
logged; the stream keeps scoring and the next due boundary tries again —
losing a snapshot costs recovery granularity, never correctness.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro import faults

logger = logging.getLogger("repro.stream")

#: Leading magic bytes of a checkpoint blob.
CHECKPOINT_MAGIC = b"RPCK"

#: Current checkpoint format version (newer versions refuse to load).
CHECKPOINT_VERSION = 1

#: The single published snapshot file inside a checkpoint directory
#: (atomic replace keeps exactly one valid snapshot at all times).
CHECKPOINT_FILENAME = "stream_checkpoint"

#: Default snapshot cadence, in scored batches.
DEFAULT_EVERY_BATCHES = 16


class CheckpointError(ValueError):
    """A checkpoint could not be read, or does not match the replay."""


def write_checkpoint(path, state: Dict, *, key: str = "") -> None:
    """Atomically persist *state* as a checksummed checkpoint blob at *path*.

    Same-directory temp file + fsync + ``os.replace`` + directory fsync:
    after a crash at any instant, *path* is either the previous blob or
    the new one, both intact.  *key* feeds the ``checkpoint_write`` fault
    point (fired after fsync, before the rename).
    """

    path = Path(path)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = (
        CHECKPOINT_MAGIC
        + CHECKPOINT_VERSION.to_bytes(4, "big")
        + hashlib.sha256(payload).digest()
    )
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        faults.check("checkpoint_write", key, path=tmp)
        os.replace(tmp, path)
        directory_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def read_checkpoint(path) -> Dict:
    """Load and validate a checkpoint blob written by :func:`write_checkpoint`.

    Raises :class:`CheckpointError` for anything untrustworthy: a
    non-checkpoint file, a newer format, a checksum mismatch (torn or
    tampered payload) or an unpicklable payload.
    """

    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"checkpoint {path} is unreadable: {exc}") from exc
    header_size = len(CHECKPOINT_MAGIC) + 4 + 32
    if len(blob) < header_size or blob[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a stream checkpoint")
    version = int.from_bytes(blob[len(CHECKPOINT_MAGIC) : len(CHECKPOINT_MAGIC) + 4], "big")
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}; "
            f"this build reads up to {CHECKPOINT_VERSION}"
        )
    digest = blob[len(CHECKPOINT_MAGIC) + 4 : header_size]
    payload = blob[header_size:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"checkpoint {path} is corrupt (checksum mismatch)")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"checkpoint {path} payload is undecodable: {exc}") from exc


class StreamCheckpointer:
    """Periodic snapshot writer/reader for one replay's checkpoint directory."""

    def __init__(self, directory, *, every_batches: int = DEFAULT_EVERY_BATCHES):
        if every_batches < 1:
            raise ValueError(f"every_batches must be >= 1, got {every_batches}")
        self.directory = Path(directory)
        self.every_batches = int(every_batches)
        #: snapshots successfully published / failed attempts this run
        self.saves = 0
        self.failures = 0

    @property
    def path(self) -> Path:
        return self.directory / CHECKPOINT_FILENAME

    def due(self, batches_done: int) -> bool:
        """Whether a snapshot is due after *batches_done* scored batches."""

        return batches_done > 0 and batches_done % self.every_batches == 0

    def save(self, state: Dict) -> bool:
        """Best-effort atomic snapshot; returns whether it published.

        Never raises into the scoring loop: a full disk, a permission
        error or an injected ``checkpoint_write`` fault is counted,
        logged and retried at the next due boundary — the previously
        published snapshot stays valid throughout.
        """

        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_checkpoint(self.path, state, key=f"save{self.saves + self.failures}")
        except (faults.InjectedFault, OSError, pickle.PicklingError) as exc:
            self.failures += 1
            logger.warning(
                "checkpoint write failed (%s); previous snapshot stays valid", exc
            )
            return False
        self.saves += 1
        return True

    def load(self) -> Optional[Dict]:
        """The published snapshot, or ``None`` when none exists yet.

        Raises :class:`CheckpointError` when a snapshot exists but cannot
        be trusted.
        """

        if not self.path.exists():
            return None
        return read_checkpoint(self.path)
