"""Streaming detection subsystem: online FP-Inconsistent scoring.

Every other layer of the reproduction is batch-only — verdicts exist once
a whole corpus has been assembled and mined.  This package turns the
detection stack into a *servable* engine that scores requests as they
arrive, in four pieces:

* :class:`~repro.stream.ingest.StreamIngestor` — encodes arriving
  micro-batches (record objects or ``RecordColumns`` row slices) against a
  growing attribute-code vocabulary, emitting ``core.columnar`` tables;
* :class:`~repro.stream.classifier.OnlineClassifier` — vectorized compiled
  filter-list matching per batch plus **incremental** temporal detection
  (cross-batch :class:`~repro.core.temporal.TemporalStreamState`);
* :class:`~repro.stream.refresh.FilterListRefresher` — periodic re-mining
  over a sliding window of ingested rows, hot-swapped at batch boundaries;
* :class:`~repro.stream.replay.ReplayDriver` — replays any cached corpus
  through the stream in timestamp order; with a frozen filter list the
  verdicts are identical to the batch pipeline's (the subsystem's oracle);
* :class:`~repro.stream.checkpoint.StreamCheckpointer` — periodic
  crash-safe snapshots of the full online state, so an interrupted replay
  resumes byte-identically (``docs/robustness.md``).

``repro stream`` on the command line and
``benchmarks/bench_stream_scaling.py`` drive this package; the
architecture is documented in ``docs/streaming.md``.
"""

from repro.stream.checkpoint import CheckpointError, StreamCheckpointer
from repro.stream.classifier import OnlineClassifier
from repro.stream.ingest import StreamIngestor
from repro.stream.refresh import FilterListRefresher
from repro.stream.replay import (
    DEFAULT_BATCH_SIZE,
    ArrivalStream,
    ReplayDriver,
    ReplayResult,
    verdicts_digest,
    verdicts_to_jsonable,
)

__all__ = [
    "ArrivalStream",
    "CheckpointError",
    "DEFAULT_BATCH_SIZE",
    "FilterListRefresher",
    "OnlineClassifier",
    "ReplayDriver",
    "ReplayResult",
    "StreamCheckpointer",
    "StreamIngestor",
    "verdicts_digest",
    "verdicts_to_jsonable",
]
