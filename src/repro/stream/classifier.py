"""Online FP-Inconsistent scoring of columnar micro-batches.

The :class:`OnlineClassifier` is the serving-side counterpart of
:meth:`FPInconsistent.classify_table`: the same vectorized spatial match
(compiled filter list + generalised Location predicate) per batch, but
temporal detection runs **incrementally** — per-visitor seen-state lives in
a :class:`~repro.core.temporal.TemporalStreamState` carried across batches
instead of being replayed from the whole history on every call.

Scoring a stream of batches in arrival order therefore produces verdicts
identical to one batch classification of the concatenated table (pinned by
``tests/test_stream.py``), while each call touches only the arriving rows.

The classifier isolates its own detector clone, so the fitted detector a
caller hands in is never mutated — hot-swapping a refreshed filter list
(:meth:`OnlineClassifier.swap_filter_list`) affects only this stream.
"""

from __future__ import annotations

from typing import Dict

from repro import obs
from repro.core.columnar import ColumnarTable
from repro.core.detector import FPInconsistent, InconsistencyVerdict
from repro.core.rules import FilterList

_ROWS_SCORED = obs.counter(
    "repro_stream_rows_scored_total", "Rows scored by online classifiers."
)
_SWAPS = obs.counter(
    "repro_stream_refresh_swaps_total",
    "Filter-list hot-swaps deployed into online classifiers.",
)


class OnlineClassifier:
    """Scores micro-batches with persistent cross-batch temporal state."""

    def __init__(self, detector: FPInconsistent):
        # A private clone: the temporal detector is configuration plus
        # state, and the stream must neither inherit nor leak state; the
        # filter list reference is swappable without touching the source.
        self._detector = detector.isolated_clone()
        self._state = self._detector.temporal_detector.new_stream_state()
        self._rows_scored = 0
        self._swaps = 0

    # -- introspection ---------------------------------------------------------

    @property
    def filter_list(self) -> FilterList:
        return self._detector.filter_list

    @property
    def temporal_state(self):
        """The cross-batch seen-state (observability/tests)."""

        return self._state

    @property
    def rows_scored(self) -> int:
        return self._rows_scored

    @property
    def swaps(self) -> int:
        """How many filter-list hot-swaps this stream has performed."""

        return self._swaps

    # -- scoring ---------------------------------------------------------------

    def classify_batch(self, batch: ColumnarTable) -> Dict[int, InconsistencyVerdict]:
        """Score one micro-batch; returns a verdict per ``request_id``.

        The filter list is recompiled against the batch (the compiled
        index keys on vocabulary sizes, which grow between batches), the
        Location predicate fills misses, and the temporal detector updates
        the stream's seen-state in place.
        """

        verdicts = self._detector.classify_table(
            batch, workers=1, temporal_state=self._state
        )
        self._rows_scored += batch.n_rows
        _ROWS_SCORED.inc(batch.n_rows)
        return verdicts

    def swap_filter_list(self, filter_list: FilterList) -> None:
        """Deploy a refreshed rule set, effective from the next batch.

        Matching is stateless (recompiled per batch) and temporal state is
        rule-independent, so the swap is deterministic at the batch
        boundary: every row of batch *k* is scored by exactly one list.
        """

        self._detector.filter_list = filter_list
        self._swaps += 1
        _SWAPS.inc()

    def restore(
        self,
        *,
        filter_list: FilterList = None,
        temporal_state=None,
        rows_scored: int = 0,
        swaps: int = 0,
    ) -> "OnlineClassifier":
        """Adopt state carried over from a failed or checkpointed stream.

        The gateway's supervision path rebuilds a crashed worker as a
        fresh classifier and hands it the failed worker's deployed filter
        list, cross-batch seen-state and counters; the checkpoint restore
        path does the same from a snapshot.  Unlike
        :meth:`swap_filter_list` this does not count as a hot-swap — the
        restored stream continues exactly where the original stood.
        Returns ``self`` for chaining.
        """

        if filter_list is not None:
            self._detector.filter_list = filter_list
        if temporal_state is not None:
            self._state = temporal_state
        self._rows_scored = int(rows_scored)
        self._swaps = int(swaps)
        return self
