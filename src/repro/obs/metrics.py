"""Process-global metrics registry: counters, gauges, histograms.

Design rules, in the spirit of :mod:`repro.faults`:

- **Zero dependencies, near-zero cost when off.**  Whether telemetry is
  enabled is a single cached environment lookup; a disabled gated
  instrument returns after one method call.
- **One source of truth.**  Pre-existing ad-hoc counters
  (``materialized_record_count()``, shard fault stats, gateway health)
  are registered with ``always=True`` so they count in untraced runs
  too; their legacy accessors read back through the registry.
- **Labels are kwargs.**  ``c.inc(2, status="hit")`` records into the
  ``status="hit"`` series of ``c``; the unlabeled series is the empty
  label set.  Label values are stringified at record time.

Instruments are interned by name: asking the registry for an existing
name returns the same object (with the same type, or ``ValueError``).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Environment variable that switches gated instruments (and the span
#: tracer) on.  Anything but ""/"0"/"false"/"off"/"no" enables.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_FALSEY = frozenset({"", "0", "false", "off", "no"})

#: Cached parse of the environment switch, keyed on the raw value so a
#: changed environment (tests, CLI) is picked up on the next check.
_ENV_STATE: Dict[str, object] = {"raw": object(), "on": False}

#: Programmatic override: ``None`` defers to the environment.
_OVERRIDE: Optional[bool] = None


def telemetry_enabled() -> bool:
    """Whether gated instruments and the tracer currently record."""

    if _OVERRIDE is not None:
        return _OVERRIDE
    raw = os.environ.get(TELEMETRY_ENV_VAR)
    if raw is not _ENV_STATE["raw"]:
        _ENV_STATE["raw"] = raw
        _ENV_STATE["on"] = raw is not None and raw.strip().lower() not in _FALSEY
    return bool(_ENV_STATE["on"])


def set_telemetry(on: Optional[bool]) -> None:
    """Override the telemetry switch in-process (``None`` restores env).

    The override does **not** reach process-pool workers; use
    :func:`enable_telemetry` when shard spans must record too.
    """

    global _OVERRIDE
    _OVERRIDE = on


def enable_telemetry() -> None:
    """Enable telemetry via the environment, so child processes inherit.

    This is what the CLI calls when ``--trace``/``--metrics-out`` is
    given: process-pool shard workers see the exported variable and
    record their spans for the coordinator to adopt.
    """

    os.environ[TELEMETRY_ENV_VAR] = "1"


#: Label sets are stored as sorted ``(name, value)`` tuples.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Shared bookkeeping: name, help text, the enabled gate, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", *, always: bool = False) -> None:
        self.name = name
        self.help = help
        #: Always-on instruments back legacy accessors and record even
        #: while telemetry is disabled.
        self.always = bool(always)
        self._lock = threading.Lock()

    def _recording(self) -> bool:
        return self.always or telemetry_enabled()


class Counter(_Instrument):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", *, always: bool = False) -> None:
        super().__init__(name, help, always=always)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if not self._recording():
            return
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {value})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """The sum across every label set."""

        with self._lock:
            return sum(self._values.values())

    def series(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(key), "value": value} for key, value in items]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Instrument):
    """A point-in-time value per label set (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", *, always: bool = False) -> None:
        super().__init__(name, help, always=always)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def series(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [{"labels": dict(key), "value": value} for key, value in items]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


#: Default histogram buckets: latency in seconds, 1 ms .. 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram(_Instrument):
    """Fixed upper-bound buckets plus sum and count, per label set.

    Bucket counts are **non-cumulative** internally; exporters produce
    the cumulative ``le`` form Prometheus expects.  The implicit
    ``+Inf`` bucket is the last slot.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        always: bool = False,
    ) -> None:
        super().__init__(name, help, always=always)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.buckets = bounds
        self._series: Dict[LabelKey, Dict] = {}

    def _slot(self, key: LabelKey) -> Dict:
        slot = self._series.get(key)
        if slot is None:
            slot = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            self._series[key] = slot
        return slot

    def observe(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        value = float(value)
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            slot = self._slot(_label_key(labels))
            slot["counts"][index] += 1
            slot["sum"] += value
            slot["count"] += 1

    def snapshot(self, **labels: object) -> Dict:
        """``{"counts": [...], "sum": s, "count": n}`` for one label set."""

        with self._lock:
            slot = self._slot(_label_key(labels))
            return {
                "counts": list(slot["counts"]),
                "sum": slot["sum"],
                "count": slot["count"],
            }

    def series(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._series.items())
            return [
                {
                    "labels": dict(key),
                    "counts": list(slot["counts"]),
                    "sum": slot["sum"],
                    "count": slot["count"],
                }
                for key, slot in items
            ]

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """Interns instruments by name and snapshots them for export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    def _intern(self, cls, name: str, help: str, always: bool, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                if always and not existing.always:
                    existing.always = True
                return existing
            metric = cls(name, help, always=always, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", *, always: bool = False) -> Counter:
        return self._intern(Counter, name, help, always)

    def gauge(self, name: str, help: str = "", *, always: bool = False) -> Gauge:
        return self._intern(Gauge, name, help, always)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        always: bool = False,
    ) -> Histogram:
        return self._intern(Histogram, name, help, always, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Instrument]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def value(self, name: str, **labels: object) -> float:
        """A counter's or gauge's current value (0.0 when unregistered)."""

        metric = self.get(name)
        if metric is None:
            return 0.0
        if not isinstance(metric, (Counter, Gauge)):
            raise ValueError(f"metric {name!r} is a {metric.kind}, not a scalar")
        return metric.value(**labels)

    def snapshot(self) -> Dict:
        """Every non-empty series, as one JSON-able mapping by name."""

        document: Dict[str, Dict] = {}
        for metric in self.metrics():
            series = metric.series()
            if not series:
                continue
            entry: Dict = {"type": metric.kind, "help": metric.help, "series": series}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            document[metric.name] = entry
        return document

    def reset(self) -> None:
        """Zero every series; registrations (and helps) survive."""

        for metric in self.metrics():
            metric.reset()


#: The process-global default registry all instrumentation records into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, help: str = "", *, always: bool = False) -> Counter:
    return _REGISTRY.counter(name, help, always=always)


def gauge(name: str, help: str = "", *, always: bool = False) -> Gauge:
    return _REGISTRY.gauge(name, help, always=always)


def histogram(
    name: str,
    help: str = "",
    *,
    buckets: Iterable[float] = DEFAULT_BUCKETS,
    always: bool = False,
) -> Histogram:
    return _REGISTRY.histogram(name, help, buckets=buckets, always=always)


def metric_value(name: str, **labels: object) -> float:
    """Read a scalar metric off the default registry (0.0 if absent)."""

    return _REGISTRY.value(name, **labels)
