"""Exporters: JSON snapshot, Prometheus text exposition, Chrome trace.

Three consumers, three formats, one registry/tracer:

- :func:`metrics_snapshot` — the JSON-able mapping attached to every
  ``--json`` document under the ``"telemetry"`` key.
- :func:`prometheus_text` — text exposition (``# HELP``/``# TYPE`` plus
  sample lines) for ``--metrics-out metrics.prom``; histograms expand
  to cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``.
- :func:`chrome_trace` — a ``{"traceEvents": [...]}`` document of
  complete (``"ph": "X"``) events for ``--trace trace.json``, loadable
  in ``chrome://tracing`` or Perfetto.  Timestamps are rebased to the
  earliest span so the timeline starts at zero.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, registry
from repro.obs.trace import Tracer, tracer


def metrics_snapshot(reg: Optional[MetricsRegistry] = None) -> Dict:
    """Every non-empty metric series as one JSON-able mapping."""

    return (reg or registry()).snapshot()


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    if bound == int(bound):
        return f"{bound:.1f}"
    return repr(float(bound))


def prometheus_text(reg: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text-exposition format (version 0.0.4)."""

    lines: List[str] = []
    for metric in (reg or registry()).metrics():
        series = metric.series()
        if not series:
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for entry in series:
                labels = _format_labels(entry["labels"])
                lines.append(f"{metric.name}{labels} {_format_value(entry['value'])}")
        elif isinstance(metric, Histogram):
            for entry in series:
                cumulative = 0
                for bound, count in zip(metric.buckets, entry["counts"]):
                    cumulative += count
                    labels = _format_labels(entry["labels"], {"le": _format_le(bound)})
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                cumulative += entry["counts"][-1]
                labels = _format_labels(entry["labels"], {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                base = _format_labels(entry["labels"])
                lines.append(f"{metric.name}_sum{base} {repr(float(entry['sum']))}")
                lines.append(f"{metric.name}_count{base} {_format_value(entry['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(trc: Optional[Tracer] = None) -> Dict:
    """The tracer's spans as a Chrome trace-event JSON document."""

    records = sorted((trc or tracer()).records(), key=lambda r: (r.ts, -r.duration))
    events: List[Dict] = []
    seen_pids: Dict[int, bool] = {}
    epoch = records[0].ts if records else 0.0
    own_pid = None
    if records:
        import os

        own_pid = os.getpid()
    for record in records:
        if record.pid not in seen_pids:
            seen_pids[record.pid] = True
            label = "repro" if record.pid == own_pid else f"shard-worker {record.pid}"
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": record.pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ts": (record.ts - epoch) * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.pid,
                "tid": record.tid,
                "args": dict(record.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_prometheus(path: str, reg: Optional[MetricsRegistry] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(reg))


def write_chrome_trace(path: str, trc: Optional[Tracer] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trc), handle)
        handle.write("\n")
