"""Unified telemetry: metrics registry, span tracer and exporters.

``repro.obs`` is the one queryable surface for everything the system
measures about itself.  It has two halves:

``repro.obs.metrics``
    A process-global :class:`MetricsRegistry` of counters, gauges and
    fixed-bucket histograms.  Instruments are cheap enough for hot
    paths and — unless registered with ``always=True`` — record nothing
    while telemetry is disabled.
``repro.obs.trace``
    A thread-safe span tracer: nested wall-clock spans with attributes.
    Process-pool shard workers record spans locally and ship them back
    in their :class:`~repro.analysis.engine.ShardResult`; the
    coordinator adopts them so one timeline covers the whole build.

Telemetry is **off by default**.  It turns on when the environment
variable ``REPRO_TELEMETRY`` is set to anything but ``0``/``false``/
``off``/``no``, when a ``repro`` subcommand receives ``--trace`` or
``--metrics-out`` (the CLI exports the environment variable so
process-pool workers inherit it), or programmatically via
:func:`set_telemetry`.  Instrumentation never perturbs results: every
byte-identity oracle holds with telemetry on, and the stream-replay
overhead budget is measured and gated by
``benchmarks/bench_stream_scaling.py``.

A few counters are *always on* regardless of the switch: they back
pre-existing public accessors (``materialized_record_count()``,
``CorpusEngine.last_plan["faults"]``, ``GatewayHealth``) that must keep
answering even in untraced runs.  The registry is their single source
of truth; the old accessors remain as back-compat reads.

Exporters (``repro.obs.export``): a JSON metrics snapshot (attached to
every ``--json`` document), Prometheus text exposition
(``--metrics-out metrics.prom``) and a Chrome trace-event timeline
(``--trace trace.json``, loadable in ``chrome://tracing`` / Perfetto).
See ``docs/observability.md`` for the metric catalogue.
"""

from repro.obs.metrics import (
    TELEMETRY_ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enable_telemetry,
    gauge,
    histogram,
    metric_value,
    registry,
    set_telemetry,
    telemetry_enabled,
)
from repro.obs.trace import Span, SpanRecord, Tracer, tracer
from repro.obs.export import (
    chrome_trace,
    metrics_snapshot,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)


def reset_all() -> None:
    """Zero every metric and drop every recorded span (tests, benches)."""

    registry().reset()
    tracer().reset()


__all__ = [
    "TELEMETRY_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "counter",
    "enable_telemetry",
    "gauge",
    "histogram",
    "metric_value",
    "metrics_snapshot",
    "prometheus_text",
    "registry",
    "reset_all",
    "set_telemetry",
    "telemetry_enabled",
    "tracer",
    "write_chrome_trace",
    "write_prometheus",
]
