"""Thread-safe span tracer with wall-clock timing and attributes.

Spans nest per thread: entering a span pushes it on a thread-local
stack, so each record knows its parent span and depth.  Timestamps are
wall-clock (``time.time``) so spans recorded in different processes —
shard workers ship theirs back inside ``ShardResult`` — line up on one
timeline; durations come from ``time.perf_counter`` deltas.

A :class:`Span` always measures its duration (callers like the report
engine read ``span.duration`` for their own output), but the record is
only retained while telemetry is enabled, so a disabled tracer holds
nothing and costs two clock reads per span.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import telemetry_enabled


@dataclass
class SpanRecord:
    """One finished span — plain data, picklable for shard transport."""

    name: str
    #: Wall-clock start, seconds since the epoch.
    ts: float
    #: Wall-clock duration in seconds (``perf_counter`` delta).
    duration: float
    pid: int
    tid: int
    #: Nesting depth within the recording thread (0 = top level).
    depth: int = 0
    #: Name of the enclosing span, if any.
    parent: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class Span:
    """Context manager measuring one span; records on exit if enabled."""

    __slots__ = ("name", "attrs", "duration", "_tracer", "_started", "_ts", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.duration = 0.0
        self._tracer = tracer
        self._started = 0.0
        self._ts = 0.0
        self._depth = 0
        self._parent: Optional[str] = None

    def set(self, **attrs: object) -> None:
        """Attach attributes after entry (e.g. result sizes)."""

        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._ts = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._started
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if telemetry_enabled():
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            self._tracer._append(
                SpanRecord(
                    name=self.name,
                    ts=self._ts,
                    duration=self.duration,
                    pid=os.getpid(),
                    tid=threading.get_ident(),
                    depth=self._depth,
                    parent=self._parent,
                    attrs=self.attrs,
                )
            )


class Tracer:
    """Collects span records; thread-safe; mergeable across processes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def span(self, name: str, **attrs: object) -> Span:
        """A context manager timing ``name`` with the given attributes."""

        return Span(self, name, attrs)

    def record(
        self, name: str, *, ts: float, duration: float, **attrs: object
    ) -> None:
        """Append an already-measured span (hot loops that time themselves).

        No-op while telemetry is disabled, like a :class:`Span` exit.
        """

        if not telemetry_enabled():
            return
        self._append(
            SpanRecord(
                name=name,
                ts=ts,
                duration=duration,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=attrs,
            )
        )

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        """Merge spans recorded elsewhere (shard workers) onto this timeline."""

        records = list(records)
        if not records:
            return
        with self._lock:
            self._records.extend(records)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()


#: The process-global default tracer all instrumentation records into.
_TRACER = Tracer()


def tracer() -> Tracer:
    return _TRACER
