"""Bot service profiles.

A :class:`BotServiceProfile` captures everything the traffic engine needs
to emit requests on behalf of one purchased bot service: the volume, the
mixture of evasion strategies, the proxy pool, the cookie hygiene and the
degree of (in)consistency of its alterations.

The per-service evasion-rate targets are *calibration inputs* taken from
Table 1 of the paper — the measured behaviour of real underground services
— because the services themselves cannot be re-purchased offline.  All
downstream results (attribute analyses, inconsistency mining, the
FP-Inconsistent improvements of Tables 3 and 4) are computed from the
generated traffic, not injected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BotDEvasionFlavor(str, enum.Enum):
    """How a service hits BotD's blind spots when it chooses to evade."""

    PLUGINS = "plugins"
    TOUCH = "touch"
    MIXED = "mixed"


@dataclass(frozen=True)
class BotServiceProfile:
    """Configuration of one bot service.

    Attributes
    ----------
    name:
        Service label (``"S1"`` … ``"S20"``).
    num_requests:
        Number of requests the service sends at scale 1.0 (Table 1 volume).
    datadome_evasion_target / botd_evasion_target:
        Calibrated per-request probabilities of adopting a configuration
        that the respective detector model does not flag (Table 1).
    botd_flavor:
        Whether BotD evasion is achieved via plugin injection, touch
        spoofing, or a mixture (Sections 5.3.1 and 5.3.3).
    num_workers:
        Number of distinct automation workers (devices) operating the
        campaign; governs how many requests share a cookie / IP.
    device_spoof_rate:
        Probability of impersonating a popular consumer device in the
        User-Agent.
    full_consistency:
        Probability that a device spoof uses a curated, fully consistent
        emulation profile (no spatial inconsistency introduced).
    consistency:
        Probability that each correlated attribute is fixed up when a
        *sloppy* alteration is made (low values → many spatial
        inconsistencies).
    session_reset_rate:
        Probability that a worker re-rolls its whole altered configuration
        before a request (new session); between resets the worker re-uses
        its previous fingerprint and proxy address.
    platform_rotation_rate:
        Probability of rotating ``navigator.platform`` when a session is
        re-rolled.
    memory_rotation_rate:
        Probability of re-drawing ``deviceMemory`` when a session is
        re-rolled.
    cookie_retention:
        Probability a worker still holds its honey-site cookie on the next
        visit.
    datacenter_fraction:
        Fraction of requests routed through datacenter/hosting IP space
        (the remainder uses residential proxies).
    advertised_region:
        Region the service sells traffic "from" (``None`` when it makes no
        such claim); drives the Section 6.2 geolocation behaviour.
    ip_region_match_rate:
        Probability the *IP address* actually sits in the advertised
        region.
    timezone_region_match_rate:
        Probability the *browser timezone* is set to match the advertised
        region (lower than the IP rate for the sloppy services).
    forced_colors_rate:
        Probability of running with forced-colors active (always detected
        by DataDome; only meaningful for requests not trying to evade it).
    webdriver_leak_rate:
        Probability of failing to patch ``navigator.webdriver``.
    requests_per_day_jitter:
        Relative day-to-day volume jitter used by the campaign scheduler.
    """

    name: str
    num_requests: int
    datadome_evasion_target: float
    botd_evasion_target: float
    botd_flavor: BotDEvasionFlavor = BotDEvasionFlavor.MIXED
    num_workers: int = 40
    device_spoof_rate: float = 0.55
    full_consistency: float = 0.5
    consistency: float = 0.15
    session_reset_rate: float = 0.6
    platform_rotation_rate: float = 0.18
    memory_rotation_rate: float = 0.3
    cookie_retention: float = 0.07
    datacenter_fraction: float = 0.6
    advertised_region: Optional[str] = None
    ip_region_match_rate: float = 0.92
    timezone_region_match_rate: float = 0.75
    forced_colors_rate: float = 0.3
    webdriver_leak_rate: float = 0.0
    requests_per_day_jitter: float = 0.5

    def __post_init__(self) -> None:
        for field_name in (
            "datadome_evasion_target",
            "botd_evasion_target",
            "device_spoof_rate",
            "full_consistency",
            "consistency",
            "session_reset_rate",
            "platform_rotation_rate",
            "memory_rotation_rate",
            "cookie_retention",
            "datacenter_fraction",
            "ip_region_match_rate",
            "timezone_region_match_rate",
            "forced_colors_rate",
            "webdriver_leak_rate",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be within [0, 1], got {value}")
        if self.num_requests < 1:
            raise ValueError("num_requests must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")

    def scaled_requests(self, scale: float) -> int:
        """Request volume at the given corpus *scale* (at least 1)."""

        if scale <= 0:
            raise ValueError("scale must be positive")
        return max(1, int(round(self.num_requests * scale)))
