"""Bot traffic engine.

Drives requests from a :class:`~repro.bots.service.BotServiceProfile` to a
:class:`~repro.honeysite.HoneySite`, reproducing the campaign structure of
the paper: a fixed pool of automation workers per service, requests spread
over a three-month campaign with volume spikes at purchase renewals
(Figure 9), session-based fingerprint alteration, proxy IP selection and
cookie (non-)retention.

The worker model is session based.  A worker keeps one altered
configuration (fingerprint + proxy address) for a stretch of requests and
re-rolls it with probability ``session_reset_rate`` before a request.
Whether the honey-site cookie survives a re-roll is governed by
``cookie_retention``; a retained cookie paired with a re-rolled
configuration is exactly what produces the temporal inconsistencies of
Section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bots.service import BotDEvasionFlavor, BotServiceProfile
from repro.bots.strategies import (
    apply_consistent_device_spoof,
    apply_device_spoof,
    apply_forced_colors,
    apply_low_concurrency,
    apply_memory_rotation,
    apply_platform_rotation,
    apply_plugin_injection,
    apply_server_concurrency,
    apply_timezone,
    apply_touch_spoof,
    apply_webdriver_leak,
    base_bot_fingerprint,
    base_bot_values,
    consistent_device_spoof_changes,
    device_spoof_changes,
    low_concurrency_changes,
    memory_rotation_changes,
    platform_rotation_changes,
    plugin_injection_changes,
    server_concurrency_changes,
    touch_spoof_changes,
)
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.geo.timezones import ADVERTISED_REGIONS, COUNTRY_TIMEZONES
from repro.honeysite.site import HoneySite, SessionMaterial, SessionRecorder
from repro.honeysite.storage import SECONDS_PER_DAY
from repro.network.headers import build_headers
from repro.network.request import WebRequest
from repro.seeding import derive_rng

#: Country mix used when a service makes no geographic promise.  Weighted
#: toward the United States, where most commodity bot infrastructure sits.
DEFAULT_COUNTRY_MIX: Tuple[Tuple[str, float], ...] = (
    ("United States of America", 0.48),
    ("Germany", 0.10),
    ("France", 0.06),
    ("United Kingdom", 0.06),
    ("Canada", 0.05),
    ("Netherlands", 0.05),
    ("China", 0.05),
    ("India", 0.05),
    ("Russia", 0.04),
    ("Brazil", 0.03),
    ("Singapore", 0.03),
)

#: Default campaign length in days (September–November in the paper).
DEFAULT_CAMPAIGN_DAYS = 90

#: Days on which the honey-site operators renewed their purchases; volume
#: spikes right after each renewal (Figure 9).
DEFAULT_RENEWAL_DAYS: Tuple[int, ...] = (0, 30, 60)

_BASE_TIMEZONE = "America/Los_Angeles"

_COUNTRY_MIX_NAMES: Tuple[str, ...] = tuple(name for name, _weight in DEFAULT_COUNTRY_MIX)
_COUNTRY_MIX_WEIGHTS: np.ndarray = np.array([weight for _name, weight in DEFAULT_COUNTRY_MIX])
_COUNTRY_MIX_WEIGHTS /= _COUNTRY_MIX_WEIGHTS.sum()

#: Normalised cumulative country-mix weights, replicating the
#: normalisation ``Generator.choice`` applies internally so the vectorized
#: planner's ``searchsorted`` draw is bit-identical to the legacy
#: ``rng.choice(..., p=_COUNTRY_MIX_WEIGHTS)`` call.
_COUNTRY_MIX_CDF: np.ndarray = _COUNTRY_MIX_WEIGHTS.cumsum()
_COUNTRY_MIX_CDF /= _COUNTRY_MIX_CDF[-1]

#: ``sorted(ADVERTISED_REGIONS[region])``, computed once per region instead
#: of once per session.
_SORTED_REGION_COUNTRIES: Dict[str, Tuple[str, ...]] = {
    region: tuple(sorted(countries)) for region, countries in ADVERTISED_REGIONS.items()
}


@dataclass
class _Worker:
    """One automation worker of a bot service and its current session."""

    worker_id: int
    cookie: Optional[str] = None
    fingerprint: Optional[Fingerprint] = None
    ip_address: Optional[str] = None


class BotTrafficGenerator:
    """Generates and submits bot traffic for one or more services.

    ``rng`` accepts a ``numpy.random.Generator``, a plain seed or a
    ``SeedSequence`` (the sharded engine passes spawned sequences).
    """

    def __init__(self, site: HoneySite, rng=None):
        self._site = site
        self._rng = derive_rng(rng if rng is not None else 0)

    # -- campaign scheduling --------------------------------------------------

    def _daily_volumes(
        self,
        total: int,
        campaign_days: int,
        renewal_days: Sequence[int],
        jitter: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Split *total* requests over the campaign with renewal spikes."""

        days = np.arange(campaign_days, dtype=float)
        weights = np.full(campaign_days, 0.25, dtype=float)
        for renewal in renewal_days:
            delta = days - float(renewal)
            mask = delta >= 0
            weights[mask] += np.exp(-delta[mask] / 9.0)
        weights *= 1.0 + jitter * rng.random(campaign_days)
        weights /= weights.sum()
        return rng.multinomial(total, weights)

    # -- session construction ------------------------------------------------------

    def _choose_country(
        self, profile: BotServiceProfile, rng: np.random.Generator
    ) -> str:
        """Pick the country the session's proxy address will sit in."""

        if profile.advertised_region is not None:
            region_countries = sorted(ADVERTISED_REGIONS[profile.advertised_region])
            if rng.random() < profile.ip_region_match_rate:
                return region_countries[int(rng.integers(len(region_countries)))]
        return _COUNTRY_MIX_NAMES[int(rng.choice(len(_COUNTRY_MIX_NAMES), p=_COUNTRY_MIX_WEIGHTS))]

    def _choose_timezone(
        self, profile: BotServiceProfile, ip_country: str, rng: np.random.Generator
    ) -> str:
        """Pick the browser timezone the session reports."""

        if profile.advertised_region is not None:
            if rng.random() < profile.timezone_region_match_rate:
                region_countries = sorted(ADVERTISED_REGIONS[profile.advertised_region])
                country = region_countries[int(rng.integers(len(region_countries)))]
                zones = COUNTRY_TIMEZONES.get(country, (_BASE_TIMEZONE,))
                return zones[int(rng.integers(len(zones)))]
            return _BASE_TIMEZONE
        # No geographic promise: half the sessions leave the server's zone
        # in place, the rest align the zone with the proxy's country.
        if rng.random() < 0.5:
            zones = COUNTRY_TIMEZONES.get(ip_country, (_BASE_TIMEZONE,))
            return zones[int(rng.integers(len(zones)))]
        return _BASE_TIMEZONE

    def _build_fingerprint(
        self, profile: BotServiceProfile, rng: np.random.Generator
    ) -> Tuple[Fingerprint, bool]:
        """Build one altered fingerprint; returns it plus ``use_datacenter``."""

        fingerprint = base_bot_fingerprint(rng)

        # DataDome branch: adopt (or not) the configuration that its model
        # does not flag — a consumer-grade core count (Figure 5).
        evade_datadome = rng.random() < profile.datadome_evasion_target
        if evade_datadome:
            fingerprint = apply_low_concurrency(fingerprint, rng)
            use_datacenter = rng.random() < profile.datacenter_fraction
        else:
            use_datacenter = True
            if rng.random() < profile.forced_colors_rate:
                # Detected regardless of core count: forced-colors mode is a
                # give-away (Section 5.3.2), so some detected requests still
                # report few cores, matching the CDF of Figure 5.
                fingerprint = apply_low_concurrency(fingerprint, rng)
                fingerprint = apply_forced_colors(fingerprint)
            else:
                fingerprint = apply_server_concurrency(fingerprint, rng)

        # BotD branch: hit one of its blind spots (plugins / touch).
        if rng.random() < profile.botd_evasion_target:
            flavor = profile.botd_flavor
            if flavor is BotDEvasionFlavor.MIXED:
                flavor = (
                    BotDEvasionFlavor.PLUGINS if rng.random() < 0.7 else BotDEvasionFlavor.TOUCH
                )
            if flavor is BotDEvasionFlavor.PLUGINS:
                fingerprint = apply_plugin_injection(fingerprint, rng)
            else:
                fingerprint = apply_touch_spoof(fingerprint, rng, consistency=profile.consistency)

        # Impersonate a popular consumer device (Figures 6 and 7).  Curated
        # profiles spoof consistently; the rest leave correlated attributes
        # only partially repaired (Section 6.1).
        if rng.random() < profile.device_spoof_rate:
            if rng.random() < profile.full_consistency:
                fingerprint = apply_consistent_device_spoof(fingerprint, rng)
            else:
                fingerprint = apply_device_spoof(fingerprint, rng, consistency=profile.consistency)

        # Attribute rotation across sessions (Figures 9 and 10).
        if rng.random() < profile.platform_rotation_rate:
            fingerprint = apply_platform_rotation(fingerprint, rng)
        if rng.random() < profile.memory_rotation_rate:
            fingerprint = apply_memory_rotation(fingerprint, rng)
        if rng.random() < profile.webdriver_leak_rate:
            fingerprint = apply_webdriver_leak(fingerprint)

        return fingerprint, use_datacenter

    def _reset_session(
        self, worker: _Worker, profile: BotServiceProfile, rng: np.random.Generator
    ) -> None:
        """Re-roll a worker's configuration (new session)."""

        fingerprint, use_datacenter = self._build_fingerprint(profile, rng)
        country = self._choose_country(profile, rng)
        timezone = self._choose_timezone(profile, country, rng)
        fingerprint = apply_timezone(fingerprint, timezone)
        worker.fingerprint = fingerprint
        worker.ip_address = self._site.geo.allocate_address(
            rng, country=country, datacenter=use_datacenter
        )
        if worker.cookie is not None and rng.random() > profile.cookie_retention:
            worker.cookie = None

    # -- public API ------------------------------------------------------------

    def run_service(
        self,
        profile: BotServiceProfile,
        *,
        scale: float = 1.0,
        campaign_days: int = DEFAULT_CAMPAIGN_DAYS,
        renewal_days: Sequence[int] = DEFAULT_RENEWAL_DAYS,
        total_requests: Optional[int] = None,
    ) -> int:
        """Generate and submit the whole campaign of *profile*.

        *total_requests* overrides the profile's scaled volume (the corpus
        engine's sub-shards each generate one slice of a big service).
        Returns the number of requests recorded by the honey site.
        """

        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(profile.name)
        total = profile.scaled_requests(scale) if total_requests is None else int(total_requests)
        volumes = self._daily_volumes(
            total, campaign_days, renewal_days, profile.requests_per_day_jitter, rng
        )
        workers = [_Worker(worker_id=index) for index in range(profile.num_workers)]

        recorded = 0
        for day, day_volume in enumerate(volumes):
            if day_volume == 0:
                continue
            offsets = np.sort(rng.random(int(day_volume))) * SECONDS_PER_DAY
            for offset in offsets:
                worker = workers[int(rng.integers(len(workers)))]
                if worker.fingerprint is None or rng.random() < profile.session_reset_rate:
                    self._reset_session(worker, profile, rng)
                request = WebRequest(
                    url_path=url_path,
                    timestamp=day * SECONDS_PER_DAY + float(offset),
                    ip_address=worker.ip_address,
                    fingerprint=worker.fingerprint,
                    cookie=worker.cookie,
                    headers=build_headers(worker.fingerprint),
                )
                record = self._site.handle(request)
                if record is not None:
                    worker.cookie = record.cookie
                    recorded += 1
        return recorded

    # -- vectorized engine --------------------------------------------------------

    def run_service_vectorized(
        self,
        profile: BotServiceProfile,
        *,
        scale: float = 1.0,
        campaign_days: int = DEFAULT_CAMPAIGN_DAYS,
        renewal_days: Sequence[int] = DEFAULT_RENEWAL_DAYS,
        total_requests: Optional[int] = None,
        recorder: Optional[SessionRecorder] = None,
        emitter=None,
    ) -> int:
        """Vectorized, byte-identical counterpart of :meth:`run_service`.

        The campaign's randomness is drawn from the exact stream positions
        the legacy loop consumes — batched where the legacy path already
        batches (daily volumes, intra-day offsets) and through cheap
        stream-identical draws where requests interleave with session
        resets on one generator (worker picks and reset checks cannot be
        batched without changing the stream).  Everything *else* is hoisted
        out of the per-request loop: fingerprint assembly works on plain
        coerced dicts, and enrichment, headers and detector decisions are
        materialised once per session through a
        :class:`~repro.honeysite.site.SessionRecorder`.

        *emitter* optionally receives the per-request columnar code rows
        (a :class:`~repro.core.columnar.TableEmitter`), so the detection
        stack can skip object-at-a-time extraction entirely.
        """

        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(profile.name)
        total = profile.scaled_requests(scale) if total_requests is None else int(total_requests)
        volumes = self._daily_volumes(
            total, campaign_days, renewal_days, profile.requests_per_day_jitter, rng
        )
        if recorder is None:
            recorder = SessionRecorder(self._site)

        n_workers = profile.num_workers
        materials: List[Optional[SessionMaterial]] = [None] * n_workers
        cookies: List[Optional[str]] = [None] * n_workers
        reset_rate = profile.session_reset_rate
        emit = recorder.emit
        source = profile.name

        recorded = 0
        for day, day_volume in enumerate(volumes):
            if day_volume == 0:
                continue
            offsets = np.sort(rng.random(int(day_volume))) * SECONDS_PER_DAY
            base_timestamp = day * SECONDS_PER_DAY
            for offset in offsets:
                index = int(rng.integers(n_workers))
                material = materials[index]
                if material is None or rng.random() < reset_rate:
                    material, cleared = self._plan_session(
                        profile, rng, recorder, has_cookie=cookies[index] is not None
                    )
                    materials[index] = material
                    if cleared:
                        cookies[index] = None
                cookies[index] = emit(
                    material,
                    url_path=url_path,
                    source=source,
                    timestamp=base_timestamp + float(offset),
                    presented_cookie=cookies[index],
                )
                if emitter is not None:
                    if material.codes is None:
                        material.codes = emitter.codes_for(material.values)
                    emitter.append(material.codes)
                recorded += 1
        return recorded

    def _plan_session(
        self,
        profile: BotServiceProfile,
        rng: np.random.Generator,
        recorder: SessionRecorder,
        *,
        has_cookie: bool,
    ) -> Tuple[SessionMaterial, bool]:
        """Vectorized :meth:`_reset_session`: same draws, dict-based assembly.

        Returns the materialised session plus whether the retained cookie
        was cleared (the legacy path draws the retention check only when a
        cookie is actually held, which is equivalent to the worker having
        recorded at least one request).
        """

        values, use_datacenter = self._plan_fingerprint(profile, rng)
        country = self._plan_country(profile, rng)
        timezone = self._plan_timezone(profile, country, rng)
        values[Attribute.TIMEZONE] = str(timezone)
        ip_address = self._site.geo.allocate_address(
            rng, country=country, datacenter=use_datacenter
        )
        cleared = bool(has_cookie and rng.random() > profile.cookie_retention)
        return recorder.materialize_values(values, ip_address), cleared

    def _plan_fingerprint(
        self, profile: BotServiceProfile, rng: np.random.Generator
    ) -> Tuple[Dict[Attribute, object], bool]:
        """Dict-based mirror of :meth:`_build_fingerprint` (same stream)."""

        values = base_bot_values(rng)

        evade_datadome = rng.random() < profile.datadome_evasion_target
        if evade_datadome:
            _apply_changes(values, low_concurrency_changes(rng))
            use_datacenter = rng.random() < profile.datacenter_fraction
        else:
            use_datacenter = True
            if rng.random() < profile.forced_colors_rate:
                _apply_changes(values, low_concurrency_changes(rng))
                values[Attribute.FORCED_COLORS] = True
            else:
                _apply_changes(values, server_concurrency_changes(rng))

        if rng.random() < profile.botd_evasion_target:
            flavor = profile.botd_flavor
            if flavor is BotDEvasionFlavor.MIXED:
                flavor = (
                    BotDEvasionFlavor.PLUGINS if rng.random() < 0.7 else BotDEvasionFlavor.TOUCH
                )
            if flavor is BotDEvasionFlavor.PLUGINS:
                _apply_changes(values, plugin_injection_changes(rng))
            else:
                _apply_changes(values, touch_spoof_changes(rng, consistency=profile.consistency))

        if rng.random() < profile.device_spoof_rate:
            if rng.random() < profile.full_consistency:
                has_touch = str(values.get(Attribute.TOUCH_SUPPORT)) not in ("", "None")
                _apply_changes(values, consistent_device_spoof_changes(rng, has_touch=has_touch))
            else:
                _apply_changes(values, device_spoof_changes(rng, consistency=profile.consistency))

        if rng.random() < profile.platform_rotation_rate:
            _apply_changes(values, platform_rotation_changes(rng))
        if rng.random() < profile.memory_rotation_rate:
            _apply_changes(values, memory_rotation_changes(rng))
        if rng.random() < profile.webdriver_leak_rate:
            values[Attribute.WEBDRIVER] = True

        return values, use_datacenter

    def _plan_country(self, profile: BotServiceProfile, rng: np.random.Generator) -> str:
        """Stream-identical, allocation-free :meth:`_choose_country`."""

        if profile.advertised_region is not None:
            region_countries = _SORTED_REGION_COUNTRIES[profile.advertised_region]
            if rng.random() < profile.ip_region_match_rate:
                return region_countries[int(rng.integers(len(region_countries)))]
        return _COUNTRY_MIX_NAMES[int(_COUNTRY_MIX_CDF.searchsorted(rng.random(), side="right"))]

    def _plan_timezone(
        self, profile: BotServiceProfile, ip_country: str, rng: np.random.Generator
    ) -> str:
        """Stream-identical, allocation-free :meth:`_choose_timezone`."""

        if profile.advertised_region is not None:
            if rng.random() < profile.timezone_region_match_rate:
                region_countries = _SORTED_REGION_COUNTRIES[profile.advertised_region]
                country = region_countries[int(rng.integers(len(region_countries)))]
                zones = COUNTRY_TIMEZONES.get(country, (_BASE_TIMEZONE,))
                return zones[int(rng.integers(len(zones)))]
            return _BASE_TIMEZONE
        if rng.random() < 0.5:
            zones = COUNTRY_TIMEZONES.get(ip_country, (_BASE_TIMEZONE,))
            return zones[int(rng.integers(len(zones)))]
        return _BASE_TIMEZONE

    def run_marketplace(
        self,
        profiles: Sequence[BotServiceProfile],
        *,
        scale: float = 1.0,
        campaign_days: int = DEFAULT_CAMPAIGN_DAYS,
    ) -> Dict[str, int]:
        """Run every service in *profiles*; returns per-service volumes."""

        volumes: Dict[str, int] = {}
        for profile in profiles:
            volumes[profile.name] = self.run_service(
                profile, scale=scale, campaign_days=campaign_days
            )
        return volumes


_ATTRIBUTE_BY_KEY: Dict[str, Attribute] = {attribute.value: attribute for attribute in Attribute}


def _apply_changes(values: Dict[Attribute, object], changes: Dict[str, object]) -> None:
    """Apply a strategy changes dict exactly like ``Fingerprint.replace``.

    Same key order — existing keys keep their dict position, new keys
    append — so the final dict is indistinguishable from the legacy
    replace() chain's result.  Coercion is skipped: the strategy changes
    functions emit canonical values by construction (explicit ``int`` /
    ``float`` / ``str`` conversions and integer tuples), which replace()'s
    coercion maps to themselves; ``tests/test_vectorized.py`` pins the
    resulting byte equality against the replace() chain.
    """

    for key, value in changes.items():
        values[_ATTRIBUTE_BY_KEY[key]] = value
