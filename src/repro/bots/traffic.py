"""Bot traffic engine.

Drives requests from a :class:`~repro.bots.service.BotServiceProfile` to a
:class:`~repro.honeysite.HoneySite`, reproducing the campaign structure of
the paper: a fixed pool of automation workers per service, requests spread
over a three-month campaign with volume spikes at purchase renewals
(Figure 9), session-based fingerprint alteration, proxy IP selection and
cookie (non-)retention.

The worker model is session based.  A worker keeps one altered
configuration (fingerprint + proxy address) for a stretch of requests and
re-rolls it with probability ``session_reset_rate`` before a request.
Whether the honey-site cookie survives a re-roll is governed by
``cookie_retention``; a retained cookie paired with a re-rolled
configuration is exactly what produces the temporal inconsistencies of
Section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bots.service import BotDEvasionFlavor, BotServiceProfile
from repro.bots.strategies import (
    apply_consistent_device_spoof,
    apply_device_spoof,
    apply_forced_colors,
    apply_low_concurrency,
    apply_memory_rotation,
    apply_platform_rotation,
    apply_plugin_injection,
    apply_server_concurrency,
    apply_timezone,
    apply_touch_spoof,
    apply_webdriver_leak,
    base_bot_fingerprint,
)
from repro.fingerprint.fingerprint import Fingerprint
from repro.geo.timezones import ADVERTISED_REGIONS, COUNTRY_TIMEZONES
from repro.honeysite.site import HoneySite
from repro.honeysite.storage import SECONDS_PER_DAY
from repro.network.headers import build_headers
from repro.network.request import WebRequest
from repro.seeding import derive_rng

#: Country mix used when a service makes no geographic promise.  Weighted
#: toward the United States, where most commodity bot infrastructure sits.
DEFAULT_COUNTRY_MIX: Tuple[Tuple[str, float], ...] = (
    ("United States of America", 0.48),
    ("Germany", 0.10),
    ("France", 0.06),
    ("United Kingdom", 0.06),
    ("Canada", 0.05),
    ("Netherlands", 0.05),
    ("China", 0.05),
    ("India", 0.05),
    ("Russia", 0.04),
    ("Brazil", 0.03),
    ("Singapore", 0.03),
)

#: Default campaign length in days (September–November in the paper).
DEFAULT_CAMPAIGN_DAYS = 90

#: Days on which the honey-site operators renewed their purchases; volume
#: spikes right after each renewal (Figure 9).
DEFAULT_RENEWAL_DAYS: Tuple[int, ...] = (0, 30, 60)

_BASE_TIMEZONE = "America/Los_Angeles"

_COUNTRY_MIX_NAMES: Tuple[str, ...] = tuple(name for name, _weight in DEFAULT_COUNTRY_MIX)
_COUNTRY_MIX_WEIGHTS: np.ndarray = np.array([weight for _name, weight in DEFAULT_COUNTRY_MIX])
_COUNTRY_MIX_WEIGHTS /= _COUNTRY_MIX_WEIGHTS.sum()


@dataclass
class _Worker:
    """One automation worker of a bot service and its current session."""

    worker_id: int
    cookie: Optional[str] = None
    fingerprint: Optional[Fingerprint] = None
    ip_address: Optional[str] = None


class BotTrafficGenerator:
    """Generates and submits bot traffic for one or more services.

    ``rng`` accepts a ``numpy.random.Generator``, a plain seed or a
    ``SeedSequence`` (the sharded engine passes spawned sequences).
    """

    def __init__(self, site: HoneySite, rng=None):
        self._site = site
        self._rng = derive_rng(rng if rng is not None else 0)

    # -- campaign scheduling --------------------------------------------------

    def _daily_volumes(
        self,
        total: int,
        campaign_days: int,
        renewal_days: Sequence[int],
        jitter: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Split *total* requests over the campaign with renewal spikes."""

        days = np.arange(campaign_days, dtype=float)
        weights = np.full(campaign_days, 0.25, dtype=float)
        for renewal in renewal_days:
            delta = days - float(renewal)
            mask = delta >= 0
            weights[mask] += np.exp(-delta[mask] / 9.0)
        weights *= 1.0 + jitter * rng.random(campaign_days)
        weights /= weights.sum()
        return rng.multinomial(total, weights)

    # -- session construction ------------------------------------------------------

    def _choose_country(
        self, profile: BotServiceProfile, rng: np.random.Generator
    ) -> str:
        """Pick the country the session's proxy address will sit in."""

        if profile.advertised_region is not None:
            region_countries = sorted(ADVERTISED_REGIONS[profile.advertised_region])
            if rng.random() < profile.ip_region_match_rate:
                return region_countries[int(rng.integers(len(region_countries)))]
        return _COUNTRY_MIX_NAMES[int(rng.choice(len(_COUNTRY_MIX_NAMES), p=_COUNTRY_MIX_WEIGHTS))]

    def _choose_timezone(
        self, profile: BotServiceProfile, ip_country: str, rng: np.random.Generator
    ) -> str:
        """Pick the browser timezone the session reports."""

        if profile.advertised_region is not None:
            if rng.random() < profile.timezone_region_match_rate:
                region_countries = sorted(ADVERTISED_REGIONS[profile.advertised_region])
                country = region_countries[int(rng.integers(len(region_countries)))]
                zones = COUNTRY_TIMEZONES.get(country, (_BASE_TIMEZONE,))
                return zones[int(rng.integers(len(zones)))]
            return _BASE_TIMEZONE
        # No geographic promise: half the sessions leave the server's zone
        # in place, the rest align the zone with the proxy's country.
        if rng.random() < 0.5:
            zones = COUNTRY_TIMEZONES.get(ip_country, (_BASE_TIMEZONE,))
            return zones[int(rng.integers(len(zones)))]
        return _BASE_TIMEZONE

    def _build_fingerprint(
        self, profile: BotServiceProfile, rng: np.random.Generator
    ) -> Tuple[Fingerprint, bool]:
        """Build one altered fingerprint; returns it plus ``use_datacenter``."""

        fingerprint = base_bot_fingerprint(rng)

        # DataDome branch: adopt (or not) the configuration that its model
        # does not flag — a consumer-grade core count (Figure 5).
        evade_datadome = rng.random() < profile.datadome_evasion_target
        if evade_datadome:
            fingerprint = apply_low_concurrency(fingerprint, rng)
            use_datacenter = rng.random() < profile.datacenter_fraction
        else:
            use_datacenter = True
            if rng.random() < profile.forced_colors_rate:
                # Detected regardless of core count: forced-colors mode is a
                # give-away (Section 5.3.2), so some detected requests still
                # report few cores, matching the CDF of Figure 5.
                fingerprint = apply_low_concurrency(fingerprint, rng)
                fingerprint = apply_forced_colors(fingerprint)
            else:
                fingerprint = apply_server_concurrency(fingerprint, rng)

        # BotD branch: hit one of its blind spots (plugins / touch).
        if rng.random() < profile.botd_evasion_target:
            flavor = profile.botd_flavor
            if flavor is BotDEvasionFlavor.MIXED:
                flavor = (
                    BotDEvasionFlavor.PLUGINS if rng.random() < 0.7 else BotDEvasionFlavor.TOUCH
                )
            if flavor is BotDEvasionFlavor.PLUGINS:
                fingerprint = apply_plugin_injection(fingerprint, rng)
            else:
                fingerprint = apply_touch_spoof(fingerprint, rng, consistency=profile.consistency)

        # Impersonate a popular consumer device (Figures 6 and 7).  Curated
        # profiles spoof consistently; the rest leave correlated attributes
        # only partially repaired (Section 6.1).
        if rng.random() < profile.device_spoof_rate:
            if rng.random() < profile.full_consistency:
                fingerprint = apply_consistent_device_spoof(fingerprint, rng)
            else:
                fingerprint = apply_device_spoof(fingerprint, rng, consistency=profile.consistency)

        # Attribute rotation across sessions (Figures 9 and 10).
        if rng.random() < profile.platform_rotation_rate:
            fingerprint = apply_platform_rotation(fingerprint, rng)
        if rng.random() < profile.memory_rotation_rate:
            fingerprint = apply_memory_rotation(fingerprint, rng)
        if rng.random() < profile.webdriver_leak_rate:
            fingerprint = apply_webdriver_leak(fingerprint)

        return fingerprint, use_datacenter

    def _reset_session(
        self, worker: _Worker, profile: BotServiceProfile, rng: np.random.Generator
    ) -> None:
        """Re-roll a worker's configuration (new session)."""

        fingerprint, use_datacenter = self._build_fingerprint(profile, rng)
        country = self._choose_country(profile, rng)
        timezone = self._choose_timezone(profile, country, rng)
        fingerprint = apply_timezone(fingerprint, timezone)
        worker.fingerprint = fingerprint
        worker.ip_address = self._site.geo.allocate_address(
            rng, country=country, datacenter=use_datacenter
        )
        if worker.cookie is not None and rng.random() > profile.cookie_retention:
            worker.cookie = None

    # -- public API ------------------------------------------------------------

    def run_service(
        self,
        profile: BotServiceProfile,
        *,
        scale: float = 1.0,
        campaign_days: int = DEFAULT_CAMPAIGN_DAYS,
        renewal_days: Sequence[int] = DEFAULT_RENEWAL_DAYS,
    ) -> int:
        """Generate and submit the whole campaign of *profile*.

        Returns the number of requests recorded by the honey site.
        """

        rng = np.random.default_rng(self._rng.integers(0, 2 ** 32))
        url_path = self._site.register_source(profile.name)
        total = profile.scaled_requests(scale)
        volumes = self._daily_volumes(
            total, campaign_days, renewal_days, profile.requests_per_day_jitter, rng
        )
        workers = [_Worker(worker_id=index) for index in range(profile.num_workers)]

        recorded = 0
        for day, day_volume in enumerate(volumes):
            if day_volume == 0:
                continue
            offsets = np.sort(rng.random(int(day_volume))) * SECONDS_PER_DAY
            for offset in offsets:
                worker = workers[int(rng.integers(len(workers)))]
                if worker.fingerprint is None or rng.random() < profile.session_reset_rate:
                    self._reset_session(worker, profile, rng)
                request = WebRequest(
                    url_path=url_path,
                    timestamp=day * SECONDS_PER_DAY + float(offset),
                    ip_address=worker.ip_address,
                    fingerprint=worker.fingerprint,
                    cookie=worker.cookie,
                    headers=build_headers(worker.fingerprint),
                )
                record = self._site.handle(request)
                if record is not None:
                    worker.cookie = record.cookie
                    recorded += 1
        return recorded

    def run_marketplace(
        self,
        profiles: Sequence[BotServiceProfile],
        *,
        scale: float = 1.0,
        campaign_days: int = DEFAULT_CAMPAIGN_DAYS,
    ) -> Dict[str, int]:
        """Run every service in *profiles*; returns per-service volumes."""

        volumes: Dict[str, int] = {}
        for profile in profiles:
            volumes[profile.name] = self.run_service(
                profile, scale=scale, campaign_days=campaign_days
            )
        return volumes
