"""Fingerprint-alteration strategies used by evasive bots.

Section 6 of the paper establishes that evasive bots do not operate real
consumer devices; they run automation stacks (typically headless Chromium
on cloud servers) and *alter* fingerprint attributes to mimic real users.
Each strategy below performs one family of alteration observed in the
measurement:

* spoofing a popular device's User-Agent (Figures 6, 7),
* injecting PDF plugins or claiming touch support to hit BotD's blind
  spots (Figure 4, Section 5.3.3),
* reporting a low ``hardwareConcurrency`` to hit DataDome's blind spot
  (Figure 5),
* spoofing geolocation to fulfil "traffic from region X" promises
  (Figure 8), and
* rotating attributes across requests to fake a large device pool
  (Figures 9, 10).

Strategies deliberately do **not** repair the attributes correlated with
the ones they alter — that is precisely the behaviour FP-Inconsistent
exploits.  The ``consistency`` knob controls how often a bot happens to
pick a value that is actually consistent.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.devices.profiles import CHROMIUM_PDF_PLUGINS, TOUCH_EVENTS, TOUCH_NONE
from repro.devices.screens import IPHONE_RESOLUTIONS
from repro.fingerprint.attributes import Attribute
from repro.fingerprint.fingerprint import Fingerprint
from repro.fingerprint.useragent import build_user_agent

#: Platform strings rotated by bots (Figure 10 shows all of these reported
#: for a single cookie).
ROTATED_PLATFORMS: Tuple[str, ...] = (
    "Win32",
    "MacIntel",
    "iPhone",
    "Linux armv7l",
    "Linux armv8l",
    "Linux armv5tejl",
    "iPad",
    "Linux x86_64",
    "Linux aarch64",
    "Linux i686",
)

#: Device families bots like to impersonate, weighted toward the ones with
#: the highest evasion probability in Figure 6.
SPOOF_TARGET_WEIGHTS: Dict[str, float] = {
    "iPhone": 0.45,
    "iPad": 0.15,
    "Mac": 0.25,
    "Android": 0.15,
}

_ANDROID_MODELS: Tuple[str, ...] = (
    "SM-S906N",
    "SM-A515F",
    "SM-A127F",
    "M2006C3MG",
    "M2004J19C",
    "Pixel 7",
    "Pixel 2",
    "Infinix X652B",
    "XiaoMi Redmi Go",
    "SM-T387W",
)

_REAL_IPHONE_RESOLUTIONS: Tuple[Tuple[int, int], ...] = tuple(sorted(IPHONE_RESOLUTIONS))


def _pick(rng: np.random.Generator, pool: Tuple) -> object:
    """Draw one element of *pool*, consuming the stream exactly like
    ``rng.choice(pool)``.

    ``Generator.choice`` without probabilities draws a single bounded
    integer from the bit stream, then pays array-conversion and shape
    bookkeeping on every call; indexing the tuple with ``rng.integers``
    consumes the same stream and returns the same element at a fraction of
    the cost (``tests/test_vectorized.py`` pins the equivalence).
    """

    return pool[int(rng.integers(0, len(pool)))]


def _pick_weighted(rng: np.random.Generator, names, probabilities: np.ndarray) -> object:
    """Draw one of *names* under *probabilities*, stream-identical to
    ``rng.choice(len(names), p=probabilities)``.

    Replicates the Generator's own algorithm — normalised cumulative
    probabilities, one uniform draw, right-sided ``searchsorted`` — without
    re-validating and re-accumulating the probability vector per call.
    """

    cdf = probabilities.cumsum()
    cdf /= cdf[-1]
    return names[int(cdf.searchsorted(rng.random(), side="right"))]


def _base_bot_template() -> Dict[Attribute, object]:
    """The canonical (coerced) attribute values of an unmodified worker."""

    return dict(
        Fingerprint(
            {
                Attribute.USER_AGENT: build_user_agent("Linux PC", "Linux", "Chrome"),
                Attribute.UA_DEVICE: "Linux PC",
                Attribute.UA_OS: "Linux",
                Attribute.UA_BROWSER: "Chrome",
                Attribute.PLATFORM: "Linux x86_64",
                Attribute.VENDOR: "Google Inc.",
                Attribute.VENDOR_FLAVORS: (),
                Attribute.PLUGINS: (),
                Attribute.HARDWARE_CONCURRENCY: 8,
                Attribute.DEVICE_MEMORY: 4.0,
                Attribute.LANGUAGES: ("en-US", "en"),
                Attribute.WEBDRIVER: False,
                Attribute.PRODUCT_SUB: "20030107",
                Attribute.MAX_TOUCH_POINTS: 0,
                Attribute.SCREEN_RESOLUTION: (1920, 1080),
                Attribute.SCREEN_FRAME: 0,
                Attribute.COLOR_DEPTH: 24,
                Attribute.COLOR_GAMUT: "srgb",
                Attribute.TOUCH_SUPPORT: TOUCH_NONE,
                Attribute.HDR: False,
                Attribute.CONTRAST: 0,
                Attribute.FORCED_COLORS: False,
                Attribute.REDUCED_MOTION: False,
                Attribute.TIMEZONE: "America/Los_Angeles",
                Attribute.COOKIES_ENABLED: True,
                Attribute.PDF_VIEWER_ENABLED: False,
                Attribute.MONOSPACE_WIDTH: 132.5,
            }
        )._values
    )


#: Coerced once at import; :func:`base_bot_values` copies it per session
#: instead of re-coercing all 27 attributes (which dominated generation
#: profiles).  Key order matters: serialized fingerprints preserve it.
_BASE_BOT_VALUES: Dict[Attribute, object] = _base_bot_template()


def base_bot_values(
    rng: np.random.Generator, *, timezone: str = "America/Los_Angeles"
) -> Dict[Attribute, object]:
    """Canonical attribute dict of an unmodified bot worker.

    Consumes the stream exactly like the historical template construction
    (one core-count draw, one memory draw, in that order).
    """

    cores = int(_pick(rng, (8, 12, 16)))
    memory = float(_pick(rng, (4.0, 8.0)))
    values = dict(_BASE_BOT_VALUES)
    values[Attribute.HARDWARE_CONCURRENCY] = cores
    values[Attribute.DEVICE_MEMORY] = memory
    values[Attribute.TIMEZONE] = str(timezone)
    return values


def base_bot_fingerprint(rng: np.random.Generator, *, timezone: str = "America/Los_Angeles") -> Fingerprint:
    """Fingerprint of an unmodified bot worker.

    The template models headless Chromium running on a Linux cloud server
    with the automation tell (`navigator.webdriver`) already patched out —
    the starting point every commercial "undetectable traffic" stack uses.
    """

    return Fingerprint._from_coerced(base_bot_values(rng, timezone=timezone))


def low_concurrency_changes(rng: np.random.Generator) -> Dict[str, object]:
    """Changes of :func:`apply_low_concurrency` (DataDome blind spot)."""

    return {"hardware_concurrency": int(_pick(rng, (2, 4, 6)))}


def apply_low_concurrency(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Report a consumer-grade CPU core count (DataDome blind spot)."""

    return fingerprint.replace(**low_concurrency_changes(rng))


def server_concurrency_changes(rng: np.random.Generator) -> Dict[str, object]:
    """Changes of :func:`apply_server_concurrency`."""

    return {"hardware_concurrency": int(_pick(rng, (8, 12, 16, 24, 32)))}


def apply_server_concurrency(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Report the worker's true server-grade CPU core count."""

    return fingerprint.replace(**server_concurrency_changes(rng))


def plugin_injection_changes(rng: np.random.Generator) -> Dict[str, object]:
    """Changes of :func:`apply_plugin_injection` (Figure 4)."""

    count = int(rng.integers(1, len(CHROMIUM_PDF_PLUGINS) + 1))
    order = rng.permutation(len(CHROMIUM_PDF_PLUGINS))[:count]
    plugins = tuple(CHROMIUM_PDF_PLUGINS[int(index)] for index in sorted(order))
    if "Chrome PDF Viewer" not in plugins:
        plugins = ("Chrome PDF Viewer",) + plugins
    return {"plugins": plugins, "pdf_viewer_enabled": True}


def apply_plugin_injection(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Expose one or more PDF plugins (BotD blind spot, Figure 4)."""

    return fingerprint.replace(**plugin_injection_changes(rng))


def touch_spoof_changes(
    rng: np.random.Generator, *, consistency: float = 0.2
) -> Dict[str, object]:
    """Changes of :func:`apply_touch_spoof` (Section 5.3.3)."""

    changes: Dict[str, object] = {"touch_support": TOUCH_EVENTS}
    if rng.random() < consistency:
        changes["max_touch_points"] = 5
    else:
        changes["max_touch_points"] = int(_pick(rng, (0, 1, 2, 3, 9, 10)))
    return changes


def apply_touch_spoof(
    fingerprint: Fingerprint, rng: np.random.Generator, *, consistency: float = 0.2
) -> Fingerprint:
    """Claim touch-event support (BotD blind spot, Section 5.3.3).

    With probability ``consistency`` the bot also reports a plausible
    ``maxTouchPoints`` of 5; otherwise it leaves the value at whatever the
    automation stack exposes (0, or an implausible figure), producing the
    (device, Max Touch Points) inconsistencies of Table 6.
    """

    return fingerprint.replace(**touch_spoof_changes(rng, consistency=consistency))


_SPOOF_TARGET_NAMES: Tuple[str, ...] = tuple(SPOOF_TARGET_WEIGHTS)
_SPOOF_TARGET_PROBABILITIES: np.ndarray = np.array(
    [SPOOF_TARGET_WEIGHTS[name] for name in _SPOOF_TARGET_NAMES], dtype=float
)
_SPOOF_TARGET_PROBABILITIES /= _SPOOF_TARGET_PROBABILITIES.sum()


def choose_spoof_target(rng: np.random.Generator, weights: Optional[Dict[str, float]] = None) -> str:
    """Pick a device family to impersonate (Figure 6 distribution)."""

    if weights is None:
        return str(_pick_weighted(rng, _SPOOF_TARGET_NAMES, _SPOOF_TARGET_PROBABILITIES))
    names = list(weights)
    probabilities = np.array([weights[name] for name in names], dtype=float)
    probabilities /= probabilities.sum()
    return str(_pick_weighted(rng, names, probabilities))


def device_spoof_changes(
    rng: np.random.Generator,
    *,
    target: Optional[str] = None,
    consistency: float = 0.15,
) -> Dict[str, object]:
    """Changes of :func:`apply_device_spoof` (Section 6.1)."""

    target = target or choose_spoof_target(rng)
    changes: Dict[str, object] = {}

    if target == "iPhone":
        changes.update(
            user_agent=build_user_agent("iPhone", "iOS", "Mobile Safari"),
            ua_device="iPhone",
            ua_os="iOS",
            ua_browser="Mobile Safari",
        )
        _maybe(changes, rng, consistency, "platform", "iPhone")
        _maybe(changes, rng, consistency, "vendor", "Apple Computer, Inc.")
        _maybe(changes, rng, consistency, "max_touch_points", 5)
        if rng.random() < consistency:
            changes["screen_resolution"] = _REAL_IPHONE_RESOLUTIONS[
                int(rng.integers(len(_REAL_IPHONE_RESOLUTIONS)))
            ]
        else:
            changes["screen_resolution"] = random_resolution(rng)
    elif target == "iPad":
        changes.update(
            user_agent=build_user_agent("iPad", "iOS", "Mobile Safari"),
            ua_device="iPad",
            ua_os="iOS",
            ua_browser="Mobile Safari",
        )
        _maybe(changes, rng, consistency, "platform", "iPad")
        _maybe(changes, rng, consistency, "vendor", "Apple Computer, Inc.")
        _maybe(changes, rng, consistency, "max_touch_points", 5)
        if rng.random() >= consistency:
            changes["screen_resolution"] = random_resolution(rng)
        else:
            changes["screen_resolution"] = (810, 1080)
    elif target == "Mac":
        changes.update(
            user_agent=build_user_agent("Mac", "Mac OS X", "Safari"),
            ua_device="Mac",
            ua_os="Mac OS X",
            ua_browser="Safari",
        )
        _maybe(changes, rng, consistency, "platform", "MacIntel")
        _maybe(changes, rng, consistency, "vendor", "Apple Computer, Inc.")
    else:  # Android model
        model = _ANDROID_MODELS[int(rng.integers(len(_ANDROID_MODELS)))]
        changes.update(
            user_agent=build_user_agent(model, "Android", "Chrome Mobile", model=model),
            ua_device=model,
            ua_os="Android",
            ua_browser="Chrome Mobile",
        )
        _maybe(changes, rng, consistency, "platform", "Linux armv8l")
        _maybe(changes, rng, consistency, "max_touch_points", 5)
        if rng.random() >= consistency:
            changes["screen_resolution"] = random_resolution(rng)

    return changes


def apply_device_spoof(
    fingerprint: Fingerprint,
    rng: np.random.Generator,
    *,
    target: Optional[str] = None,
    consistency: float = 0.15,
) -> Fingerprint:
    """Impersonate a popular consumer device through the User-Agent.

    Only the User-Agent-derived attributes are rewritten reliably.  Every
    correlated attribute (platform, vendor, screen resolution, touch
    points) is fixed up only with probability ``consistency`` each,
    reproducing the partially altered fingerprints of Section 6.1.
    """

    return fingerprint.replace(
        **device_spoof_changes(rng, target=target, consistency=consistency)
    )


def _maybe(changes: Dict[str, object], rng: np.random.Generator, probability: float, key: str, value) -> None:
    if rng.random() < probability:
        changes[key] = value


#: Pool of screen resolutions shipped with commodity spoofing stacks.  Most
#: of these geometries exist on no real device; the pool includes the exact
#: resolutions called out in Figure 7 of the paper (873x393, 847x476, ...).
FAKE_RESOLUTION_POOL: Tuple[Tuple[int, int], ...] = (
    (873, 393), (640, 360), (4096, 1440), (3840, 1080), (2778, 1284),
    (1900, 1080), (693, 320), (780, 360), (847, 476), (568, 320),
    (1920, 1080), (1366, 768), (800, 360), (900, 1600), (656, 1364),
    (1280, 720), (1024, 600), (960, 540), (854, 480), (750, 1334),
    (720, 1280), (1080, 1920), (540, 960), (480, 800), (600, 1024),
    (820, 360), (915, 412), (892, 412), (851, 393), (740, 360),
    (736, 414), (667, 375), (812, 375), (844, 390), (926, 428),
    (1112, 834), (1194, 834), (1366, 1024), (962, 601), (1138, 712),
    (877, 395), (869, 391), (823, 411), (731, 411), (640, 384),
    (592, 360), (570, 320), (533, 320), (511, 320), (488, 320),
    (1600, 757), (1680, 1050), (1440, 803), (1536, 824), (1280, 1024),
    (2560, 1440), (2048, 1152), (1920, 975), (1856, 1392), (1792, 1344),
    (360, 640), (360, 720), (360, 760), (375, 667), (375, 812),
    (390, 844), (393, 852), (412, 915), (414, 896), (428, 926),
    (820, 1180), (768, 1024), (810, 1080), (834, 1194), (1024, 1366),
    (500, 888), (520, 924), (555, 986), (585, 1040), (610, 1084),
    (630, 1120), (645, 1146), (660, 1172), (675, 1200), (690, 1226),
)


def random_resolution(rng: np.random.Generator) -> Tuple[int, int]:
    """A screen resolution drawn from the spoofing-stack pool.

    The pool is finite (as observed in the paper: 83 distinct resolutions
    across all "iPhone" requests) and dominated by geometries that no
    shipping device uses, which is how the non-existent iPhone resolutions
    of Figure 7 arise.
    """

    return FAKE_RESOLUTION_POOL[int(rng.integers(len(FAKE_RESOLUTION_POOL)))]


def consistent_device_spoof_changes(
    rng: np.random.Generator, *, has_touch: bool
) -> Dict[str, object]:
    """Changes of :func:`apply_consistent_device_spoof`."""

    if has_touch:
        if rng.random() < 0.7:
            changes = dict(
                user_agent=build_user_agent("iPhone", "iOS", "Mobile Safari"),
                ua_device="iPhone",
                ua_os="iOS",
                ua_browser="Mobile Safari",
                platform="iPhone",
                vendor="Apple Computer, Inc.",
                vendor_flavors=("safari",),
                max_touch_points=5,
                screen_resolution=_REAL_IPHONE_RESOLUTIONS[
                    int(rng.integers(len(_REAL_IPHONE_RESOLUTIONS)))
                ],
                color_depth=32,
                color_gamut="p3",
            )
        else:
            model = "SM-S906N"
            changes = dict(
                user_agent=build_user_agent(model, "Android", "Chrome Mobile", model=model),
                ua_device=model,
                ua_os="Android",
                ua_browser="Chrome Mobile",
                platform="Linux armv8l",
                vendor="Google Inc.",
                vendor_flavors=("chrome",),
                max_touch_points=5,
                screen_resolution=(360, 780),
                color_depth=24,
                color_gamut="srgb",
            )
    else:
        if rng.random() < 0.5:
            changes = dict(
                user_agent=build_user_agent("Mac", "Mac OS X", "Safari"),
                ua_device="Mac",
                ua_os="Mac OS X",
                ua_browser="Safari",
                platform="MacIntel",
                vendor="Apple Computer, Inc.",
                vendor_flavors=("safari",),
                max_touch_points=0,
                screen_resolution=(1512, 982),
                color_depth=30,
                color_gamut="p3",
            )
        else:
            changes = dict(
                user_agent=build_user_agent("Windows PC", "Windows", "Chrome"),
                ua_device="Windows PC",
                ua_os="Windows",
                ua_browser="Chrome",
                platform="Win32",
                vendor="Google Inc.",
                vendor_flavors=("chrome",),
                max_touch_points=0,
                screen_resolution=(1920, 1080),
                color_depth=24,
                color_gamut="srgb",
            )
    return changes


def apply_consistent_device_spoof(
    fingerprint: Fingerprint, rng: np.random.Generator
) -> Fingerprint:
    """Impersonate a device *consistently* (a well-configured spoofing profile).

    Some bot stacks ship curated emulation profiles whose correlated
    attributes all agree; these spoofs introduce no spatial inconsistency.
    The target family is chosen so the attributes that drive detector
    calibration (plugins, touch support, hardware concurrency) stay
    untouched: a fingerprint that currently claims touch support becomes a
    phone, one that exposes plugins (or neither) becomes a desktop.
    """

    has_touch = str(fingerprint.get(Attribute.TOUCH_SUPPORT)) not in ("", "None")
    return fingerprint.replace(**consistent_device_spoof_changes(rng, has_touch=has_touch))


def platform_rotation_changes(rng: np.random.Generator) -> Dict[str, object]:
    """Changes of :func:`apply_platform_rotation` (Figure 10)."""

    return {"platform": ROTATED_PLATFORMS[int(rng.integers(len(ROTATED_PLATFORMS)))]}


def apply_platform_rotation(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Report a platform value drawn from the rotation pool (Figure 10)."""

    return fingerprint.replace(**platform_rotation_changes(rng))


def apply_timezone(fingerprint: Fingerprint, timezone: str) -> Fingerprint:
    """Set the browser timezone attribute."""

    return fingerprint.replace(timezone=timezone)


def apply_forced_colors(fingerprint: Fingerprint) -> Fingerprint:
    """Leave the forced-colors accessibility mode active.

    Automation frameworks configured for deterministic rendering sometimes
    run with forced colors on; per Section 5.3.2 such values always lead to
    detection by DataDome.
    """

    return fingerprint.replace(forced_colors=True)


def apply_webdriver_leak(fingerprint: Fingerprint) -> Fingerprint:
    """Fail to patch ``navigator.webdriver`` (a sloppy-bot tell)."""

    return fingerprint.replace(webdriver=True)


def memory_rotation_changes(rng: np.random.Generator) -> Dict[str, object]:
    """Changes of :func:`apply_memory_rotation`."""

    return {"device_memory": float(_pick(rng, (0.5, 1.0, 2.0, 4.0, 8.0)))}


def apply_memory_rotation(fingerprint: Fingerprint, rng: np.random.Generator) -> Fingerprint:
    """Report a freshly drawn deviceMemory value (temporal inconsistency)."""

    return fingerprint.replace(**memory_rotation_changes(rng))
