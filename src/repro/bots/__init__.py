"""Bot services: evasion strategies, calibrated profiles, traffic engine."""

from repro.bots.marketplace import TOTAL_REQUESTS, build_marketplace, marketplace_by_name
from repro.bots.service import BotDEvasionFlavor, BotServiceProfile
from repro.bots.strategies import (
    FAKE_RESOLUTION_POOL,
    ROTATED_PLATFORMS,
    SPOOF_TARGET_WEIGHTS,
    apply_consistent_device_spoof,
    apply_device_spoof,
    apply_forced_colors,
    apply_low_concurrency,
    apply_memory_rotation,
    apply_platform_rotation,
    apply_plugin_injection,
    apply_server_concurrency,
    apply_timezone,
    apply_touch_spoof,
    apply_webdriver_leak,
    base_bot_fingerprint,
    choose_spoof_target,
    random_resolution,
)
from repro.bots.traffic import (
    BotTrafficGenerator,
    DEFAULT_CAMPAIGN_DAYS,
    DEFAULT_COUNTRY_MIX,
    DEFAULT_RENEWAL_DAYS,
)

__all__ = [
    "BotDEvasionFlavor",
    "BotServiceProfile",
    "BotTrafficGenerator",
    "DEFAULT_CAMPAIGN_DAYS",
    "DEFAULT_COUNTRY_MIX",
    "DEFAULT_RENEWAL_DAYS",
    "FAKE_RESOLUTION_POOL",
    "ROTATED_PLATFORMS",
    "SPOOF_TARGET_WEIGHTS",
    "TOTAL_REQUESTS",
    "apply_consistent_device_spoof",
    "apply_device_spoof",
    "apply_forced_colors",
    "apply_low_concurrency",
    "apply_memory_rotation",
    "apply_platform_rotation",
    "apply_plugin_injection",
    "apply_server_concurrency",
    "apply_timezone",
    "apply_touch_spoof",
    "apply_webdriver_leak",
    "base_bot_fingerprint",
    "build_marketplace",
    "choose_spoof_target",
    "marketplace_by_name",
    "random_resolution",
]
