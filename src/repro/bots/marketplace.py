"""The 20 bot services measured in the paper (Table 1).

Each profile's request volume and detector-evasion targets are the values
measured on the honey site between September and November 2023 (Table 1).
The remaining knobs (strategy flavour, proxy mix, consistency, advertised
region) are set from the qualitative findings of Sections 5.3 and 6:

* S15, S18 and S19 achieved 100% BotD evasion through PDF plugins
  (Section 5.3.1);
* S14 and S20 evaded both services by combining touch spoofing with a low
  ``hardwareConcurrency`` (Section 5.3.3);
* S8, S9 and S17 had the highest DataDome evasion (low core counts);
* S7, S11 and S16 were almost always caught by DataDome;
* four services advertised traffic from the United States, Canada, Europe
  and France respectively (Section 6.2), with the measured IP-vs-timezone
  match rates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bots.service import BotDEvasionFlavor, BotServiceProfile

_PLUGINS = BotDEvasionFlavor.PLUGINS
_TOUCH = BotDEvasionFlavor.TOUCH
_MIXED = BotDEvasionFlavor.MIXED


def _workers(num_requests: int) -> int:
    return max(5, num_requests // 2500)


def build_marketplace() -> Tuple[BotServiceProfile, ...]:
    """Build the 20 calibrated bot-service profiles of Table 1."""

    services = (
        BotServiceProfile(
            name="S1", num_requests=121500,
            datadome_evasion_target=0.4401, botd_evasion_target=0.7158,
            botd_flavor=_MIXED, num_workers=_workers(121500),
            device_spoof_rate=0.6, consistency=0.15,
            cookie_retention=0.22,
        ),
        BotServiceProfile(
            name="S2", num_requests=63708,
            datadome_evasion_target=0.4299, botd_evasion_target=0.7229,
            botd_flavor=_MIXED, num_workers=_workers(63708),
            device_spoof_rate=0.6, consistency=0.15,
        ),
        BotServiceProfile(
            name="S3", num_requests=54746,
            datadome_evasion_target=0.7491, botd_evasion_target=0.1026,
            botd_flavor=_PLUGINS, num_workers=_workers(54746),
            device_spoof_rate=0.5, consistency=0.2,
        ),
        BotServiceProfile(
            name="S4", num_requests=47278,
            datadome_evasion_target=0.3865, botd_evasion_target=0.7385,
            botd_flavor=_MIXED, num_workers=_workers(47278),
            device_spoof_rate=0.55, consistency=0.15,
            advertised_region="United States",
            ip_region_match_rate=0.93, timezone_region_match_rate=0.9,
        ),
        BotServiceProfile(
            name="S5", num_requests=40087,
            datadome_evasion_target=0.2386, botd_evasion_target=0.7265,
            botd_flavor=_MIXED, num_workers=_workers(40087),
            device_spoof_rate=0.5, consistency=0.2,
            advertised_region="Canada",
            ip_region_match_rate=0.9244, timezone_region_match_rate=0.7652,
        ),
        BotServiceProfile(
            name="S6", num_requests=32447,
            datadome_evasion_target=0.7181, botd_evasion_target=0.0545,
            botd_flavor=_PLUGINS, num_workers=_workers(32447),
            device_spoof_rate=0.45, consistency=0.25,
        ),
        BotServiceProfile(
            name="S7", num_requests=28940,
            datadome_evasion_target=0.0256, botd_evasion_target=0.3999,
            botd_flavor=_MIXED, num_workers=_workers(28940),
            device_spoof_rate=0.4, consistency=0.2, forced_colors_rate=0.4,
        ),
        BotServiceProfile(
            name="S8", num_requests=26335,
            datadome_evasion_target=0.8043, botd_evasion_target=0.289,
            botd_flavor=_PLUGINS, num_workers=_workers(26335),
            device_spoof_rate=0.65, consistency=0.12,
        ),
        BotServiceProfile(
            name="S9", num_requests=23412,
            datadome_evasion_target=0.7829, botd_evasion_target=0.1933,
            botd_flavor=_PLUGINS, num_workers=_workers(23412),
            device_spoof_rate=0.65, consistency=0.12,
        ),
        BotServiceProfile(
            name="S10", num_requests=18967,
            datadome_evasion_target=0.1577, botd_evasion_target=0.5923,
            botd_flavor=_MIXED, num_workers=_workers(18967),
            device_spoof_rate=0.5, consistency=0.18,
            advertised_region="Europe",
            ip_region_match_rate=0.9983, timezone_region_match_rate=0.56,
        ),
        BotServiceProfile(
            name="S11", num_requests=17996,
            datadome_evasion_target=0.0655, botd_evasion_target=0.5936,
            botd_flavor=_MIXED, num_workers=_workers(17996),
            device_spoof_rate=0.45, consistency=0.2, forced_colors_rate=0.35,
        ),
        BotServiceProfile(
            name="S12", num_requests=7010,
            datadome_evasion_target=0.0505, botd_evasion_target=0.5144,
            botd_flavor=_MIXED, num_workers=_workers(7010),
            device_spoof_rate=0.45, consistency=0.2, forced_colors_rate=0.35,
            advertised_region="France",
            ip_region_match_rate=0.95, timezone_region_match_rate=0.72,
        ),
        BotServiceProfile(
            name="S13", num_requests=5119,
            datadome_evasion_target=0.0695, botd_evasion_target=0.5052,
            botd_flavor=_MIXED, num_workers=_workers(5119),
            device_spoof_rate=0.45, consistency=0.2, forced_colors_rate=0.3,
        ),
        BotServiceProfile(
            name="S14", num_requests=4920,
            datadome_evasion_target=0.8374, botd_evasion_target=0.9008,
            botd_flavor=_TOUCH, num_workers=_workers(4920),
            device_spoof_rate=0.75, consistency=0.1,
        ),
        BotServiceProfile(
            name="S15", num_requests=4219,
            datadome_evasion_target=0.1114, botd_evasion_target=1.0,
            botd_flavor=_PLUGINS, num_workers=_workers(4219),
            device_spoof_rate=0.5, consistency=0.15,
        ),
        BotServiceProfile(
            name="S16", num_requests=4174,
            datadome_evasion_target=0.0448, botd_evasion_target=0.0002,
            botd_flavor=_MIXED, num_workers=_workers(4174),
            device_spoof_rate=0.25, consistency=0.3, forced_colors_rate=0.4,
        ),
        BotServiceProfile(
            name="S17", num_requests=2999,
            datadome_evasion_target=0.7466, botd_evasion_target=0.079,
            botd_flavor=_PLUGINS, num_workers=_workers(2999),
            device_spoof_rate=0.6, consistency=0.15,
        ),
        BotServiceProfile(
            name="S18", num_requests=1430,
            datadome_evasion_target=0.207, botd_evasion_target=1.0,
            botd_flavor=_PLUGINS, num_workers=_workers(1430),
            device_spoof_rate=0.5, consistency=0.15,
        ),
        BotServiceProfile(
            name="S19", num_requests=1411,
            datadome_evasion_target=0.0992, botd_evasion_target=1.0,
            botd_flavor=_PLUGINS, num_workers=_workers(1411),
            device_spoof_rate=0.5, consistency=0.15,
        ),
        BotServiceProfile(
            name="S20", num_requests=382,
            datadome_evasion_target=0.9712, botd_evasion_target=0.9712,
            botd_flavor=_TOUCH, num_workers=_workers(382),
            device_spoof_rate=0.75, consistency=0.1,
        ),
    )
    return services


#: Total request volume of the full-scale corpus (matches the paper).
TOTAL_REQUESTS = sum(profile.num_requests for profile in build_marketplace())


def marketplace_by_name() -> Dict[str, BotServiceProfile]:
    """The marketplace keyed by service name."""

    return {profile.name: profile for profile in build_marketplace()}
