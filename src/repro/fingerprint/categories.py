"""Attribute categories used for spatial inconsistency mining (Table 7).

The paper groups attributes by the kind of device information they convey
so that the spatial miner only compares attribute *pairs within a group*
(Section 7.1).  This module reproduces Table 7 and offers helpers to
enumerate candidate pairs.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Tuple

from repro.fingerprint.attributes import Attribute


class AttributeCategory(str, enum.Enum):
    """Categories of attributes (Table 7 of the paper)."""

    SCREEN = "Screen"
    DEVICE = "Device"
    BROWSER = "Browser"
    LOCATION = "Location"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Table 7 — the attributes belonging to each category.  An attribute may
#: belong to multiple categories (e.g. ``UA Device`` informs both screen and
#: device characteristics), exactly as in the paper.
CATEGORY_ATTRIBUTES: Dict[AttributeCategory, Tuple[Attribute, ...]] = {
    AttributeCategory.SCREEN: (
        Attribute.UA_DEVICE,
        Attribute.COLOR_DEPTH,
        Attribute.SCREEN_RESOLUTION,
        Attribute.TOUCH_SUPPORT,
        Attribute.MAX_TOUCH_POINTS,
        Attribute.HDR,
        Attribute.CONTRAST,
        Attribute.REDUCED_MOTION,
        Attribute.COLOR_GAMUT,
    ),
    AttributeCategory.DEVICE: (
        Attribute.UA_DEVICE,
        Attribute.DEVICE_MEMORY,
        Attribute.HARDWARE_CONCURRENCY,
        Attribute.UA_OS,
    ),
    AttributeCategory.BROWSER: (
        Attribute.UA_BROWSER,
        Attribute.PLUGINS,
        Attribute.PLATFORM,
        Attribute.UA_OS,
        Attribute.VENDOR,
        Attribute.VENDOR_FLAVORS,
    ),
    AttributeCategory.LOCATION: (
        Attribute.IP_COUNTRY,
        Attribute.IP_REGION,
        Attribute.TIMEZONE,
        Attribute.LANGUAGES,
    ),
}


def attributes_in(category: AttributeCategory) -> Tuple[Attribute, ...]:
    """Return the attributes belonging to *category*."""

    return CATEGORY_ATTRIBUTES[category]


def category_pairs(category: AttributeCategory) -> Iterator[Tuple[Attribute, Attribute]]:
    """Yield every unordered attribute pair within *category*.

    These are the candidate pairs examined by the spatial miner
    (Algorithm 1, line 3).
    """

    return itertools.combinations(CATEGORY_ATTRIBUTES[category], 2)


def all_candidate_pairs() -> List[Tuple[AttributeCategory, Attribute, Attribute]]:
    """Return ``(category, attribute_a, attribute_b)`` for every candidate pair."""

    pairs: List[Tuple[AttributeCategory, Attribute, Attribute]] = []
    for category in AttributeCategory:
        for left, right in category_pairs(category):
            pairs.append((category, left, right))
    return pairs


def categories_of(attribute: Attribute) -> Tuple[AttributeCategory, ...]:
    """Return every category that contains *attribute* (possibly empty)."""

    return tuple(
        category
        for category, members in CATEGORY_ATTRIBUTES.items()
        if attribute in members
    )
