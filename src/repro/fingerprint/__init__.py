"""Browser fingerprint model: attributes, categories, parsing and hashing."""

from repro.fingerprint.attributes import (
    ATTRIBUTE_SPECS,
    Attribute,
    AttributeSpec,
    IMMUTABLE_ATTRIBUTES,
    ValueKind,
    all_attributes,
    coerce_value,
    format_resolution,
    is_immutable,
    parse_resolution,
    spec_for,
)
from repro.fingerprint.categories import (
    AttributeCategory,
    CATEGORY_ATTRIBUTES,
    all_candidate_pairs,
    attributes_in,
    categories_of,
    category_pairs,
)
from repro.fingerprint.fingerprint import Fingerprint, fingerprint_distance
from repro.fingerprint.useragent import (
    ParsedUserAgent,
    build_user_agent,
    headless_user_agent,
    parse_user_agent,
)

__all__ = [
    "ATTRIBUTE_SPECS",
    "Attribute",
    "AttributeSpec",
    "AttributeCategory",
    "CATEGORY_ATTRIBUTES",
    "Fingerprint",
    "IMMUTABLE_ATTRIBUTES",
    "ParsedUserAgent",
    "ValueKind",
    "all_attributes",
    "all_candidate_pairs",
    "attributes_in",
    "build_user_agent",
    "categories_of",
    "category_pairs",
    "coerce_value",
    "fingerprint_distance",
    "format_resolution",
    "headless_user_agent",
    "is_immutable",
    "parse_resolution",
    "parse_user_agent",
    "spec_for",
]
